"""Quickstart: speculative run-time parallelization of a real loop.

The motivating situation of the paper: a loop whose subscripts come
from input data (``A(f(i))``), so the compiler cannot prove it parallel.
We execute it speculatively as a doall while the simulated hardware
watches every access through the cache coherence protocol:

* if the access pattern happens to be parallel, we get parallel speed
  and the results are committed;
* if a cross-iteration dependence shows up, the hardware aborts the
  parallel execution *at the moment the dependence occurs*, restores
  the saved state and re-executes serially — results are still correct.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.params import default_params
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode
from repro.semantics import ConcreteLoop, speculative_run
from repro.types import ProtocolKind


def main() -> None:
    rng = np.random.default_rng(42)
    n, iterations = 1024, 64
    params = default_params(num_processors=8)
    config = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 2, VirtualMode.CHUNK)
    )

    # ------------------------------------------------------------------
    # Case 1: f() is a permutation -> the loop is (unknowably) parallel.
    # ------------------------------------------------------------------
    f = rng.permutation(n)

    def body(i, arrays):
        for k in range(8):
            j = int(f[(i * 8 + k) % n])
            arrays["A"][j] = arrays["A"][j] * 0.5 + float(i)

    a0 = rng.random(n)
    loop = ConcreteLoop(body, iterations, {"A": a0.copy()},
                        protocols={"A": ProtocolKind.NONPRIV})
    out = speculative_run(loop, params, config)
    sim = out.simulation
    print("case 1: input-dependent but parallel subscripts")
    print(f"  speculation passed: {out.passed}")
    print(f"  simulated cycles:   {sim.wall:,.0f} "
          f"(phases: { {k: round(v) for k, v in sim.phases.items()} })")

    # ------------------------------------------------------------------
    # Case 2: f() has a collision -> a cross-iteration dependence.
    # ------------------------------------------------------------------
    g = f.copy()
    # Iterations 0 and 2 now touch the same element.  (A collision with
    # an iteration in the same scheduling block would harmlessly stay on
    # one processor — the protocol is processor-wise.)
    g[16] = g[0]

    def body2(i, arrays):
        for k in range(8):
            j = int(g[(i * 8 + k) % n])
            arrays["A"][j] = arrays["A"][j] * 0.5 + float(i)

    loop2 = ConcreteLoop(body2, iterations, {"A": a0.copy()},
                         protocols={"A": ProtocolKind.NONPRIV})
    out2 = speculative_run(loop2, params, config)
    sim2 = out2.simulation
    print("\ncase 2: same loop with one subscript collision")
    print(f"  speculation passed: {out2.passed}")
    print(f"  failure: {sim2.failure}")
    print(f"  detected {sim2.detection_cycle:,.0f} cycles into the loop; "
          f"re-executed serially: {out2.reexecuted_serially}")

    # Both cases produce exactly the serial results.
    ref = a0.copy()
    for i in range(iterations):
        for k in range(8):
            j = int(g[(i * 8 + k) % n])
            ref[j] = ref[j] * 0.5 + float(i)
    assert np.allclose(out2.arrays["A"], ref)
    print("\nresults verified against serial execution: OK")


if __name__ == "__main__":
    main()
