"""Irregular scatter update — the paper's motivating workload class.

Applications like SPICE, DYNA-3D or CHARMM update arrays through
subscript arrays read from the input (``A(K(i)) = ...``), defeating
static analysis.  This example builds such a loop (an irregular
mesh-relaxation sweep), runs it under all four scenarios of §6
(Serial, Ideal, SW = software LRPD test, HW = this paper's hardware
scheme) and prints the Figure-11/12-style comparison.

Run:  python examples/irregular_scatter.py
"""

import random

from repro.params import default_params
from repro.runtime import (
    RunConfig,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    run_hw,
    run_ideal,
    run_serial,
    run_sw,
)
from repro.trace import ArraySpec, Loop, compute, read, write
from repro.types import ProtocolKind, Scenario


def build_mesh_sweep(nodes=4096, iterations=64, seed=11) -> Loop:
    """Each iteration relaxes a disjoint group of mesh nodes listed in an
    input-dependent index array, reading read-only neighbor data."""
    rng = random.Random(seed)
    order = list(range(nodes))
    rng.shuffle(order)
    per = nodes // iterations
    arrays = [
        ArraySpec("X", nodes, 8, ProtocolKind.NONPRIV),   # solution values
        ArraySpec("COEF", nodes, 8, modified=False),      # matrix coefficients
    ]
    body = []
    for i in range(iterations):
        ops = []
        for k in range(per):
            node = order[i * per + k]
            ops.append(read("X", node))
            ops.append(read("COEF", node))
            ops.append(compute(35))
            ops.append(write("X", node))
        body.append(ops)
    return Loop("mesh-sweep", arrays, body)


def main() -> None:
    loop = build_mesh_sweep()
    params = default_params(num_processors=16)
    static = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK)
    )
    proc_wise = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.PROCESSOR)
    )

    serial = run_serial(loop, params)
    runs = {
        Scenario.SERIAL: serial,
        Scenario.IDEAL: run_ideal(loop, params, static),
        Scenario.SW: run_sw(loop, params, proc_wise, serial_result=serial),
        Scenario.HW: run_hw(loop, params, static, serial_result=serial),
    }

    print(f"irregular mesh sweep: {loop.num_iterations} iterations over "
          f"{loop.array('X').length} nodes, 16 processors\n")
    print(f"{'scenario':<8} {'cycles':>12} {'speedup':>8}   "
          f"{'busy':>6} {'sync':>6} {'mem':>6}")
    for scenario, run in runs.items():
        bd = run.breakdown.normalized_to(serial.wall)
        speedup = serial.wall / run.wall
        print(f"{scenario.value:<8} {run.wall:>12,.0f} {speedup:>8.2f}   "
              f"{bd.busy:>6.2f} {bd.sync:>6.2f} {bd.mem:>6.2f}")

    hw, sw = runs[Scenario.HW], runs[Scenario.SW]
    print(f"\nhardware scheme is {sw.wall / hw.wall:.2f}x faster than the "
          f"software test on this loop")
    print(f"hardware protocol messages: {hw.spec_messages:,}")


if __name__ == "__main__":
    main()
