"""Compiler integration: adaptive speculation on a mixed loop stream.

Paper §2.2.4: "the compiler can use heuristics and statistics about the
parallelization success-rate in previous executions and automatically
decide when run-time parallelization can be profitable."

This example feeds an :class:`AdaptiveSpeculator` two loop sites that
are executed repeatedly (like Ocean's 4129 executions): one whose
input-dependent subscripts are always parallel, and one that is always
serial.  The policy learns to keep speculating on the first and to stop
wasting aborted work on the second — and the total simulated cost
approaches the per-site best static choice.

Run:  python examples/adaptive_compiler.py
"""

from repro.params import default_params
from repro.runtime import (
    AdaptiveSpeculator,
    RunConfig,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
)
from repro.runtime.driver import run_hw, run_serial
from repro.workloads.synthetic import failing_loop, parallel_nonpriv_loop

EXECUTIONS = 8


def main() -> None:
    params = default_params(num_processors=8)
    config = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK)
    )
    sites = {
        "parallel-site": lambda: parallel_nonpriv_loop(iterations=48, work_cycles=300),
        "serial-site": lambda: failing_loop(3, iterations=48, work_cycles=300),
    }

    policy = AdaptiveSpeculator(params, config, explore_after=6)
    totals = {name: 0.0 for name in sites}
    print(f"{'execution':>9}  {'site':<14} {'decision':<10} {'passed':<7} {'cycles':>10}")
    for execution in range(EXECUTIONS):
        for name, build in sites.items():
            decision, result = policy.execute(name, build())
            totals[name] += result.wall
            print(
                f"{execution:>9}  {name:<14} "
                f"{'speculate' if decision.speculate else 'serial':<10} "
                f"{str(result.passed):<7} {result.wall:>10,.0f}"
            )

    print("\ntotals vs static policies:")
    for name, build in sites.items():
        always_hw = sum(run_hw(build(), params, config).wall for _ in range(EXECUTIONS))
        always_serial = sum(run_serial(build(), params).wall for _ in range(EXECUTIONS))
        print(
            f"  {name:<14} adaptive={totals[name]:>11,.0f}  "
            f"always-speculate={always_hw:>11,.0f}  "
            f"always-serial={always_serial:>11,.0f}"
        )
    for name in sites:
        stats = policy.stats_for(name)
        print(
            f"  {name:<14} history: {stats.speculative_runs} speculative "
            f"({stats.passes} passed), {stats.serial_runs} serial"
        )


if __name__ == "__main__":
    main()
