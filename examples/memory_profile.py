"""Memory profiling of a speculative execution.

Attaches the unified telemetry layer (``RunConfig.telemetry``) to the
machines the driver builds, runs the Adm surrogate's loop under the
hardware scheme, and prints where the cycles went, which arrays caused
the traffic and which speculative messages flowed — the observability
story for diagnosing slow or failing speculation.

``AccessTrace``/``MessageLog`` here are plain subscribers on the same
event bus the telemetry owns; ``machine_hook`` runs after the bus is
attached, so it can subscribe them per machine.

Run:  python examples/memory_profile.py
"""

from repro.analysis import AccessTrace, MessageLog, format_summary, summarize_trace
from repro.obs import Telemetry
from repro.params import default_params
from repro.runtime import (
    RunConfig,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    run_hw,
)
from repro.workloads import AdmWorkload


def main() -> None:
    workload = AdmWorkload(scale=0.25)
    loop = next(workload.executions(1))
    params = default_params(8)

    telemetry = Telemetry()
    trace = AccessTrace(capacity=500_000)
    log = MessageLog()
    spaces = []

    def attach(machine):
        trace.subscribe(machine.bus)
        log.subscribe(machine.bus)
        spaces.append(machine.space)

    config = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK),
        telemetry=telemetry,
        machine_hook=attach,
    )
    result = run_hw(loop, params, config)

    print(f"Adm surrogate under the HW scheme: passed={result.passed}, "
          f"{result.wall:,.0f} cycles\n")
    print(telemetry.phase_report())
    print()
    print(format_summary(summarize_trace(trace, spaces[0])))
    print("\nspeculative protocol messages:")
    for label, count in sorted(log.by_label().items()):
        print(f"  {label:<16} {count:>6}")
    stats = result.mem
    print(f"\ncoherence: {stats.invalidations} invalidations, "
          f"{stats.writebacks} writebacks, "
          f"{stats.remote_2hop + stats.remote_3hop} remote misses")
    print(f"\nmetrics snapshot (stamped into RunResult.metrics): "
          f"{telemetry.registry.total('mem.accesses'):,.0f} accesses, "
          f"{telemetry.registry.total('spec.messages'):,.0f} messages")
    print(f"provenance: config {result.provenance.config_hash[:12]} "
          f"schedule {result.provenance.schedule}")


if __name__ == "__main__":
    main()
