"""Memory profiling of a speculative execution.

Attaches an access trace and a protocol message log to the machine the
driver builds (via ``RunConfig.machine_hook``), runs the Adm
surrogate's loop under the hardware scheme, and prints which arrays
caused the traffic and which speculative messages flowed — the
observability story for diagnosing slow or failing speculation.

Run:  python examples/memory_profile.py
"""

from repro.analysis import AccessTrace, MessageLog, format_summary, summarize_trace
from repro.params import default_params
from repro.runtime import (
    RunConfig,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    run_hw,
)
from repro.workloads import AdmWorkload


def main() -> None:
    workload = AdmWorkload(scale=0.25)
    loop = next(workload.executions(1))
    params = default_params(8)

    trace = AccessTrace(capacity=500_000)
    log = MessageLog()
    spaces = []

    def attach(machine):
        trace.attach(machine.memsys)
        if machine.spec is not None:
            machine.spec.ctx.message_log = log
        spaces.append(machine.space)

    config = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK),
        machine_hook=attach,
    )
    result = run_hw(loop, params, config)

    print(f"Adm surrogate under the HW scheme: passed={result.passed}, "
          f"{result.wall:,.0f} cycles\n")
    print(format_summary(summarize_trace(trace, spaces[0])))
    print("\nspeculative protocol messages:")
    for label, count in sorted(log.by_label().items()):
        print(f"  {label:<16} {count:>6}")
    stats = result.mem
    print(f"\ncoherence: {stats.invalidations} invalidations, "
          f"{stats.writebacks} writebacks, "
          f"{stats.remote_2hop + stats.remote_3hop} remote misses")


if __name__ == "__main__":
    main()
