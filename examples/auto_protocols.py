"""Automatic protocol selection — the compiler's job, automated.

The paper assumes the compiler (or programmer) decides which run-time
test each non-analyzable array gets (§2.2.2, §4.1).  The
:mod:`repro.compilerfe` front end makes that decision from a profiled
execution: read-only data is left alone, disjoint updates get the cheap
non-privatization test, temporaries get the reduced privatization
protocol, Figure-3 patterns get read-in/copy-out, and unclear cases
fall back to the most general test.

Run:  python examples/auto_protocols.py
"""

import numpy as np

from repro.compilerfe import auto_speculative_run
from repro.params import default_params
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode
from repro.semantics import ConcreteLoop


def main() -> None:
    rng = np.random.default_rng(7)
    n = 512
    perm = rng.permutation(n)

    # A loop with four very different arrays:
    #   POS    — read-only input positions
    #   OUT    — scattered per-iteration output (disjoint subscripts)
    #   ACC    — a per-iteration accumulator scratchpad
    #   HIST   — read-first then written later (needs read-in/copy-out)
    def body(i, arrays):
        j = int(perm[i])
        x = arrays["POS"][j]
        arrays["ACC"][0] = x * 2.0
        arrays["ACC"][1] = arrays["ACC"][0] + 1.0
        arrays["OUT"][j] = arrays["ACC"][1]
        if i < 4:
            _ = arrays["HIST"][i % 4]        # read-first (early iterations)
        else:
            arrays["HIST"][i % 4] = float(i)  # written later

    loop = ConcreteLoop(
        body,
        iterations=64,
        arrays={
            "POS": rng.random(n),
            "OUT": np.zeros(n),
            "ACC": np.zeros(4),
            "HIST": np.zeros(4),
        },
        live_out=("HIST",),
    )
    params = default_params(8)
    config = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.BLOCK_CYCLIC, 1, VirtualMode.CHUNK)
    )
    choices, outcome = auto_speculative_run(loop, params, config)

    print("chosen protocols:")
    for name, choice in sorted(choices.items()):
        print(f"  {name:<5} -> {choice.protocol.value:<12} ({choice.reason})")
    print(f"\nspeculation passed: {outcome.passed}")
    print(f"simulated cycles:   {outcome.simulation.wall:,.0f}")


if __name__ == "__main__":
    main()
