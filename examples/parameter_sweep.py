"""Parameter sweeps: machine and scheduling knobs in one API.

Shows the generic sweep helper on two questions the ablation benches
also answer: how directory contention erodes speedup, and how the
dynamic block size trades scheduling overhead against load imbalance.

Run:  python examples/parameter_sweep.py
"""

from repro.experiments.sweeps import format_sweep, sweep_config, sweep_machine
from repro.params import default_params
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode
from repro.types import Scenario
from repro.workloads import P3mWorkload
from repro.workloads.synthetic import parallel_nonpriv_loop


def main() -> None:
    # 1. Directory occupancy vs Ideal speedup on a parallel loop.
    loop = parallel_nonpriv_loop(iterations=64, work_cycles=40)
    points = sweep_machine(
        loop,
        "contention.directory_occupancy",
        [0, 4, 8, 16, 32],
        scenario=Scenario.IDEAL,
        base_params=default_params(16),
    )
    print("directory occupancy vs Ideal speedup (16 processors)")
    print(format_sweep(points, label="occupancy"))

    # 2. Dynamic block size on the imbalanced P3m surrogate (HW scheme).
    p3m = P3mWorkload(scale=0.06)
    p3m_loop = next(p3m.executions(1))

    def config(chunk: int) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, chunk, VirtualMode.CHUNK)
        )

    points = sweep_config(
        p3m_loop, config, [1, 2, 4, 8, 16],
        scenario=Scenario.HW, params=default_params(16),
    )
    print("\ndynamic block size vs HW speedup on P3m (imbalanced)")
    print(format_sweep(points, label="block size"))


if __name__ == "__main__":
    main()
