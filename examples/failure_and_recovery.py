"""Early failure detection — the hardware scheme's headline feature.

A loop that turns out to be serial costs the software LRPD test its
*entire* parallel execution (the test only runs after the loop ends),
while the hardware scheme aborts the moment the dependence occurs.
This example injects a cross-iteration dependence at different points
of a loop and shows the hardware abort latency tracking the dependence
position while the software cost stays flat (paper §6.2 / ablation A3).

The hardware runs execute with the invariant monitors armed
(``RunConfig(monitors=MonitorSuite())``), so each abort also yields a
forensic report naming the culprit element, the dependent iterations
and the processors they ran on — the last one is printed in full.

Run:  python examples/failure_and_recovery.py
"""

from repro.obs import MonitorSuite
from repro.params import default_params
from repro.runtime import (
    RunConfig,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    run_hw,
    run_serial,
    run_sw,
)
from repro.workloads.synthetic import failing_loop

ITERATIONS = 64


def main() -> None:
    params = default_params(num_processors=8)
    hw_cfg = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK),
        monitors=MonitorSuite(),
    )
    sw_cfg = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.ITERATION)
    )

    print(f"loop of {ITERATIONS} iterations with one injected dependence; "
          f"8 processors\n")
    print(f"{'dep at iter':>11} {'HW abort@cycle':>15} {'HW total':>10} "
          f"{'SW total':>10} {'Serial':>10}")
    for position in (4, 12, 24, 40, 56):
        loop = failing_loop(position, iterations=ITERATIONS, work_cycles=120)
        serial = run_serial(loop, params)
        hw = run_hw(loop, params, hw_cfg, serial_result=serial)
        sw = run_sw(loop, params, sw_cfg, serial_result=serial)
        assert not hw.passed and not sw.passed
        assert hw.violations == []  # monitors saw nothing illegal
        print(f"{position:>11} {hw.detection_cycle:>15,.0f} "
              f"{hw.wall:>10,.0f} {sw.wall:>10,.0f} {serial.wall:>10,.0f}")

    print("\nthe hardware abort point follows the dependence position; the")
    print("software scheme always pays the full speculative execution plus")
    print("the marking/merging/analysis overhead before it can even know.")

    print("\nwhy did the last run abort?  the forensics engine answers:\n")
    print(hw.forensics.to_text())


if __name__ == "__main__":
    main()
