"""Protocol-level walkthrough of the non-privatization algorithm.

Drives a 2-processor machine through the exact transactions of the
paper's Figures 6/7 — including the First_update race — printing the
per-element directory state after each step.  Useful for understanding
the coherence extensions at the access-bit level.

A ``MessageLog`` subscribed on the machine's event bus captures every
speculative message as it is delivered, so the race in scenario 3 can
be replayed message by message.

Run:  python examples/protocol_trace.py
"""

from repro.analysis import MessageLog
from repro.core.accessbits import NO_PROC
from repro.obs import EventBus
from repro.params import small_test_params
from repro.sim.machine import Machine
from repro.types import ProtocolKind


def show(machine, label, element):
    table = machine.spec.nonpriv.table("A")
    first = int(table.first[element])
    first_s = "NONE" if first == NO_PROC else f"P{first}"
    failed = machine.spec.controller.failure
    print(f"  {label:<46} dir[A[{element}]]: First={first_s:<5} "
          f"NoShr={int(table.priv[element])} ROnly={int(table.ronly[element])}"
          f"{'   ** FAIL: ' + failed.reason if failed else ''}")


def fresh():
    m = Machine(small_test_params(2))
    m.attach_bus(EventBus())
    log = MessageLog()
    log.subscribe(m.bus)
    a = m.space.allocate("A", 64, elem_bytes=8, protocol=ProtocolKind.NONPRIV)
    m.spec.register_nonpriv(a)
    m.spec.arm()
    return m, a, log


def main() -> None:
    print("scenario 1: read-only sharing (passes)")
    m, a, _ = fresh()
    m.memsys.read(0, a.addr_of(3), 0.0); m.engine.drain()
    show(m, "P0 reads A[3] (miss, First:=P0)", 3)
    m.memsys.read(1, a.addr_of(3), 100.0); m.engine.drain()
    show(m, "P1 reads A[3] (miss, ROnly:=1)", 3)
    m.memsys.read(0, a.addr_of(3), 200.0); m.engine.drain()
    show(m, "P0 re-reads A[3] (cache hit, no traffic)", 3)

    print("\nscenario 2: write after remote read (fails at the directory)")
    m, a, _ = fresh()
    m.memsys.read(1, a.addr_of(5), 0.0); m.engine.drain()
    show(m, "P1 reads A[5]", 5)
    m.memsys.write(0, a.addr_of(5), 100.0); m.engine.drain()
    show(m, "P0 writes A[5] -> Fig 6-(d) check", 5)

    print("\nscenario 3: the First_update race (Figs 6-(f)/(g))")
    m, a, log = fresh()
    # Both processors cache the line via another element...
    m.memsys.read(0, a.addr_of(1), 0.0)
    m.memsys.read(1, a.addr_of(1), 50.0)
    m.engine.drain()
    show(m, "both caches hold the line (via A[1])", 0)
    # ...then read A[0] nearly simultaneously: two in-flight updates.
    m.memsys.read(0, a.addr_of(0), 1000.0)
    m.memsys.read(1, a.addr_of(0), 1000.5)
    show(m, "P0 and P1 read A[0] (updates in flight)", 0)
    m.engine.drain()
    show(m, "updates serialized at home; loser bounced", 0)
    print(f"\n  messages: {m.spec.stats.first_updates} First_update, "
          f"{m.spec.stats.first_update_fails} First_update_fail, "
          f"{m.spec.stats.ronly_updates} ROnly_update")
    print("  replay from the event bus:")
    for msg in log:
        print(f"    t={msg.time:>7.1f}  P{msg.proc}  {msg.label:<18} "
              f"{msg.array}[{msg.index}]")
    print(f"  outcome: failed={m.spec.controller.failed} "
          f"(two readers -> element is read-shared, still parallel)")


if __name__ == "__main__":
    main()
