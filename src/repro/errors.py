"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause.
``SpeculationFailure`` is *not* an error in the usual sense — it is the
signal, defined by the paper, that the speculative parallel execution of
a loop detected a cross-iteration dependence and must be aborted.  It is
an exception because the hardware aborts execution at the instant of
detection, which maps naturally onto stack unwinding.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A machine, loop, or protocol was configured inconsistently."""


class AddressError(ReproError):
    """An address fell outside every declared array or overlapped one."""


class ProtocolError(ReproError):
    """The coherence or speculation protocol reached an impossible state.

    Raised only on internal invariant violations; seeing this exception
    indicates a bug in the simulator, never a property of the workload.
    """


class SchedulingError(ReproError):
    """An iteration schedule violated a protocol's scheduling constraint.

    For example, the non-privatization protocol requires each processor to
    execute its iterations in increasing order (paper §4.1), and the
    processor-wise software test requires static chunks of contiguous
    iterations (paper §2.2.3).
    """


class SpeculationFailure(ReproError):
    """A cross-iteration dependence was detected during speculation.

    Carries enough context to report *when* and *where* the parallel
    execution was aborted — the hardware scheme's headline advantage is
    that this happens as soon as the dependence occurs (paper §3.1).

    Attributes:
        reason: human-readable description of the failing protocol check.
        element: the (array name, element index) that triggered the
            failure, when known.
        detected_at: simulated cycle at which the FAIL was raised.
        iteration: loop iteration being executed by the faulting
            processor, when known.
        processor: ID of the processor whose access triggered the FAIL.
    """

    def __init__(
        self,
        reason: str,
        element: "tuple[str, int] | None" = None,
        detected_at: "int | None" = None,
        iteration: "int | None" = None,
        processor: "int | None" = None,
    ) -> None:
        super().__init__(reason)
        self.reason = reason
        self.element = element
        self.detected_at = detected_at
        self.iteration = iteration
        self.processor = processor

    def __reduce__(self):
        # Default exception pickling keeps only ``args`` (the reason);
        # results cross process boundaries in the experiment pool, so
        # the full failure attribution must survive a pickle round-trip.
        return (
            type(self),
            (
                self.reason,
                self.element,
                self.detected_at,
                self.iteration,
                self.processor,
            ),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.reason]
        if self.element is not None:
            parts.append(f"element={self.element[0]}[{self.element[1]}]")
        if self.iteration is not None:
            parts.append(f"iteration={self.iteration}")
        if self.processor is not None:
            parts.append(f"processor={self.processor}")
        if self.detected_at is not None:
            parts.append(f"cycle={self.detected_at}")
        return " ".join(parts)
