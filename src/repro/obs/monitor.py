"""Online protocol invariant monitors (speculation forensics, part 1).

The protocols of the paper admit compact runtime invariants: the
non-privatization directory state of Figs 6/7 may only move *forward*
(``First`` goes unset -> set once, ``Priv`` and ``ROnly`` are sticky),
the privatization time stamps of Figs 8/9 are monotone (``MaxR1st``
never decreases, ``MinW`` never increases once set) and a FAIL must be
raised exactly when ``MaxR1st > MinW`` would become true.  The monitors
in this module subscribe to the event bus and check every committed
directory update against these state machines, independently of the
protocol implementation that produced them — a second, redundant
observer in the spirit of hardware assertion checkers.

A monitor never changes simulation behavior.  Violations are collected
as structured :class:`InvariantViolation` records (carrying the
offending event and a bounded window of recent history) and stamped
into ``RunResult.violations``; with ``strict=True`` the first violation
raises immediately, aborting the run loudly.

Arming::

    from repro.obs import MonitorSuite
    from repro.runtime.driver import RunConfig, run_hw

    suite = MonitorSuite()
    result = run_hw(loop, params, config=RunConfig(monitors=suite))
    assert result.violations == []       # protocols behaved
    if not result.passed:
        print(result.forensics.to_text())  # see repro.obs.forensics

With ``monitors=None`` (the default) nothing subscribes to the
speculation-directory events, ``bus.wants_spec`` stays False, and the
protocol hot paths never snapshot table state — the null path is free.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ProtocolError
from .bus import EventBus, EventRecorder
from .events import (
    AbortEvent,
    DirTransitionEvent,
    EpochSyncEvent,
    Event,
    FailureEvent,
    NonPrivDirUpdateEvent,
    PrivDirUpdateEvent,
    PrivSimpleDirUpdateEvent,
    ProtocolMessageEvent,
    RunStartEvent,
)

__all__ = [
    "InvariantViolation",
    "Monitor",
    "NonPrivMonitor",
    "PrivMonitor",
    "PrivSimpleMonitor",
    "CoherenceMonitor",
    "MonitorSuite",
]

#: ``NonPrivDirTable.first`` value for "no processor yet" (kept local so
#: the monitor does not import protocol internals it is checking).
_NO_PROC = -1


class InvariantViolation(ProtocolError):
    """A monitor observed a directory update that the protocol state
    machine cannot legally produce.

    Like every :class:`~repro.errors.ProtocolError` this indicates a
    simulator bug (or deliberately corrupted state in a test), never a
    property of the workload.

    Attributes:
        monitor: name of the monitor that fired.
        invariant: short identifier of the violated invariant.
        detail: human-readable description of what went wrong.
        event: the offending event, when one exists (end-of-run checks
            attach the event that poisoned the state).
        history: recent events seen by the monitor before the violation,
            oldest first — the local context for debugging.
    """

    def __init__(
        self,
        monitor: str,
        invariant: str,
        detail: str,
        event: Optional[Event] = None,
        history: Tuple[Event, ...] = (),
    ) -> None:
        super().__init__(f"[{monitor}/{invariant}] {detail}")
        self.monitor = monitor
        self.invariant = invariant
        self.detail = detail
        self.event = event
        self.history = tuple(history)

    def to_dict(self) -> dict:
        from .export import event_to_dict

        return {
            "monitor": self.monitor,
            "invariant": self.invariant,
            "detail": self.detail,
            "event": event_to_dict(self.event) if self.event is not None else None,
            "history": [event_to_dict(e) for e in self.history],
        }


class Monitor:
    """Base class: event routing, bounded history, violation collection.

    Subclasses list the event types they check in :attr:`event_types`
    and implement :meth:`check`; deferred end-of-run invariants go in
    :meth:`finish`.  Monitors are reusable across runs — per-run state
    is dropped on every ``RunStartEvent`` (and violations are drained by
    :meth:`take_violations` at each ``finalize``).
    """

    name = "monitor"
    #: event types routed to :meth:`check`
    event_types: Tuple[type, ...] = ()

    def __init__(self, history: int = 32, strict: bool = False) -> None:
        self.history: Deque[Event] = collections.deque(maxlen=history)
        self.violations: List[InvariantViolation] = []
        self.strict = strict
        self.events_seen = 0
        self._failed = False
        self.reset()

    # ------------------------------------------------------------------
    def subscribe(self, bus: EventBus) -> "Monitor":
        for event_type in self.event_types:
            bus.subscribe(event_type, self._on_event)
        bus.subscribe(RunStartEvent, self._on_run_start)
        bus.subscribe(FailureEvent, self._on_failure)
        return self

    def unsubscribe(self, bus: EventBus) -> None:
        for event_type in self.event_types:
            bus.unsubscribe(event_type, self._on_event)
        bus.unsubscribe(RunStartEvent, self._on_run_start)
        bus.unsubscribe(FailureEvent, self._on_failure)

    # ------------------------------------------------------------------
    def _on_run_start(self, event: Event) -> None:
        self.reset()

    def _on_failure(self, event: Event) -> None:
        self._failed = True

    def _on_event(self, event: Event) -> None:
        self.events_seen += 1
        self.check(event)
        self.history.append(event)

    # ------------------------------------------------------------------
    def check(self, event: Event) -> None:
        """Check one event against the online invariants."""
        raise NotImplementedError

    def finish(self, failed: bool) -> None:
        """End-of-run invariants (e.g. "poisoned state requires FAIL")."""

    def reset(self) -> None:
        """Drop per-run tracking state (new run on the same machine)."""
        self.history.clear()
        self._failed = False

    def take_violations(self) -> List[InvariantViolation]:
        out, self.violations = self.violations, []
        return out

    # ------------------------------------------------------------------
    def _violate(
        self, invariant: str, detail: str, event: Optional[Event] = None
    ) -> InvariantViolation:
        violation = InvariantViolation(
            self.name, invariant, detail, event, tuple(self.history)
        )
        self.violations.append(violation)
        if self.strict:
            raise violation
        return violation


def _fmt_nonpriv(state: Tuple[int, bool, bool]) -> str:
    first, priv, ronly = state
    first_s = "unset" if first == _NO_PROC else f"P{first}"
    return f"(First={first_s}, Priv={int(priv)}, ROnly={int(ronly)})"


class NonPrivMonitor(Monitor):
    """Checks the non-privatization state machine (Figs 6/7).

    Online invariants, per element:

    * ``first-stability`` — ``First`` moves unset -> set exactly once;
      a committed reassignment ``Pp -> Pq`` is impossible (every method
      of Figs 6/7 FAILs instead).
    * ``priv-sticky`` / ``ronly-sticky`` — ``NoShr(Priv)`` and ``ROnly``
      are never cleared during a loop.
    * ``state-continuity`` — each update's *before* state equals the
      last committed *after* state; a mismatch means the table was
      mutated outside the protocol (the corrupted-directory detector).
    * ``first-update-race`` — a ``First_update_fail`` bounce requires
      that the home's ``First`` was already held by a different
      processor (Fig 6-(f)).
    * ``fail-on-priv-ronly`` (end of run) — an element that ended both
      written-privately and read-shared must have FAILed the run
      (Fig 7-(h): such an element is neither read-only nor
      single-processor).
    """

    name = "nonpriv"
    event_types = (NonPrivDirUpdateEvent, ProtocolMessageEvent)

    def reset(self) -> None:
        super().reset()
        self._state: Dict[Tuple[str, int], Tuple[int, bool, bool]] = {}
        self._poisoned: Dict[Tuple[str, int], Event] = {}

    def check(self, event: Event) -> None:
        if type(event) is ProtocolMessageEvent:
            if event.label == "First_update_fail":
                self._check_bounce(event)
            return
        key = (event.array, event.index)
        prev = (event.prev_first, event.prev_priv, event.prev_ronly)
        new = (event.first, event.priv, event.ronly)
        known = self._state.get(key)
        if known is not None and known != prev:
            self._violate(
                "state-continuity",
                f"{event.array}[{event.index}] was {_fmt_nonpriv(known)} after "
                f"the last protocol update but this {event.cause} starts from "
                f"{_fmt_nonpriv(prev)}: the directory was mutated outside the "
                "protocol",
                event,
            )
        self._state[key] = new
        if event.prev_first != _NO_PROC and event.first != event.prev_first:
            self._violate(
                "first-stability",
                f"First({event.array}[{event.index}]) reassigned P{event.prev_first}"
                f" -> P{event.first} by a {event.cause}; Figs 6/7 only ever set an"
                " unset First (any contender FAILs or turns the element ROnly)",
                event,
            )
        if event.prev_priv and not event.priv:
            self._violate(
                "priv-sticky",
                f"NoShr(Priv) bit of {event.array}[{event.index}] cleared by a "
                f"{event.cause}; the bit is sticky for the whole loop",
                event,
            )
        if event.prev_ronly and not event.ronly:
            self._violate(
                "ronly-sticky",
                f"ROnly bit of {event.array}[{event.index}] cleared by a "
                f"{event.cause}; the bit is sticky for the whole loop",
                event,
            )
        if event.priv and event.ronly:
            self._poisoned.setdefault(key, event)

    def _check_bounce(self, event: Event) -> None:
        state = self._state.get((event.array, event.index))
        first = state[0] if state is not None else _NO_PROC
        if first in (_NO_PROC, event.proc):
            holder = "unset" if first == _NO_PROC else f"held by P{first} itself"
            self._violate(
                "first-update-race",
                f"First_update_fail bounced to P{event.proc} for "
                f"{event.array}[{event.index}] but the home's First is {holder};"
                " Fig 6-(f) bounces only when another processor won the race",
                event,
            )

    def finish(self, failed: bool) -> None:
        if failed:
            return
        for (array, index), event in self._poisoned.items():
            self._violate(
                "fail-on-priv-ronly",
                f"{array}[{index}] ended the loop both written privately (Priv)"
                " and read-shared (ROnly) yet no FAIL was raised; such an"
                " element is neither read-only nor single-processor (Fig 7)",
                event,
            )


class PrivMonitor(Monitor):
    """Checks the full-privatization time stamps (Figs 8/9).

    Online invariants, per element of the shared directory:

    * ``max-r1st-monotone`` — ``MaxR1st`` never decreases.
    * ``min-w-monotone`` — ``MinW`` never increases once set (and never
      becomes unset again).
    * ``fail-iff-overlap`` — a committed state with
      ``MaxR1st > MinW`` is impossible: the protocol must FAIL *instead
      of* committing the update that would create it (Figs 8-(d)/9-(i)).
    * ``state-continuity`` — as in :class:`NonPrivMonitor`.
    * ``tag-epoch`` — per (processor, element), the iteration numbers
      carried by ``read-first``/``first-write`` signals never decrease:
      processors execute their iterations in ascending virtual order,
      so a signal for an older iteration means the per-iteration
      ``Read1st``/``Write`` tag bits leaked across a boundary.

    All per-element tracking resets at every ``EpochSyncEvent`` — the
    time-stamp overflow synchronization of §3.3 clears the tables and
    restarts the virtual numbering.
    """

    name = "priv"
    event_types = (PrivDirUpdateEvent, ProtocolMessageEvent, EpochSyncEvent)

    def reset(self) -> None:
        super().reset()
        self._state: Dict[Tuple[str, int], Tuple[int, Optional[int]]] = {}
        self._signaled: Dict[Tuple[int, str, int, str], int] = {}

    def check(self, event: Event) -> None:
        if type(event) is EpochSyncEvent:
            self._state.clear()
            self._signaled.clear()
            return
        if type(event) is ProtocolMessageEvent:
            if event.label in ("read-first", "first-write") and (
                event.iteration is not None
            ):
                self._check_signal(event)
            return
        key = (event.array, event.index)
        prev = (event.prev_max_r1st, event.prev_min_w)
        known = self._state.get(key)
        if known is not None and known != prev:
            self._violate(
                "state-continuity",
                f"{event.array}[{event.index}] had (MaxR1st={known[0]}, "
                f"MinW={known[1]}) after the last protocol update but this "
                f"{event.cause} starts from (MaxR1st={prev[0]}, MinW={prev[1]}):"
                " the shared directory was mutated outside the protocol",
                event,
            )
        self._state[key] = (event.max_r1st, event.min_w)
        if event.max_r1st < event.prev_max_r1st:
            self._violate(
                "max-r1st-monotone",
                f"MaxR1st({event.array}[{event.index}]) decreased "
                f"{event.prev_max_r1st} -> {event.max_r1st} on a {event.cause}",
                event,
            )
        if event.prev_min_w is not None and (
            event.min_w is None or event.min_w > event.prev_min_w
        ):
            self._violate(
                "min-w-monotone",
                f"MinW({event.array}[{event.index}]) increased "
                f"{event.prev_min_w} -> {event.min_w} on a {event.cause}",
                event,
            )
        if event.min_w is not None and event.max_r1st > event.min_w:
            self._violate(
                "fail-iff-overlap",
                f"{event.array}[{event.index}] committed MaxR1st={event.max_r1st}"
                f" > MinW={event.min_w} on a {event.cause}; the protocol must"
                " FAIL instead of committing a read-first after a write"
                " (Figs 8-(d)/9-(i))",
                event,
            )

    def _check_signal(self, event: Event) -> None:
        # Same-iteration repeats are benign (a signal can race the tag
        # fill that would have suppressed it); a *lower* iteration means
        # the tag bits survived an iteration boundary they must not.
        key = (event.proc, event.array, event.index, event.label)
        last = self._signaled.get(key)
        if last is not None and event.iteration < last:
            self._violate(
                "tag-epoch",
                f"P{event.proc} signaled {event.label} for "
                f"{event.array}[{event.index}] in iteration {event.iteration}"
                f" after already signaling iteration {last}; per-iteration"
                " tag bits must be cleared at each iteration boundary, so"
                " signal iterations never go backwards on one processor",
                event,
            )
        if last is None or event.iteration > last:
            self._signaled[key] = event.iteration


class PrivSimpleMonitor(Monitor):
    """Checks the reduced privatization scheme (§4.1): sticky
    ``AnyR1st``/``AnyW`` bits, and FAIL exactly when both are set."""

    name = "priv-simple"
    event_types = (PrivSimpleDirUpdateEvent,)

    def reset(self) -> None:
        super().reset()
        self._state: Dict[Tuple[str, int], Tuple[bool, bool]] = {}
        self._poisoned: Dict[Tuple[str, int], Event] = {}

    def check(self, event: Event) -> None:
        key = (event.array, event.index)
        prev = (event.prev_any_r1st, event.prev_any_w)
        known = self._state.get(key)
        if known is not None and known != prev:
            self._violate(
                "state-continuity",
                f"{event.array}[{event.index}] had (AnyR1st={int(known[0])}, "
                f"AnyW={int(known[1])}) after the last protocol update but this "
                f"{event.cause} starts from (AnyR1st={int(prev[0])}, "
                f"AnyW={int(prev[1])})",
                event,
            )
        self._state[key] = (event.any_r1st, event.any_w)
        for bit, was, now_ in (
            ("AnyR1st", event.prev_any_r1st, event.any_r1st),
            ("AnyW", event.prev_any_w, event.any_w),
        ):
            if was and not now_:
                self._violate(
                    "any-sticky",
                    f"{bit}({event.array}[{event.index}]) cleared by a "
                    f"{event.cause}; the bits are sticky for the whole loop",
                    event,
                )
        if event.any_r1st and event.any_w:
            self._poisoned.setdefault(key, event)

    def finish(self, failed: bool) -> None:
        if failed:
            return
        for (array, index), event in self._poisoned.items():
            self._violate(
                "fail-on-both",
                f"{array}[{index}] has both AnyR1st and AnyW set yet no FAIL"
                " was raised; §4.1 fails as soon as an element is both"
                " read-first and written",
                event,
            )


class CoherenceMonitor(Monitor):
    """Checks every home-directory transition against the base
    coherence state machine
    (:data:`repro.memsys.directory.LEGAL_DIR_TRANSITIONS`)."""

    name = "coherence"
    event_types = (DirTransitionEvent,)

    def __init__(self, history: int = 32, strict: bool = False) -> None:
        # Deferred import: memsys pulls in obs.events, so importing it at
        # module load would cycle through a half-initialized package.
        from ..memsys.directory import legal_transition

        self._legal = legal_transition
        super().__init__(history=history, strict=strict)

    def check(self, event: Event) -> None:
        if not self._legal(event.prev, event.new, event.kind):
            kind = event.kind.name if event.kind is not None else "maintenance"
            self._violate(
                "legal-transition",
                f"line {event.line_addr:#x} at node {event.node} moved "
                f"{event.prev.name} -> {event.new.name} on a {kind} request,"
                " which the base protocol state machine does not allow",
                event,
            )


#: event types the suite records for forensic reconstruction
_FORENSIC_TYPES = (
    ProtocolMessageEvent,
    NonPrivDirUpdateEvent,
    PrivDirUpdateEvent,
    PrivSimpleDirUpdateEvent,
    FailureEvent,
    AbortEvent,
    EpochSyncEvent,
    RunStartEvent,
)


class MonitorSuite:
    """The standard bundle: all four protocol monitors plus an event
    recorder feeding the forensics engine.

    Pass as ``RunConfig(monitors=suite)``.  The suite shares the
    machine's existing event bus when telemetry is also attached
    (telemetry attaches first), and brings its own bus otherwise.
    After the run, ``RunResult.violations`` holds this run's violations
    and — when the speculation failed — ``RunResult.forensics`` holds
    the :class:`~repro.obs.forensics.ForensicReport`.
    """

    def __init__(
        self,
        monitors: Optional[List[Monitor]] = None,
        strict: bool = False,
        history: int = 32,
        capacity: int = 65536,
        reproduce: bool = True,
    ) -> None:
        if monitors is None:
            monitors = [
                NonPrivMonitor(history=history, strict=strict),
                PrivMonitor(history=history, strict=strict),
                PrivSimpleMonitor(history=history, strict=strict),
                CoherenceMonitor(history=history, strict=strict),
            ]
        self.monitors = monitors
        self.strict = strict
        #: whether finalize builds (and validates) minimized reproducers
        self.reproduce = reproduce
        self.events = EventRecorder(capacity=capacity)
        self._bus: Optional[EventBus] = None

    # ------------------------------------------------------------------
    def attach(self, machine) -> "MonitorSuite":
        """Wire the monitors into a machine — the duck-typed interface
        ``RunConfig.monitors`` expects.  Reuses the machine's bus when
        one is already attached (so telemetry and monitors share a
        stream); creates and attaches a fresh bus otherwise."""
        bus = getattr(machine, "bus", None)
        if bus is None:
            bus = EventBus()
            machine.attach_bus(bus)
        self.subscribe(bus)
        return self

    def subscribe(self, bus: EventBus) -> "MonitorSuite":
        if bus is self._bus:
            return self  # already wired (e.g. reused config)
        if self._bus is not None:
            self.unsubscribe()
        for monitor in self.monitors:
            monitor.subscribe(bus)
        self.events.subscribe(bus, *_FORENSIC_TYPES)
        self._bus = bus
        return self

    def unsubscribe(self) -> None:
        if self._bus is None:
            return
        for monitor in self.monitors:
            monitor.unsubscribe(self._bus)
        for event_type in _FORENSIC_TYPES:
            self._bus.unsubscribe(event_type, self.events.append)
        self._bus = None

    # ------------------------------------------------------------------
    def run_events(self) -> List[Event]:
        """Recorded events of the *latest* run (since the last
        ``RunStartEvent``)."""
        records = self.events.records
        for i in range(len(records) - 1, -1, -1):
            if type(records[i]) is RunStartEvent:
                return records[i:]
        return list(records)

    # ------------------------------------------------------------------
    def finalize(self, result, loop=None) -> None:
        """End-of-run hook called by the scenario drivers: run deferred
        checks, stamp violations, and on a failed speculation build the
        forensic report."""
        failed = not result.passed
        violations: List[InvariantViolation] = []
        for monitor in self.monitors:
            monitor.finish(failed)
            violations.extend(monitor.take_violations())
        result.violations = violations
        if failed and loop is not None and result.forensics is None:
            from .forensics import build_report

            result.forensics = build_report(
                loop, result, self.run_events(), reproduce=self.reproduce
            )
        if self.strict and violations:
            raise violations[0]
