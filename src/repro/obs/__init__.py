"""Unified telemetry for the simulator: events, bus, metrics, exports.

Quick start::

    from repro.obs import Telemetry
    from repro.runtime.driver import RunConfig, run_hw

    telemetry = Telemetry()
    results = run_hw(loop, num_processors=8,
                     config=RunConfig(telemetry=telemetry))
    telemetry.write_chrome_trace("trace.json")
    print(telemetry.phase_report())

See ``docs/observability.md`` for the event taxonomy and exporter
details.
"""

from .bus import BoundedLog, EventBus, EventRecorder
from .events import (
    AbortEvent,
    AccessEvent,
    BarrierWaitEvent,
    DirTransitionEvent,
    EpochSyncEvent,
    Event,
    FailureEvent,
    LedgerHitEvent,
    LedgerWriteEvent,
    PhaseBeginEvent,
    PhaseEndEvent,
    PoolEndEvent,
    PoolStartEvent,
    PoolTaskEvent,
    PoolWorkerFailureEvent,
    ProtocolMessageEvent,
    QuiesceEvent,
    RestoreEvent,
    RunEndEvent,
    RunStartEvent,
    SpeculationArmEvent,
)
from .export import (
    chrome_trace,
    event_to_dict,
    merged_chrome_trace,
    phase_report,
    span_trace_events,
    write_chrome_trace,
    write_jsonl,
    write_merged_chrome_trace,
)
from .forensics import ForensicReport, MinimizedReproducer, build_report, element_trace
from .ledger import LEDGER_DIR, RunLedger, as_ledger, ledger_key
from .metrics import Counter, Histogram, MetricsCollector, MetricsRegistry
from .monitor import (
    CoherenceMonitor,
    InvariantViolation,
    Monitor,
    MonitorSuite,
    NonPrivMonitor,
    PrivMonitor,
    PrivSimpleMonitor,
)
from .provenance import RunProvenance, canonical_json, fingerprint, run_provenance
from .spans import ProfileSession, SpanProfiler, WorkerCapture

__all__ = [
    "Telemetry",
    "EventBus",
    "BoundedLog",
    "EventRecorder",
    "Event",
    "AccessEvent",
    "DirTransitionEvent",
    "ProtocolMessageEvent",
    "SpeculationArmEvent",
    "FailureEvent",
    "BarrierWaitEvent",
    "EpochSyncEvent",
    "QuiesceEvent",
    "RunStartEvent",
    "RunEndEvent",
    "PhaseBeginEvent",
    "PhaseEndEvent",
    "AbortEvent",
    "RestoreEvent",
    "PoolStartEvent",
    "PoolTaskEvent",
    "PoolWorkerFailureEvent",
    "PoolEndEvent",
    "LedgerWriteEvent",
    "LedgerHitEvent",
    "RunLedger",
    "LEDGER_DIR",
    "as_ledger",
    "ledger_key",
    "InvariantViolation",
    "Monitor",
    "MonitorSuite",
    "NonPrivMonitor",
    "PrivMonitor",
    "PrivSimpleMonitor",
    "CoherenceMonitor",
    "ForensicReport",
    "MinimizedReproducer",
    "build_report",
    "element_trace",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MetricsCollector",
    "RunProvenance",
    "canonical_json",
    "fingerprint",
    "run_provenance",
    "chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "event_to_dict",
    "phase_report",
    "span_trace_events",
    "merged_chrome_trace",
    "write_merged_chrome_trace",
    "SpanProfiler",
    "WorkerCapture",
    "ProfileSession",
]


class Telemetry:
    """One-stop telemetry bundle: bus + full event recording + metrics.

    Pass an instance as ``RunConfig(telemetry=...)`` (or call
    :meth:`attach` on a machine directly); afterwards :attr:`events`
    holds the recorded stream, :attr:`registry` the aggregated metrics,
    and the exporter helpers write files straight from them.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.bus = EventBus()
        self.events = EventRecorder(capacity=capacity).subscribe(self.bus)
        self.collector = MetricsCollector()
        self.collector.subscribe(self.bus)

    @property
    def registry(self) -> MetricsRegistry:
        return self.collector.registry

    # ------------------------------------------------------------------
    def attach(self, machine) -> "Telemetry":
        """Wire the bus into a machine; the duck-typed interface
        ``RunConfig.telemetry`` expects.  Picks up the machine's address
        space so metrics resolve addresses to array names."""
        machine.attach_bus(self.bus)
        if getattr(machine, "space", None) is not None:
            self.collector.space = machine.space
        return self

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        return self.registry.as_dict()

    def write_chrome_trace(self, path: str, metadata: dict = None) -> int:
        return write_chrome_trace(self.events, path, metadata=metadata)

    def write_jsonl(self, path: str, include_hits: bool = False) -> int:
        return write_jsonl(self.events, path, include_hits=include_hits)

    def phase_report(self) -> str:
        return phase_report(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.registry.clear()
