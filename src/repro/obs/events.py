"""Typed telemetry events emitted on the :class:`~repro.obs.bus.EventBus`.

Every observable transition in the simulator is one frozen dataclass
here, tagged with the subsystem that emits it:

========== ======================================================
subsystem  events
========== ======================================================
memsys     :class:`AccessEvent`, :class:`DirTransitionEvent`
core       :class:`ProtocolMessageEvent`, :class:`SpeculationArmEvent`,
           :class:`FailureEvent`, :class:`NonPrivDirUpdateEvent`,
           :class:`PrivDirUpdateEvent`, :class:`PrivSimpleDirUpdateEvent`
sim        :class:`BarrierWaitEvent`, :class:`EpochSyncEvent`,
           :class:`QuiesceEvent`
runtime    :class:`RunStartEvent`, :class:`RunEndEvent`,
           :class:`PhaseBeginEvent`, :class:`PhaseEndEvent`,
           :class:`AbortEvent`, :class:`RestoreEvent`
pool       :class:`PoolStartEvent`, :class:`PoolTaskEvent`,
           :class:`PoolWorkerFailureEvent`, :class:`PoolEndEvent`
ledger     :class:`LedgerWriteEvent`, :class:`LedgerHitEvent`
========== ======================================================

Events are plain data: they carry no behavior and no references into
the machine, so they can be buffered, serialized and compared freely.
``time`` is always the simulated cycle at which the event happened —
except for the ``pool`` subsystem, which describes host-side experiment
fan-out and carries host seconds since the pool started instead, and
the ``ledger`` subsystem, where a write carries the simulated cycle at
run end and a cache hit carries 0.0 (no simulation ran).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Tuple

from ..types import AccessKind

__all__ = [
    "Event",
    "AccessEvent",
    "DirTransitionEvent",
    "ProtocolMessageEvent",
    "SpeculationArmEvent",
    "FailureEvent",
    "NonPrivDirUpdateEvent",
    "PrivDirUpdateEvent",
    "PrivSimpleDirUpdateEvent",
    "BarrierWaitEvent",
    "EpochSyncEvent",
    "QuiesceEvent",
    "RunStartEvent",
    "RunEndEvent",
    "PhaseBeginEvent",
    "PhaseEndEvent",
    "AbortEvent",
    "RestoreEvent",
    "PoolStartEvent",
    "PoolTaskEvent",
    "PoolWorkerFailureEvent",
    "PoolEndEvent",
    "LedgerWriteEvent",
    "LedgerHitEvent",
]


@dataclasses.dataclass(frozen=True)
class Event:
    """Base of all telemetry events (``time`` in simulated cycles)."""

    subsystem = "obs"  # class attribute, not a field
    name = "event"

    time: float


# ----------------------------------------------------------------------
# memsys
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AccessEvent(Event):
    """One simulated memory access (field order is stable API: the
    legacy ``repro.analysis.tracing.AccessRecord`` is an alias)."""

    subsystem = "memsys"
    name = "access"

    proc: int
    kind: AccessKind
    addr: int
    level: Any  # memsys.cache.HitLevel (kept untyped to avoid a cycle)
    latency: int


@dataclasses.dataclass(frozen=True)
class DirTransitionEvent(Event):
    """A home directory entry changed state during a transaction."""

    subsystem = "memsys"
    name = "dir-transition"

    node: int
    line_addr: int
    prev: Any  # types.DirState
    new: Any
    proc: int
    kind: Optional[AccessKind] = None


# ----------------------------------------------------------------------
# core (the speculative protocols)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ProtocolMessageEvent(Event):
    """One coherence-extension message (First_update, read-first, ...).

    Field order is stable API: the legacy
    ``repro.analysis.tracing.MessageRecord`` is an alias of this class.
    """

    subsystem = "core"
    name = "protocol-message"

    label: str
    proc: int
    array: str
    index: int
    #: virtual iteration carrying the message, when the protocol knows
    #: it (privatization signals); appended with a default so the legacy
    #: positional field order stays stable
    iteration: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class NonPrivDirUpdateEvent(Event):
    """One non-privatization directory-table update (Figs 6/7): the
    per-element ``First``/``NoShr(Priv)``/``ROnly`` state before and
    after, with the causing request.  Emitted only when a subscriber
    asked for it (``bus.wants_spec``) — the null path stays free."""

    subsystem = "core"
    name = "nonpriv-dir-update"

    array: str
    index: int
    proc: int
    #: "read-req" (b), "write-req" (d), "writeback" (e),
    #: "first-update" (f) or "ronly-update" (h)
    cause: str
    prev_first: int  # processor ID, NO_PROC (-1) when unset
    prev_priv: bool
    prev_ronly: bool
    first: int
    priv: bool
    ronly: bool


@dataclasses.dataclass(frozen=True)
class PrivDirUpdateEvent(Event):
    """One privatization shared-directory time-stamp update (Figs 8/9):
    ``MaxR1st``/``MinW`` before and after.  ``min_w`` of ``None`` means
    "no write seen yet" (compared as +infinity by the protocol)."""

    subsystem = "core"
    name = "priv-dir-update"

    array: str
    index: int
    proc: int
    iteration: int
    #: "read-first" (d), "first-write" (i), "read-in" (e) or
    #: "read-in-for-write" (j)
    cause: str
    prev_max_r1st: int
    prev_min_w: Optional[int]
    max_r1st: int
    min_w: Optional[int]


@dataclasses.dataclass(frozen=True)
class PrivSimpleDirUpdateEvent(Event):
    """One reduced-privatization shared-directory update (§4.1): the
    sticky ``AnyR1st``/``AnyW`` bits before and after."""

    subsystem = "core"
    name = "priv-simple-dir-update"

    array: str
    index: int
    proc: int
    iteration: int
    cause: str  # "read-first" or "write"
    prev_any_r1st: bool
    prev_any_w: bool
    any_r1st: bool
    any_w: bool


@dataclasses.dataclass(frozen=True)
class SpeculationArmEvent(Event):
    """Speculation armed (loop entry) or disarmed (loop exit)."""

    subsystem = "core"
    name = "speculation-arm"

    armed: bool


@dataclasses.dataclass(frozen=True)
class FailureEvent(Event):
    """A protocol check FAILed (first failure and late echoes alike)."""

    subsystem = "core"
    name = "failure"

    reason: str
    element: Optional[Tuple[str, int]] = None
    proc: Optional[int] = None
    iteration: Optional[int] = None


# ----------------------------------------------------------------------
# sim (discrete-event engine)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BarrierWaitEvent(Event):
    """One processor's wait at a barrier; ``time`` is the release."""

    subsystem = "sim"
    name = "barrier-wait"

    proc: int
    wait_cycles: float


@dataclasses.dataclass(frozen=True)
class EpochSyncEvent(Event):
    """Time-stamp overflow synchronization (§3.3)."""

    subsystem = "sim"
    name = "epoch-sync"

    epoch: int
    flushed_messages: int = 0


@dataclasses.dataclass(frozen=True)
class QuiesceEvent(Event):
    """The engine drained a phase to quiescence."""

    subsystem = "sim"
    name = "quiesce"

    events_processed: int
    aborted: bool = False


# ----------------------------------------------------------------------
# runtime (scenario drivers)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RunStartEvent(Event):
    subsystem = "runtime"
    name = "run-start"

    scenario: str
    loop_name: str
    num_processors: int


@dataclasses.dataclass(frozen=True)
class RunEndEvent(Event):
    subsystem = "runtime"
    name = "run-end"

    passed: bool
    wall: float


@dataclasses.dataclass(frozen=True)
class PhaseBeginEvent(Event):
    subsystem = "runtime"
    name = "phase-begin"

    phase: str


@dataclasses.dataclass(frozen=True)
class PhaseEndEvent(Event):
    subsystem = "runtime"
    name = "phase-end"

    phase: str
    duration: float


@dataclasses.dataclass(frozen=True)
class AbortEvent(Event):
    """The runtime abandoned a speculative execution."""

    subsystem = "runtime"
    name = "abort"

    reason: str
    detection_cycle: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class RestoreEvent(Event):
    """Saved state was restored after a failed speculation."""

    subsystem = "runtime"
    name = "restore"

    duration: float


# ----------------------------------------------------------------------
# pool (host-side parallel experiment execution)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PoolStartEvent(Event):
    """A process-pool fan-out of independent simulation runs started.

    ``time`` (and all pool events') is host seconds since the pool
    started, not simulated cycles.
    """

    subsystem = "pool"
    name = "pool-start"

    jobs: int
    tasks: int


@dataclasses.dataclass(frozen=True)
class PoolTaskEvent(Event):
    """One pool task completed (in a worker or degraded to inline)."""

    subsystem = "pool"
    name = "pool-task"

    index: int
    label: str
    attempts: int
    inline: bool


@dataclasses.dataclass(frozen=True)
class PoolWorkerFailureEvent(Event):
    """A pool task could not complete in a worker on this attempt."""

    subsystem = "pool"
    name = "pool-worker-failure"

    index: int
    label: str
    #: "timeout", "worker-died", "unpicklable" or "task-error"
    kind: str
    attempt: int


@dataclasses.dataclass(frozen=True)
class PoolEndEvent(Event):
    """The pool drained: every task produced a result (or raised)."""

    subsystem = "pool"
    name = "pool-end"

    completed: int
    failures: int
    inline_tasks: int


# ----------------------------------------------------------------------
# ledger (the provenance-keyed run archive)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class LedgerWriteEvent(Event):
    """A result was archived in a :class:`~repro.obs.ledger.RunLedger`.

    ``time`` is the simulated cycle at run end.  ``deduped`` means the
    content-addressed record already existed (an identical invocation
    was archived earlier) and nothing was rewritten.
    """

    subsystem = "ledger"
    name = "ledger-write"

    key: str
    kind: str
    passed: Optional[bool] = None
    deduped: bool = False


@dataclasses.dataclass(frozen=True)
class LedgerHitEvent(Event):
    """A run was served bit-identically from the ledger archive instead
    of being re-simulated.  ``time`` is 0.0 — no simulation ran."""

    subsystem = "ledger"
    name = "ledger-hit"

    key: str
    scenario: str = ""
    loop_name: str = ""
