"""Provenance-keyed run ledger: an append-only archive of every run.

Every :class:`~repro.runtime.driver.RunResult` already carries a
SHA-256 provenance manifest (:mod:`repro.obs.provenance`), but results
evaporate when the process exits.  The :class:`RunLedger` keeps them:
an on-disk, content-addressed store recording what was simulated, what
verdict it produced, and how fast it ran — the regression timeline for
the ``repro ledger`` CLI (``list`` / ``show`` / ``diff`` / ``trend`` /
``regressions``) and the cache behind ``RunConfig(ledger=...)``, which
serves an identical re-run bit-identically from the archive instead of
re-simulating it.

Layout (all under one root directory)::

    index.jsonl                     append-only, one summary line per
                                    record in write order — the timeline
    records/<key[:2]>/<key>.json    full record, content-addressed
    .lock                           advisory write lock

Keys are SHA-256 over the run's identity: the provenance ``config_hash``
(machine params + the data knobs of the run config), the scenario, the
package version and an explicit rendering of the workload loop — two
invocations share a key iff they would simulate the same thing.  Bench
and diffsweep records are keyed over their whole document, so every
fresh measurement is a new history point while re-importing the same
snapshot deduplicates.

Write discipline: records land via temp-file + ``os.replace`` (readers
never see partial JSON) and the existence-check → record write → index
append sequence runs under an ``fcntl`` advisory lock, so pooled
workers (``--jobs 4``) can append to one ledger concurrently without
torn index lines or duplicate entries.  A :class:`RunLedger` instance
is stateless (root path + flags, no open handles), so it pickles into
pool tasks unchanged.

The null path costs nothing: when ``RunConfig.ledger`` is ``None`` the
driver never imports this module.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:  # advisory locking is POSIX-only; elsewhere writes are best-effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from .provenance import _jsonable, fingerprint, run_provenance

__all__ = [
    "LEDGER_DIR",
    "RunLedger",
    "as_ledger",
    "ledger_key",
    "loop_fingerprint",
    "loop_fingerprint_doc",
    "span_rollup",
    "bench_bare_series",
    "median_bench_baseline",
]

#: default archive location (relative to the working directory);
#: overridable everywhere a ledger path is accepted
LEDGER_DIR = ".repro-ledger"


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def loop_fingerprint_doc(loop) -> Dict[str, Any]:
    """Canonical rendering of a workload loop for hashing.

    ``Loop`` is a plain class (not a dataclass), so ``_jsonable`` would
    drop it; render its data fields explicitly.  The op objects inside
    ``iterations`` are frozen dataclasses and hash via ``_jsonable``.
    """
    return {
        "name": loop.name,
        "arrays": [_jsonable(spec) for spec in loop.arrays],
        "iterations": [
            [_jsonable(op) for op in ops] for ops in loop.iterations
        ],
        "weights": _jsonable(getattr(loop, "iteration_weights", None)),
    }


def loop_fingerprint(loop) -> str:
    """Digest of :func:`loop_fingerprint_doc`, memoized on the loop
    instance.

    Rendering every op of a workload is the expensive part of keying a
    run (O(ops)); workload loops are immutable once generated, so the
    digest is computed once per loop object and cached — this is what
    keeps steady-state ledger-enabled runs inside the <3% overhead
    gate."""
    fp = getattr(loop, "_ledger_fp", None)
    if fp is None:
        fp = fingerprint(loop_fingerprint_doc(loop))
        try:
            loop._ledger_fp = fp
        except (AttributeError, TypeError):  # pragma: no cover - slots
            pass
    return fp


def ledger_key(scenario, loop, params, config=None, provenance=None) -> str:
    """Content address of one run: same key iff the simulation would be
    identical (machine params, data config knobs, package version,
    scenario and the full workload loop).

    ``provenance`` short-circuits the :func:`run_provenance` call when
    the caller already holds the stamped manifest for exactly this
    ``(params, config, scenario)`` — the commit path reuses the one on
    the finished result."""
    scenario_value = getattr(scenario, "value", scenario)
    prov = provenance
    if prov is None:
        prov = run_provenance(params, config, scenario=scenario_value,
                              loop_name=loop.name)
    return fingerprint(
        {
            "config_hash": prov.config_hash,
            "scenario": scenario_value,
            "package_version": prov.package_version,
            "loop_fp": loop_fingerprint(loop),
        }
    )


# ----------------------------------------------------------------------
# span rollup (recorded alongside each run)
# ----------------------------------------------------------------------
def span_rollup(spans: List[Dict[str, Any]], run_sid: int) -> Dict[str, Any]:
    """p50/p95 phase stats + per-tier phase breakdown for one run's span
    subtree (``spans`` as recorded by a ``SpanProfiler``, ``run_sid``
    the run-root span id)."""
    from .spans import percentile

    parents = {s["sid"]: s.get("parent") for s in spans}

    def _in_run(sid: Optional[int]) -> bool:
        while sid is not None:
            if sid == run_sid:
                return True
            sid = parents.get(sid)
        return False

    breakdown: Dict[str, Dict[str, float]] = {}
    durations: List[float] = []
    run_wall = None
    for s in spans:
        if s.get("t1") is None:
            continue
        if s["sid"] == run_sid:
            run_wall = s["t1"] - s["t0"]
            continue
        if not _in_run(s["sid"]):
            continue
        if s.get("cat") == "phase":
            dur = s["t1"] - s["t0"]
            durations.append(dur)
            tier = str(s.get("args", {}).get("engine", "?"))
            per_tier = breakdown.setdefault(tier, {})
            per_tier[s["name"]] = round(per_tier.get(s["name"], 0.0) + dur, 9)
    return {
        "run_wall_s": round(run_wall, 9) if run_wall is not None else None,
        "phase_s": {
            "p50": percentile(durations, 50),
            "p95": percentile(durations, 95),
            "count": len(durations),
        },
        "phase_breakdown_s": breakdown,
    }


# ----------------------------------------------------------------------
# the archive
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class RunLedger:
    """Handle on one on-disk ledger directory.

    Stateless by design — the instance is just the root path plus
    flags, so it can ride inside a frozen ``RunConfig`` through pickled
    pool tasks.  All I/O happens per call.
    """

    root: str = LEDGER_DIR
    #: serve identical re-runs from the archive (the cache-read path);
    #: turn off to keep recording while always re-simulating (how the
    #: write-path overhead gate measures the genuine cost)
    serve_hits: bool = True

    # -- paths ----------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    def record_path(self, key: str) -> str:
        return os.path.join(self.root, "records", key[:2], f"{key}.json")

    @contextmanager
    def _locked(self):
        os.makedirs(self.root, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(os.path.join(self.root, ".lock"), "a") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    # -- generic write ---------------------------------------------------
    def _write(self, key: str, kind: str, doc: Dict[str, Any],
               summary: Dict[str, Any]) -> bool:
        """Archive one record atomically; returns whether it was a
        dedupe (the content-addressed record already existed)."""
        path = self.record_path(key)
        with self._locked():
            if os.path.exists(path):
                return True
            os.makedirs(os.path.dirname(path), exist_ok=True)
            record = {"key": key, "kind": kind, "schema": 1, **doc}
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record, fh, indent=2)
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):  # pragma: no cover - error path
                    os.unlink(tmp)
                raise
            line = {"key": key, "kind": kind,
                    "written_at": round(time.time(), 3), **summary}
            with open(self.index_path, "a") as fh:
                fh.write(json.dumps(line, sort_keys=True) + "\n")
        return False

    # -- record kinds ----------------------------------------------------
    def record_result(
        self,
        result,
        key: Optional[str] = None,
        host_wall_s: Optional[float] = None,
        rollup: Optional[Dict[str, Any]] = None,
        params=None,
        config=None,
        loop=None,
    ) -> Tuple[str, bool]:
        """Archive one ``RunResult``; returns ``(key, deduped)``.

        The key is computed from ``(params, config, loop)`` when not
        given — the same content address the cache-read path looks up.
        """
        from ..experiments.serialize import run_result_to_dict

        if key is None:
            key = ledger_key(result.scenario, loop, params, config,
                             provenance=getattr(result, "provenance", None))
        doc = {
            "result": run_result_to_dict(result),
            "host_wall_s": (
                round(host_wall_s, 6) if host_wall_s is not None else None
            ),
            "span_rollup": rollup,
        }
        summary = {
            "scenario": result.scenario.value,
            "loop": result.loop_name,
            "engine": (config.engine if config is not None else "scalar"),
            "passed": result.passed,
            "wall_cycles": result.wall,
            "host_wall_s": doc["host_wall_s"],
        }
        deduped = self._write(key, "run", doc, summary)
        return key, deduped

    def record_bench(self, doc: Dict[str, Any], label: str = "") -> Tuple[str, bool]:
        """Archive one throughput-bench document (a new history point
        per fresh measurement; identical snapshots deduplicate)."""
        key = fingerprint({"kind": "bench", "doc": doc})
        bare = {}
        engines = doc.get("engines")
        if isinstance(engines, dict):
            for engine, levels in engines.items():
                cell = levels.get("bare") or {}
                if "iters_per_s" in cell:
                    bare[engine] = round(float(cell["iters_per_s"]), 1)
        elif "bare" in doc and "iters_per_s" in doc["bare"]:
            bare["scalar"] = round(float(doc["bare"]["iters_per_s"]), 1)
        summary = {"label": label, "bare_iters_per_s": bare}
        deduped = self._write(key, "bench", {"label": label, "bench": doc},
                              summary)
        return key, deduped

    def record_diffsweep(self, doc: Dict[str, Any], label: str = "") -> Tuple[str, bool]:
        """Archive one differential-conformance sweep summary."""
        key = fingerprint({"kind": "diffsweep", "doc": doc})
        summary = {
            "label": label,
            "seeds": doc.get("seeds"),
            "conforming": doc.get("conforming"),
        }
        deduped = self._write(key, "diffsweep", {"label": label, **doc},
                              summary)
        return key, deduped

    def record_sweep(self, doc: Dict[str, Any], label: str = "") -> Tuple[str, bool]:
        """Archive one parameter-sweep summary (the per-point runs are
        recorded individually when the sweep config carries the ledger)."""
        key = fingerprint({"kind": "sweep", "doc": doc})
        summary = {"label": label, "points": doc.get("points")}
        deduped = self._write(key, "sweep", {"label": label, **doc}, summary)
        return key, deduped

    # -- read paths ------------------------------------------------------
    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Full record dict for ``key``, or None."""
        path = self.record_path(key)
        try:
            with open(path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def serve(self, key: str):
        """Reconstruct the archived ``RunResult`` for ``key`` (None on
        miss or when the record isn't a servable run record)."""
        record = self.lookup(key)
        if record is None or record.get("kind") != "run":
            return None
        from ..experiments.serialize import run_result_from_dict

        return run_result_from_dict(record["result"])

    def records(self, kind: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Index lines in write order (the timeline), oldest first."""
        try:
            fh = open(self.index_path)
        except FileNotFoundError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                if kind is None or entry.get("kind") == kind:
                    yield entry

    def resolve(self, prefix: str) -> str:
        """Resolve a (possibly abbreviated) key to the full key."""
        matches = sorted(
            {e["key"] for e in self.records() if e["key"].startswith(prefix)}
        )
        if not matches:
            raise KeyError(f"no ledger record matches {prefix!r}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous key prefix {prefix!r}: "
                + ", ".join(k[:12] for k in matches)
            )
        return matches[0]

    def bench_history(self) -> List[Dict[str, Any]]:
        """Archived bench documents in write order, each as
        ``{"key", "label", "bench"}``."""
        out = []
        for entry in self.records(kind="bench"):
            record = self.lookup(entry["key"])
            if record is not None:
                out.append(
                    {
                        "key": entry["key"],
                        "label": record.get("label", ""),
                        "bench": record.get("bench", {}),
                    }
                )
        return out


def as_ledger(value) -> RunLedger:
    """Coerce a ``RunConfig.ledger`` value: a :class:`RunLedger` passes
    through, a path (str / PathLike) opens a ledger rooted there."""
    if isinstance(value, RunLedger):
        return value
    return RunLedger(root=os.fspath(value))


# ----------------------------------------------------------------------
# bench-history analysis (trend / regressions / --from-ledger)
# ----------------------------------------------------------------------
def bench_bare_series(
    history: List[Dict[str, Any]],
) -> List[Tuple[str, Dict[str, float]]]:
    """``(label, {engine: bare iters/s})`` per archived bench document,
    oldest first — the throughput trajectory across PRs."""
    series: List[Tuple[str, Dict[str, float]]] = []
    for item in history:
        doc = item["bench"]
        bare: Dict[str, float] = {}
        engines = doc.get("engines")
        if isinstance(engines, dict):
            for engine, levels in engines.items():
                cell = levels.get("bare") or {}
                if "iters_per_s" in cell:
                    bare[engine] = float(cell["iters_per_s"])
        elif "bare" in doc and "iters_per_s" in doc.get("bare", {}):
            bare["scalar"] = float(doc["bare"]["iters_per_s"])
        series.append((item.get("label") or item["key"][:12], bare))
    return series


def median_bench_baseline(history: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Synthesize a matrix-shape bench baseline whose per-cell ``best_s``
    is the median over ``history`` — the ``--from-ledger N`` baseline
    for :mod:`repro.experiments.benchdiff`."""
    from statistics import median

    from ..experiments.benchdiff import _cells

    samples: Dict[Tuple[str, str], List[float]] = {}
    for item in history:
        for cell, best_s in _cells(item["bench"]).items():
            samples.setdefault(cell, []).append(best_s)
    engines: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (engine, level), values in samples.items():
        engines.setdefault(engine, {})[level] = {
            "best_s": float(median(values))
        }
    return {
        "benchmark": "simulator-throughput",
        "source": f"ledger median over {len(history)} records",
        "engines": engines,
    }
