"""Hierarchical wall-clock span profiler with cross-process capture.

This module is the host-side (wall clock) companion to the simulated-time
event bus: a :class:`SpanProfiler` records a tree of spans
(run -> engine tier -> phase -> epoch, plus vector kernel/delegation spans
and per-task pool spans) with attached counters and optional per-span
resource samples (RSS, CPU time, GC collections).

Null-path discipline mirrors the EventBus contract: instrumented call
sites do ``prof = spans.current()`` and skip everything when it returns
``None`` — no span dict is ever allocated, no profiler method is ever
called.  The guarantee is pinned the same way as
``TestGuardedEmissionSites``: tests booby-trap ``SpanProfiler.begin`` and
run the full simulator with no profiler installed.

Cross-process capture: :class:`WorkerCapture` bundles a profiler, an
event bus with a bounded recorder, and a ``MetricsCollector``; a pool
worker installs one around its task, then ships ``capture.snapshot()``
(plain picklable dicts) back on the existing result-pickling path.  The
parent-side :class:`ProfileSession` collects those snapshots and merges
them into one multi-track Chrome trace (``pid`` = worker process,
``tid`` = simulated processor) plus a p50/p95 rollup.
"""

from __future__ import annotations

import gc
import os
import resource
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from .bus import EventBus, EventRecorder
from .export import chrome_trace
from .metrics import MetricsCollector, MetricsRegistry

__all__ = [
    "SpanProfiler",
    "WorkerCapture",
    "ProfileSession",
    "current",
    "install",
    "uninstall",
    "capture_current",
    "percentile",
]


# ---------------------------------------------------------------------------
# resource sampling


def _resource_sample() -> Dict[str, float]:
    """One coarse process resource sample (cheap; coarse spans only)."""
    ru = resource.getrusage(resource.RUSAGE_SELF)
    collections = 0
    for s in gc.get_stats():
        collections += s.get("collections", 0)
    return {
        "rss_kb": float(ru.ru_maxrss),
        "cpu_s": ru.ru_utime + ru.ru_stime,
        "gc_collections": float(collections),
    }


class SpanProfiler:
    """Stack-based hierarchical span recorder on the host wall clock.

    Span handles are plain dicts (picklable through :meth:`snapshot`);
    timestamps are seconds relative to ``t0_perf`` (``time.perf_counter``
    at construction).  ``t0_wall`` (``time.time``) anchors the profiler
    on the shared wall clock so snapshots from different processes merge
    onto one timeline with no inversions.

    ``fine`` opts into high-volume spans (per-burst fast-loop spans in
    the batch engine); the default records coarse spans only so an
    installed profiler stays within the bench overhead gate.
    """

    def __init__(self, track: str = "main", fine: bool = False) -> None:
        self.track = track
        self.fine = fine
        self.pid = os.getpid()
        self.t0_perf = time.perf_counter()
        self.t0_wall = time.time()
        self.spans: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[Dict[str, Any]] = []
        self._next_sid = 0

    # -- core ----------------------------------------------------------
    def now(self) -> float:
        return time.perf_counter() - self.t0_perf

    def begin(
        self,
        name: str,
        cat: str = "span",
        tid: int = 0,
        sample: bool = False,
        **args: Any,
    ) -> Dict[str, Any]:
        """Open a span nested under the innermost open span."""
        parent = self._stack[-1]["sid"] if self._stack else None
        span: Dict[str, Any] = {
            "sid": self._next_sid,
            "parent": parent,
            "name": name,
            "cat": cat,
            "tid": tid,
            "t0": self.now(),
            "t1": None,
            "args": dict(args) if args else {},
            "counters": {},
        }
        self._next_sid += 1
        if sample:
            span["res0"] = _resource_sample()
        self._stack.append(span)
        return span

    def end(self, span: Dict[str, Any], **counters: float) -> None:
        """Close ``span`` (and, defensively, anything opened inside it)."""
        t = self.now()
        while self._stack:
            top = self._stack.pop()
            top["t1"] = t
            self._finish(top)
            if top is span:
                break
        for k, v in counters.items():
            span["counters"][k] = span["counters"].get(k, 0) + v

    def _finish(self, span: Dict[str, Any]) -> None:
        res0 = span.pop("res0", None)
        if res0 is not None:
            res1 = _resource_sample()
            span["resources"] = {
                "rss_kb": res1["rss_kb"],
                "cpu_s": round(res1["cpu_s"] - res0["cpu_s"], 6),
                "gc_collections": res1["gc_collections"] - res0["gc_collections"],
            }
        self.spans.append(span)

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "span",
        tid: int = 0,
        sample: bool = False,
        **args: Any,
    ):
        handle = self.begin(name, cat=cat, tid=tid, sample=sample, **args)
        try:
            yield handle
        finally:
            self.end(handle)

    def count(self, name: str, amount: float = 1) -> None:
        """Bump a counter on the innermost open span (or the profiler)."""
        target = self._stack[-1]["counters"] if self._stack else self.counters
        target[name] = target.get(name, 0) + amount

    # -- snapshot ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain picklable state; closes any still-open spans first."""
        while self._stack:
            top = self._stack.pop()
            top["t1"] = self.now()
            self._finish(top)
        return {
            "track": self.track,
            "pid": self.pid,
            "t0_wall": self.t0_wall,
            "counters": dict(self.counters),
            "spans": [dict(s) for s in self.spans],
        }


# ---------------------------------------------------------------------------
# ambient profiler / capture (the null path reads one module global)

_PROFILER: Optional[SpanProfiler] = None
_CAPTURE: Optional["WorkerCapture"] = None


def current() -> Optional[SpanProfiler]:
    """The ambient profiler, or None (the zero-allocation null path)."""
    return _PROFILER


def install(profiler: SpanProfiler) -> SpanProfiler:
    global _PROFILER
    _PROFILER = profiler
    return profiler


def uninstall() -> None:
    global _PROFILER
    _PROFILER = None


def capture_current() -> Optional["WorkerCapture"]:
    """The ambient worker capture consulted by the run driver."""
    return _CAPTURE


class WorkerCapture:
    """Everything one pool worker records around one task.

    Bundles a :class:`SpanProfiler`, an :class:`EventBus` with a bounded
    :class:`EventRecorder`, and a :class:`MetricsCollector`.  The run
    driver attaches the capture bus to machines built while the capture
    is installed — but only when the run's own ``config.telemetry`` is
    unset, so explicit telemetry always wins.  ``snapshot()`` is plain
    picklable data and rides back to the parent with the task result.
    """

    #: bounded obs-event sample per task (BoundedLog drops oldest half)
    EVENT_CAPACITY = 2048

    def __init__(self, label: str = "", fine: bool = False) -> None:
        self.label = label
        self.profiler = SpanProfiler(track=f"task:{label}" if label else "task", fine=fine)
        self.bus = EventBus()
        self.recorder = EventRecorder(capacity=self.EVENT_CAPACITY)
        self.recorder.subscribe(self.bus)
        self.collector = MetricsCollector()
        self.collector.subscribe(self.bus)
        self._root: Optional[Dict[str, Any]] = None

    def install(self) -> "WorkerCapture":
        global _CAPTURE
        install(self.profiler)
        _CAPTURE = self
        self._root = self.profiler.begin(
            "task", cat="task", sample=True, label=self.label
        )
        return self

    def uninstall(self) -> None:
        global _CAPTURE
        if self._root is not None:
            self.profiler.end(self._root)
            self._root = None
        if _CAPTURE is self:
            _CAPTURE = None
        if current() is self.profiler:
            uninstall()

    def attach(self, machine) -> None:
        """Duck-typed like Telemetry.attach; called by the run driver."""
        machine.attach_bus(self.bus)
        self.collector.space = machine.space

    def snapshot(self) -> Dict[str, Any]:
        trace_events = [
            ev
            for ev in chrome_trace(self.recorder)["traceEvents"]
            # B/E pairs from separate runs would interleave after the
            # wall-clock rescale; keep complete slices and instants only.
            if ev.get("ph") in ("X", "i")
        ]
        return {
            "label": self.label,
            "pid": os.getpid(),
            "profile": self.profiler.snapshot(),
            "metrics": self.collector.registry.snapshot(),
            "trace_events": trace_events,
            "events_recorded": len(self.recorder),
            "events_dropped": self.recorder.dropped,
        }


# ---------------------------------------------------------------------------
# parent-side session


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile (q in [0, 100]); None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class ProfileSession:
    """Parent-side aggregation of one profiled pooled (or inline) run.

    ``run_tasks(..., profile=session)`` fills in one record per task
    (worker capture snapshot + queue timing); the session then renders
    one merged multi-process Chrome trace and a p50/p95 rollup.
    """

    def __init__(self, label: str = "profile", fine: bool = False) -> None:
        self.label = label
        self.fine = fine
        self.profiler = SpanProfiler(track="parent")
        self.tasks: List[Dict[str, Any]] = []
        self.pool: Dict[str, Any] = {}
        self.counters: Dict[str, float] = {}

    def count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_task(
        self,
        index: int,
        label: str,
        attempts: int,
        inline: bool,
        submit_wall: Optional[float],
        done_wall: float,
        capture: Dict[str, Any],
    ) -> None:
        self.tasks.append(
            {
                "index": index,
                "label": label,
                "attempts": attempts,
                "inline": inline,
                "submit_wall": submit_wall,
                "done_wall": done_wall,
                "capture": capture,
            }
        )

    def note_pool(self, jobs: int, tasks: int, wall_s: float, failures: int, inline_tasks: int) -> None:
        self.pool = {
            "jobs": jobs,
            "tasks": tasks,
            "wall_s": round(wall_s, 6),
            "failures": failures,
            "inline_tasks": inline_tasks,
        }

    # -- outputs -------------------------------------------------------
    def merged_trace(self, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        from .export import merged_chrome_trace

        meta = {"label": self.label, "pool": self.pool, "counters": self.counters}
        if metadata:
            meta.update(metadata)
        return merged_chrome_trace(
            self.profiler.snapshot(),
            [t["capture"] for t in self.tasks],
            metadata=meta,
        )

    def merged_metrics(self) -> MetricsRegistry:
        merged = MetricsRegistry()
        for t in self.tasks:
            snap = t["capture"].get("metrics")
            if snap:
                merged.merge(snap)
        return merged

    def rollup(self) -> Dict[str, Any]:
        """p50/p95 per-task wall, queue wait, utilization, tier breakdown."""
        walls: List[float] = []
        waits: List[float] = []
        retries = 0
        inline_tasks = 0
        phase_breakdown: Dict[str, Dict[str, float]] = {}
        counters: Dict[str, float] = dict(self.counters)
        for t in self.tasks:
            prof = t["capture"].get("profile", {})
            spans = prof.get("spans", [])
            root = next((s for s in spans if s.get("cat") == "task"), None)
            if root is not None and root["t1"] is not None:
                wall = root["t1"] - root["t0"]
            else:
                wall = 0.0
            walls.append(wall)
            if t["submit_wall"] is not None:
                waits.append(max(0.0, prof.get("t0_wall", t["done_wall"]) - t["submit_wall"]))
            retries += max(0, t["attempts"])
            inline_tasks += 1 if t["inline"] else 0
            for s in spans:
                for k, v in s.get("counters", {}).items():
                    counters[k] = counters.get(k, 0) + v
                if s.get("cat") == "phase":
                    tier = str(s.get("args", {}).get("engine", "?"))
                    per_tier = phase_breakdown.setdefault(tier, {})
                    per_tier[s["name"]] = round(
                        per_tier.get(s["name"], 0.0) + (s["t1"] - s["t0"]), 6
                    )
            for k, v in prof.get("counters", {}).items():
                counters[k] = counters.get(k, 0) + v
        jobs = max(1, int(self.pool.get("jobs") or 1))
        wall_s = self.pool.get("wall_s") or 0.0
        busy = sum(walls)
        utilization = (busy / (jobs * wall_s)) if wall_s > 0 else None
        workers = sorted({t["capture"].get("pid") for t in self.tasks if t["capture"]})
        stat = lambda xs: {
            "p50": percentile(xs, 50),
            "p95": percentile(xs, 95),
            "mean": (sum(xs) / len(xs)) if xs else None,
            "max": (max(xs) if xs else None),
        }
        return {
            "label": self.label,
            "tasks": len(self.tasks),
            "pool": dict(self.pool),
            "worker_pids": workers,
            "task_wall_s": stat(walls),
            "queue_wait_s": stat(waits),
            "worker_utilization": (round(utilization, 4) if utilization is not None else None),
            "retries": retries,
            "inline_tasks": inline_tasks,
            "phase_breakdown_s": phase_breakdown,
            "counters": counters,
        }
