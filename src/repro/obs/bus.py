"""The event bus: typed publish/subscribe with a zero-overhead null path.

Design constraints (in priority order):

1. **Telemetry off must cost nothing.**  Components hold ``bus = None``
   by default and guard emission with ``if bus is not None`` — no event
   object is ever constructed.  For the per-access hot path the bus
   additionally exposes the precomputed flags :attr:`EventBus.wants_access`
   and :attr:`EventBus.wants_dir`, so a bus attached only for coarse
   events (phases, runs) does not pay event construction per access.
2. **Dispatch is exact-type.**  ``subscribe(AccessEvent, fn)`` receives
   :class:`~repro.obs.events.AccessEvent` instances only; ``subscribe(None,
   fn)`` receives every event.  No MRO walking on the hot path.
3. **Subscribers are plain callables** taking the event; exceptions
   propagate (a broken subscriber should fail the run loudly, not drop
   telemetry silently).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Type

from .events import (
    AccessEvent,
    DirTransitionEvent,
    Event,
    NonPrivDirUpdateEvent,
    PrivDirUpdateEvent,
    PrivSimpleDirUpdateEvent,
)

__all__ = ["EventBus", "BoundedLog", "EventRecorder"]


class EventBus:
    """Typed pub/sub hub for :class:`~repro.obs.events.Event` streams."""

    def __init__(self) -> None:
        self._subs: Dict[type, List[Callable[[Event], None]]] = {}
        self._all: List[Callable[[Event], None]] = []
        #: any subscriber at all?  Emission sites guard event
        #: *construction* with this, so an attached-but-unsubscribed bus
        #: (e.g. telemetry wired up before recorders register) costs no
        #: allocations.
        self.active = False
        #: hot-path flags: any subscriber interested in per-access events?
        self.wants_access = False
        self.wants_dir = False
        #: any subscriber interested in per-update speculation-directory
        #: events (the invariant monitors)?  Off by default so protocol
        #: hot paths never snapshot table state for nobody.
        self.wants_spec = False

    # ------------------------------------------------------------------
    def subscribe(
        self,
        event_type: "Optional[Type[Event]]",
        fn: Callable[[Event], None],
    ) -> Callable[[Event], None]:
        """Register ``fn`` for events of exactly ``event_type`` (or all
        events when ``event_type`` is None).  Returns ``fn`` so the call
        can be chained/stored for later :meth:`unsubscribe`."""
        if event_type is None:
            self._all.append(fn)
        else:
            self._subs.setdefault(event_type, []).append(fn)
        self._recompute()
        return fn

    def unsubscribe(
        self,
        event_type: "Optional[Type[Event]]",
        fn: Callable[[Event], None],
    ) -> None:
        """Remove a subscription; missing subscriptions are ignored."""
        try:
            if event_type is None:
                self._all.remove(fn)
            else:
                self._subs.get(event_type, []).remove(fn)
        except ValueError:
            pass
        self._recompute()

    def _recompute(self) -> None:
        self.active = bool(self._all) or any(
            bool(subs) for subs in self._subs.values()
        )
        any_sub = bool(self._all)
        self.wants_access = any_sub or bool(self._subs.get(AccessEvent))
        self.wants_dir = any_sub or bool(self._subs.get(DirTransitionEvent))
        self.wants_spec = any_sub or any(
            bool(self._subs.get(t))
            for t in (
                NonPrivDirUpdateEvent,
                PrivDirUpdateEvent,
                PrivSimpleDirUpdateEvent,
            )
        )

    @property
    def subscriber_count(self) -> int:
        return len(self._all) + sum(len(v) for v in self._subs.values())

    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Deliver ``event`` to its exact-type subscribers, then to the
        catch-all subscribers."""
        subs = self._subs.get(type(event))
        if subs:
            for fn in subs:
                fn(event)
        for fn in self._all:
            fn(event)

    # ------------------------------------------------------------------
    def attach(self, machine) -> "EventBus":
        """Wire this bus into a :class:`~repro.sim.machine.Machine`
        (memory system, protocols, engine).  Also the duck-typed
        interface ``RunConfig.telemetry`` expects."""
        machine.attach_bus(self)
        return self


class BoundedLog:
    """Append-only in-memory log with a capacity bound.

    Once ``capacity`` is exceeded the *oldest half* is dropped in one go
    (amortized O(1) per append); ``dropped`` counts evicted records.
    Base of :class:`EventRecorder` and of the legacy
    ``repro.analysis.tracing`` trace/log classes.
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self.records: List = []
        self.dropped = 0

    def append(self, record) -> None:
        if len(self.records) >= self.capacity:
            drop = self.capacity // 2
            del self.records[:drop]
            self.dropped += drop
        self.records.append(record)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator:
        return iter(self.records)


class EventRecorder(BoundedLog):
    """Bounded recorder of every event on a bus (or a typed subset)."""

    def subscribe(self, bus: EventBus, *event_types: Type[Event]) -> "EventRecorder":
        """Start recording from ``bus``.  With no ``event_types``, every
        event is recorded; otherwise only the listed types."""
        if event_types:
            for event_type in event_types:
                bus.subscribe(event_type, self.append)
        else:
            bus.subscribe(None, self.append)
        return self

    def of_type(self, event_type: Type[Event]) -> List[Event]:
        return [e for e in self.records if type(e) is event_type]

    def subsystems(self) -> Dict[str, int]:
        """Event counts per emitting subsystem."""
        counts: Dict[str, int] = {}
        for event in self.records:
            counts[event.subsystem] = counts.get(event.subsystem, 0) + 1
        return counts
