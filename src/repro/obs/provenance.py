"""Run provenance: a stable fingerprint of *what exactly* was simulated.

Every :class:`~repro.runtime.driver.RunResult` is stamped with a
:class:`RunProvenance` so serialized results can always be traced back
to the machine description, run configuration, schedule and package
version that produced them.  Hashes are SHA-256 over a canonical JSON
rendering (sorted keys, enums by value, callables excluded), so two
identical configurations hash identically across processes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict, Optional

__all__ = ["RunProvenance", "canonical_json", "fingerprint", "run_provenance"]


def _jsonable(obj: Any) -> Any:
    """Render dataclasses/enums/collections as canonical JSON types.
    Non-data values (callables, machine objects) are dropped."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not callable(getattr(obj, f.name))
        }
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        # Iteration order of sets is hash-seed dependent, so falling
        # through to repr() would fingerprint the same value differently
        # across processes; canonicalize as a sorted list instead.
        return sorted(
            (_jsonable(v) for v in obj),
            key=lambda r: json.dumps(r, sort_keys=True, separators=(",", ":")),
        )
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def canonical_json(obj: Any) -> str:
    return json.dumps(_jsonable(obj), sort_keys=True, separators=(",", ":"))


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class RunProvenance:
    """Manifest identifying one simulated run."""

    #: hash over machine params + run config together (the identity of
    #: the simulated experiment, minus the workload)
    config_hash: str
    #: hash over the machine params alone
    params_hash: str
    #: human-readable schedule description
    schedule: str
    package_version: str
    scenario: Optional[str] = None
    loop_name: Optional[str] = None
    seed: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def run_provenance(
    params,
    config=None,
    scenario: Optional[str] = None,
    loop_name: Optional[str] = None,
    seed: Optional[int] = None,
) -> RunProvenance:
    """Build the provenance manifest for one run.

    ``params`` is a :class:`~repro.params.MachineParams`; ``config`` an
    optional :class:`~repro.runtime.driver.RunConfig`.  Non-data config
    fields (``machine_hook``, ``telemetry``, ``monitors``) never enter
    the hash.
    """
    from .. import __version__

    params_doc = _jsonable(params)
    config_doc: Dict[str, Any] = {}
    schedule_text = "default"
    if config is not None:
        config_doc = {
            "schedule": _jsonable(config.schedule),
            "engine": config.engine,
            "sparse_backup": config.sparse_backup,
            "sw_read_in": config.sw_read_in,
            "timestamp_bits": config.timestamp_bits,
            "per_line_bits": config.per_line_bits,
        }
        spec = config.schedule
        schedule_text = (
            f"{spec.policy.value}/chunk={spec.chunk_iterations}"
            f"/{spec.virtual_mode.value}"
        )
    return RunProvenance(
        config_hash=fingerprint({"params": params_doc, "config": config_doc}),
        params_hash=fingerprint(params_doc),
        schedule=schedule_text,
        package_version=__version__,
        scenario=scenario,
        loop_name=loop_name,
        seed=seed,
    )
