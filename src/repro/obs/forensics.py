"""Abort root-cause forensics (speculation forensics, part 2).

When a speculative run FAILs, the protocols report *where* the
dependence was detected (element, processor, cycle) but not *why* the
loop carries that dependence.  This module reconstructs the why from
the ground truth — the loop's own access trace plus the run's realized
iteration-to-processor assignment and the recorded protocol messages —
and packages it as a :class:`ForensicReport`:

* the culprit element and its per-iteration access history (who read
  it first, who wrote it, in serial iteration order);
* the offending dependence pair (source iteration, destination
  iteration, flow/anti/output kind) that makes the loop ineligible
  under the protocol's criterion;
* the processors those iterations ran on and the protocol messages the
  element generated, ending in the FAIL;
* a **minimized reproducer**: the smallest subset of original
  iterations that still aborts, packaged as a standalone
  :class:`~repro.trace.loop.Loop` scheduled so the dependence spans
  processors — run it with :meth:`MinimizedReproducer.run` to watch
  the failure in isolation.

Reports are built by :meth:`repro.obs.monitor.MonitorSuite.finalize`
(armed via ``RunConfig(monitors=...)``) and land on
``RunResult.forensics``; the ``doctor`` CLI experiment prints them for
the fault-injection workloads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.loop import Loop
from ..trace.ops import AccessOp
from ..types import AccessKind, ProtocolKind
from .events import (
    Event,
    NonPrivDirUpdateEvent,
    PrivDirUpdateEvent,
    PrivSimpleDirUpdateEvent,
    ProtocolMessageEvent,
)

__all__ = [
    "ElementAccess",
    "ForensicReport",
    "MinimizedReproducer",
    "build_report",
    "element_trace",
]


# ----------------------------------------------------------------------
# Ground truth: what the loop actually does to one element
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ElementAccess:
    """How one (original, 1-based) iteration touches the element."""

    iteration: int
    read_first: bool  # the iteration's first access is a read
    read: bool
    wrote: bool

    @property
    def tag(self) -> str:
        if self.read_first:
            return "R1st+W" if self.wrote else "R1st"
        return "W+R" if self.read else "W"


def element_trace(loop: Loop, array: str, index: int) -> List[ElementAccess]:
    """Per-iteration access summary of ``array[index]``, serial order."""
    out: List[ElementAccess] = []
    for it, ops in enumerate(loop.iterations, start=1):
        first: Optional[AccessKind] = None
        read = wrote = False
        for op in ops:
            if isinstance(op, AccessOp) and op.array == array and op.index == index:
                if first is None:
                    first = op.kind
                if op.is_read:
                    read = True
                else:
                    wrote = True
        if first is not None:
            out.append(
                ElementAccess(it, first is AccessKind.READ, read, wrote)
            )
    return out


def _dependence_pair(
    trace: Sequence[ElementAccess], protocol: Optional[ProtocolKind]
) -> Optional[Tuple[Tuple[int, ...], str]]:
    """The smallest iteration subset that violates ``protocol``'s
    criterion, plus the dependence kind it carries.

    Returns ``(iterations, kind)`` with original 1-based iteration
    numbers in ascending order, or None when the trace alone cannot
    explain the failure (e.g. a false positive from per-line bits).
    """
    read_firsts = [a.iteration for a in trace if a.read_first]
    reads = [a.iteration for a in trace if a.read]
    writes = [a.iteration for a in trace if a.wrote]
    if protocol is ProtocolKind.PRIV:
        # Figs 8/9: FAIL iff some iteration reads-first data a *lower*
        # iteration wrote (MaxR1st > MinW).
        for w in writes:
            for r in read_firsts:
                if r > w:
                    return (w, r), "flow"
        return None
    if protocol is ProtocolKind.PRIV_SIMPLE:
        # §4.1: FAIL as soon as any element is both read-first and
        # written, anywhere in the loop (even within one iteration).
        for a in trace:
            if a.read_first and a.wrote:
                return (a.iteration,), "flow"
        for w in writes:
            for r in read_firsts:
                if r != w:
                    return tuple(sorted((w, r))), "flow" if r > w else "anti"
        return None
    # Non-privatization: the element must end read-only or
    # single-processor, so any two iterations with a write among them
    # form a culprit pair once they land on different processors.
    if writes:
        w = writes[0]
        later_reads = [r for r in reads if r > w]
        if later_reads:
            return (w, later_reads[0]), "flow"
        earlier_reads = [r for r in reads if r < w]
        if earlier_reads:
            return (earlier_reads[-1], w), "anti"
        if len(writes) >= 2:
            return (writes[0], writes[1]), "output"
    return None


# ----------------------------------------------------------------------
# Minimized reproducer
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MinimizedReproducer:
    """A standalone loop built from the smallest iteration subset that
    still carries the fatal dependence.

    The subset is scheduled one-iteration-per-processor (static chunks,
    iteration-wise numbering) so the dependence is guaranteed to span
    processors — the condition under which the protocols must FAIL.
    """

    loop: Loop
    array: str
    index: int
    #: original 1-based iteration numbers, ascending
    iterations: Tuple[int, ...]
    scenario: str  # "hw" or "sw"

    def run(self, params=None, config=None):
        """Execute the reproducer; returns the ``RunResult`` (whose
        ``passed`` should be False)."""
        from ..params import small_test_params
        from ..runtime.driver import RunConfig, run_hw, run_sw
        from ..runtime.schedule import (
            SchedulePolicy,
            ScheduleSpec,
            VirtualMode,
        )

        if params is None:
            params = small_test_params(2)
        if config is None:
            config = RunConfig(
                schedule=ScheduleSpec(
                    policy=SchedulePolicy.STATIC_CHUNK,
                    chunk_iterations=1,
                    virtual_mode=VirtualMode.ITERATION,
                )
            )
        runner = run_sw if self.scenario == "sw" else run_hw
        return runner(self.loop, params, config)

    def reproduces(self, params=None) -> bool:
        """Whether the minimized loop still aborts."""
        return not self.run(params).passed

    def to_dict(self) -> dict:
        return {
            "loop": self.loop.name,
            "array": self.array,
            "index": self.index,
            "iterations": list(self.iterations),
            "scenario": self.scenario,
        }


def minimize(
    loop: Loop, array: str, index: int, scenario: str = "hw"
) -> Optional[MinimizedReproducer]:
    """Build the minimized reproducer for a failure on ``array[index]``,
    or None when the serial trace carries no fatal dependence."""
    try:
        protocol = loop.array(array).protocol
    except KeyError:
        return None
    pair = _dependence_pair(element_trace(loop, array, index), protocol)
    if pair is None:
        return None
    iterations, _ = pair
    subset = [list(loop.iterations[i - 1]) for i in iterations]
    weights = (
        [loop.iteration_weights[i - 1] for i in iterations]
        if loop.iteration_weights is not None
        else None
    )
    mini = Loop(f"{loop.name}@min", loop.arrays, subset, weights)
    return MinimizedReproducer(mini, array, index, tuple(iterations), scenario)


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ForensicReport:
    """Root-cause reconstruction of one aborted speculative run."""

    loop_name: str
    scenario: str
    reason: str
    array: Optional[str]
    index: Optional[int]
    protocol: Optional[str]
    #: simulated cycle of detection (within the loop phase)
    detection_cycle: Optional[float]
    #: processor / virtual iteration whose access raised the FAIL
    failing_processor: Optional[int]
    failing_iteration: Optional[int]
    #: the element's serial access history
    accesses: List[ElementAccess] = dataclasses.field(default_factory=list)
    #: original iterations -> processor, from the realized assignment
    processors: Dict[int, int] = dataclasses.field(default_factory=dict)
    #: the fatal dependence: original iterations + flow/anti/output
    dependence_iterations: Optional[Tuple[int, ...]] = None
    dependence_kind: Optional[str] = None
    #: protocol messages the element generated (time order)
    messages: List[ProtocolMessageEvent] = dataclasses.field(default_factory=list)
    #: speculation-directory updates of the element (time order)
    dir_updates: List[Event] = dataclasses.field(default_factory=list)
    minimized: Optional[MinimizedReproducer] = None
    #: validation outcome: did the minimized loop re-abort?  (None when
    #: validation was skipped)
    minimized_reproduces: Optional[bool] = None

    # ------------------------------------------------------------------
    @property
    def element(self) -> Optional[Tuple[str, int]]:
        if self.array is None or self.index is None:
            return None
        return (self.array, self.index)

    def to_dict(self) -> dict:
        from .export import event_to_dict

        return {
            "loop": self.loop_name,
            "scenario": self.scenario,
            "reason": self.reason,
            "element": list(self.element) if self.element else None,
            "protocol": self.protocol,
            "detection_cycle": self.detection_cycle,
            "failing_processor": self.failing_processor,
            "failing_iteration": self.failing_iteration,
            "accesses": [dataclasses.asdict(a) for a in self.accesses],
            "processors": {str(k): v for k, v in self.processors.items()},
            "dependence": (
                {
                    "iterations": list(self.dependence_iterations),
                    "kind": self.dependence_kind,
                }
                if self.dependence_iterations is not None
                else None
            ),
            "messages": [event_to_dict(e) for e in self.messages],
            "dir_updates": [event_to_dict(e) for e in self.dir_updates],
            "minimized": (
                self.minimized.to_dict() if self.minimized is not None else None
            ),
            "minimized_reproduces": self.minimized_reproduces,
        }

    def to_text(self) -> str:
        lines = [
            f"== forensic report: loop {self.loop_name!r} ({self.scenario}) ==",
            f"reason: {self.reason}",
        ]
        if self.element is not None:
            elem = f"{self.array}[{self.index}]"
            lines.append(f"culprit element: {elem} (protocol {self.protocol})")
        where = []
        if self.failing_processor is not None:
            where.append(f"by P{self.failing_processor}")
        if self.failing_iteration is not None:
            where.append(f"in virtual iteration {self.failing_iteration}")
        if self.detection_cycle is not None:
            where.append(f"at cycle {self.detection_cycle:g}")
        if where:
            lines.append("detected " + " ".join(where))
        if self.accesses:
            lines.append("element access history (serial iteration order):")
            for a in self.accesses:
                proc = self.processors.get(a.iteration)
                ran = f"  ran on P{proc}" if proc is not None else ""
                lines.append(f"  iteration {a.iteration:>4}: {a.tag:<7}{ran}")
        if self.dependence_iterations is not None:
            its = self.dependence_iterations
            if len(its) == 1:
                lines.append(
                    f"dependence: {self.dependence_kind} within iteration "
                    f"{its[0]} (element read first, then written)"
                )
            else:
                lines.append(
                    f"dependence: {self.dependence_kind}, iteration {its[0]}"
                    f" -> iteration {its[1]}"
                )
        if self.messages:
            lines.append(f"protocol messages for the element ({len(self.messages)}):")
            for m in self.messages[-12:]:
                it = f" iter={m.iteration}" if m.iteration is not None else ""
                lines.append(f"  t={m.time:<10g} {m.label} P{m.proc}{it}")
        if self.minimized is not None:
            status = {True: "re-aborts", False: "does NOT re-abort", None: "unvalidated"}[
                self.minimized_reproduces
            ]
            lines.append(
                f"minimized reproducer: iterations {self.minimized.iterations}"
                f" of the original loop ({status})"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
def _sw_culprit(loop: Loop, array: str) -> Optional[int]:
    """Locate the element that fails the LRPD criterion for ``array``
    (software scheme: the test names the array but not the element)."""
    spec = loop.array(array)
    traces: Dict[int, List[ElementAccess]] = {}
    for it, ops in enumerate(loop.iterations, start=1):
        seen: Dict[int, ElementAccess] = {}
        for op in ops:
            if isinstance(op, AccessOp) and op.array == array:
                prev = seen.get(op.index)
                if prev is None:
                    seen[op.index] = ElementAccess(
                        it, op.is_read, op.is_read, op.is_write
                    )
                else:
                    seen[op.index] = dataclasses.replace(
                        prev,
                        read=prev.read or op.is_read,
                        wrote=prev.wrote or op.is_write,
                    )
        for index, acc in seen.items():
            traces.setdefault(index, []).append(acc)
    privatized = spec.privatized
    for index, trace in sorted(traces.items()):
        if privatized:
            if _dependence_pair(trace, ProtocolKind.PRIV_SIMPLE) is not None:
                return index
        else:
            reads = any(a.read for a in trace)
            writes = [a for a in trace if a.wrote]
            if writes and (reads or len(writes) >= 2):
                return index
    return None


def build_report(
    loop: Loop, result, events: Sequence[Event], reproduce: bool = True
) -> ForensicReport:
    """Reconstruct the root cause of a failed run.

    ``events`` is the run's recorded stream (protocol messages and
    directory updates); ``result`` the failed ``RunResult``.  With
    ``reproduce=True`` the minimized loop is executed once to validate
    that it still aborts.
    """
    scenario = getattr(result.scenario, "value", str(result.scenario))
    failure = result.failure
    if failure is not None and failure.element is not None:
        array, index = failure.element
        reason = failure.reason
        proc, iteration = failure.processor, failure.iteration
    else:
        reason = (
            failure.reason
            if failure is not None
            else "software LRPD test failed after the loop"
        )
        proc = iteration = None
        array = result.lrpd.failed_array if result.lrpd is not None else None
        index = _sw_culprit(loop, array) if array is not None else None

    report = ForensicReport(
        loop_name=loop.name,
        scenario=scenario,
        reason=reason,
        array=array,
        index=index,
        protocol=None,
        detection_cycle=(
            failure.detected_at if failure is not None else result.detection_cycle
        ),
        failing_processor=proc,
        failing_iteration=iteration,
    )
    if array is None or index is None:
        return report

    try:
        report.protocol = loop.array(array).protocol.value
    except KeyError:
        return report

    report.accesses = element_trace(loop, array, index)
    if result.assignment is not None:
        proc_of = {
            it: p
            for p, its in enumerate(result.assignment)
            for it in its
        }
        report.processors = {
            a.iteration: proc_of[a.iteration]
            for a in report.accesses
            if a.iteration in proc_of
        }
    report.messages = [
        e
        for e in events
        if type(e) is ProtocolMessageEvent and e.array == array and e.index == index
    ]
    report.dir_updates = [
        e
        for e in events
        if type(e)
        in (NonPrivDirUpdateEvent, PrivDirUpdateEvent, PrivSimpleDirUpdateEvent)
        and e.array == array
        and e.index == index
    ]

    sw = scenario == "sw"
    report.minimized = minimize(loop, array, index, scenario="sw" if sw else "hw")
    if report.minimized is not None:
        report.dependence_iterations = report.minimized.iterations
        trace = report.accesses
        pair = _dependence_pair(trace, loop.array(array).protocol)
        report.dependence_kind = pair[1] if pair is not None else None
        if reproduce:
            report.minimized_reproduces = report.minimized.reproduces()
    return report
