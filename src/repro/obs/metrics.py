"""Metrics registry: labeled counters and histograms over the event bus.

The registry is the aggregation layer of the telemetry stack: raw
events flow on the bus, the :class:`MetricsCollector` folds them into
counters/histograms keyed by labels (phase × array × processor for
accesses, label × array for protocol messages, ...), and reports read
the registry instead of re-scanning event logs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..types import AccessKind
from .bus import EventBus
from .events import (
    AccessEvent,
    BarrierWaitEvent,
    DirTransitionEvent,
    FailureEvent,
    PhaseBeginEvent,
    PhaseEndEvent,
    ProtocolMessageEvent,
)

__all__ = ["Counter", "Histogram", "MetricsRegistry", "MetricsCollector"]

LabelKey = Tuple[Tuple[str, Any], ...]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        """Plain picklable state (round-trips through :meth:`merge`)."""
        return self.value

    def merge(self, snap: int) -> None:
        """Fold a :meth:`snapshot` from another process into this one."""
        self.value += snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Histogram:
    """A streaming histogram with power-of-two buckets.

    Tracks count / total / min / max exactly; the distribution is kept
    as counts per ``2^k`` bucket (bucket k holds values in
    ``[2^k, 2^(k+1))``; values < 1 land in bucket 0).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = max(0, int(value).bit_length() - 1) if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(sorted(self.buckets.items())),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Plain picklable state (round-trips through :meth:`merge`)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(self.buckets),
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another process into this one."""
        self.count += snap["count"]
        self.total += snap["total"]
        if snap["min"] is not None and snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] is not None and snap["max"] > self.max:
            self.max = snap["max"]
        for bucket, n in snap["buckets"].items():
            bucket = int(bucket)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n


def _key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create store of labeled counters and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        series = self._counters.setdefault(name, {})
        key = _key(labels)
        metric = series.get(key)
        if metric is None:
            metric = series[key] = Counter()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        series = self._histograms.setdefault(name, {})
        key = _key(labels)
        metric = series.get(key)
        if metric is None:
            metric = series[key] = Histogram()
        return metric

    # ------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> int:
        """Current value of a counter (0 when it never incremented)."""
        series = self._counters.get(name, {})
        metric = series.get(_key(labels))
        return metric.value if metric is not None else 0

    def total(self, name: str, **labels: Any) -> int:
        """Sum of every counter series of ``name`` whose labels contain
        the given ones (e.g. ``total("mem.accesses", proc=0)``)."""
        want = set(labels.items())
        out = 0
        for key, metric in self._counters.get(name, {}).items():
            if want <= set(key):
                out += metric.value
        return out

    def series(self, name: str) -> Iterator[Tuple[Dict[str, Any], Any]]:
        """Iterate ``(labels, metric)`` for one metric name."""
        for key, metric in self._counters.get(name, {}).items():
            yield dict(key), metric
        for key, metric in self._histograms.get(name, {}).items():
            yield dict(key), metric

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._histograms))

    def clear(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Full registry state as plain picklable data.

        Unlike :meth:`as_dict` (which flattens labels to display
        strings), the snapshot preserves label structure so it can be
        merged back into a live registry in another process:
        ``{"counters": {name: [[[k, v], ...], value], ...}, ...}``.
        """
        return {
            "counters": {
                name: [
                    [[list(pair) for pair in key], c.snapshot()]
                    for key, c in series.items()
                ]
                for name, series in self._counters.items()
            },
            "histograms": {
                name: [
                    [[list(pair) for pair in key], h.snapshot()]
                    for key, h in series.items()
                ]
                for name, series in self._histograms.items()
            },
        }

    def merge(self, snap: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this
        registry, get-or-creating each labeled series."""
        for name, entries in snap.get("counters", {}).items():
            for key, value in entries:
                self.counter(name, **{k: v for k, v in key}).merge(value)
        for name, entries in snap.get("histograms", {}).items():
            for key, state in entries:
                self.histogram(name, **{k: v for k, v in key}).merge(state)
        return self

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "MetricsRegistry":
        return cls().merge(snap)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Snapshot every metric as plain JSON-friendly types.  Label
        sets are rendered as ``k=v,k=v`` strings for stable keys."""

        def label_str(key: LabelKey) -> str:
            return ",".join(f"{k}={v}" for k, v in key) or "_total"

        return {
            "counters": {
                name: {label_str(k): c.value for k, c in series.items()}
                for name, series in sorted(self._counters.items())
            },
            "histograms": {
                name: {label_str(k): h.as_dict() for k, h in series.items()}
                for name, series in sorted(self._histograms.items())
            },
        }


class MetricsCollector:
    """Bus subscriber that populates a :class:`MetricsRegistry`.

    Aggregations (labels in parentheses):

    * ``mem.accesses`` (phase, proc, array, kind, level) — every access;
    * ``mem.stall_cycles`` histogram (phase, array) — per-access latency;
    * ``spec.messages`` (phase, label, array, proc) — protocol messages;
    * ``dir.transitions`` (phase, node, to) — directory state changes;
    * ``sync.barrier_wait`` histogram (phase, proc) — barrier waits;
    * ``phase.cycles`` (phase) — total cycles per phase name;
    * ``spec.failures`` (reason) — FAILed protocol checks.

    ``space`` (an :class:`~repro.address.AddressSpace`) resolves access
    addresses to array names; unset, arrays are labeled ``<unknown>``.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        space=None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.space = space
        self.phase = ""

    # ------------------------------------------------------------------
    def subscribe(self, bus: EventBus) -> "MetricsCollector":
        bus.subscribe(AccessEvent, self._on_access)
        bus.subscribe(ProtocolMessageEvent, self._on_message)
        bus.subscribe(DirTransitionEvent, self._on_dir)
        bus.subscribe(BarrierWaitEvent, self._on_barrier)
        bus.subscribe(PhaseBeginEvent, self._on_phase_begin)
        bus.subscribe(PhaseEndEvent, self._on_phase_end)
        bus.subscribe(FailureEvent, self._on_failure)
        return self

    # ------------------------------------------------------------------
    def _array_of(self, addr: int) -> str:
        if self.space is None:
            return "<unknown>"
        decl = self.space.find(addr)
        return decl.name if decl is not None else "<unknown>"

    def _on_access(self, e: AccessEvent) -> None:
        array = self._array_of(e.addr)
        self.registry.counter(
            "mem.accesses",
            phase=self.phase,
            proc=e.proc,
            array=array,
            kind=e.kind.value,
            level=e.level.value,
        ).inc()
        self.registry.histogram(
            "mem.stall_cycles", phase=self.phase, array=array
        ).observe(max(0, e.latency - 1))

    def _on_message(self, e: ProtocolMessageEvent) -> None:
        self.registry.counter(
            "spec.messages",
            phase=self.phase,
            label=e.label,
            array=e.array,
            proc=e.proc,
        ).inc()

    def _on_dir(self, e: DirTransitionEvent) -> None:
        self.registry.counter(
            "dir.transitions", phase=self.phase, node=e.node, to=e.new.value
        ).inc()

    def _on_barrier(self, e: BarrierWaitEvent) -> None:
        self.registry.histogram(
            "sync.barrier_wait", phase=self.phase, proc=e.proc
        ).observe(e.wait_cycles)

    def _on_phase_begin(self, e: PhaseBeginEvent) -> None:
        self.phase = e.phase

    def _on_phase_end(self, e: PhaseEndEvent) -> None:
        self.registry.counter("phase.cycles", phase=e.phase).inc(
            int(e.duration)
        )
        self.phase = ""

    def _on_failure(self, e: FailureEvent) -> None:
        self.registry.counter("spec.failures", reason=e.reason).inc()
