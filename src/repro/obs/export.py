"""Trace exporters: JSONL, Chrome trace-event format, text phase report.

The Chrome trace-event output opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``: phases appear as
nested slices on a "runtime" track, per-processor tracks carry memory
misses, barrier waits and protocol messages, and aborts/failures show
as instants.  Simulated cycles are written as microseconds (1 cycle =
1 us) so Perfetto's time axis reads directly in cycles.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os
from typing import IO, Any, Dict, Iterable, List, Optional, Union

from .events import (
    AbortEvent,
    AccessEvent,
    BarrierWaitEvent,
    DirTransitionEvent,
    EpochSyncEvent,
    Event,
    FailureEvent,
    PhaseBeginEvent,
    PhaseEndEvent,
    ProtocolMessageEvent,
    QuiesceEvent,
    RestoreEvent,
    RunEndEvent,
    RunStartEvent,
    SpeculationArmEvent,
)

__all__ = [
    "event_to_dict",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "span_trace_events",
    "merged_chrome_trace",
    "write_merged_chrome_trace",
    "phase_report",
]

try:  # memsys.cache has no import back into obs; guard stays for safety
    from ..memsys.cache import HitLevel
except ImportError:  # pragma: no cover
    HitLevel = None  # type: ignore


def _plain(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, tuple):
        return list(value)
    return value


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Flatten one event into JSON types, tagged with name/subsystem."""
    out: Dict[str, Any] = {"event": event.name, "subsystem": event.subsystem}
    for field in dataclasses.fields(event):
        out[field.name] = _plain(getattr(event, field.name))
    return out


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(
    events: Iterable[Event],
    dest: Union[str, IO[str]],
    include_hits: bool = False,
) -> int:
    """Write one JSON object per event to ``dest`` (path or file).

    ``include_hits=False`` (the default) drops cache-hit
    :class:`AccessEvent`\\ s — they dominate the stream and their
    aggregate lives in the metrics registry; misses are kept.  Returns
    the number of lines written.
    """
    own = isinstance(dest, str)
    if own:
        _ensure_parent(dest)  # type: ignore[arg-type]
    fp: IO[str] = open(dest, "w") if own else dest  # type: ignore[arg-type]
    count = 0
    try:
        for event in events:
            if (
                not include_hits
                and type(event) is AccessEvent
                and HitLevel is not None
                and event.level is not HitLevel.MEMORY
            ):
                continue
            fp.write(json.dumps(event_to_dict(event)) + "\n")
            count += 1
    finally:
        if own:
            fp.close()
    return count


# ----------------------------------------------------------------------
# Chrome trace-event format (Perfetto)
# ----------------------------------------------------------------------
def chrome_trace(
    events: Iterable[Event],
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert an event stream to a Chrome trace-event document.

    Track layout: tid 0 is the runtime (phases, run markers); tid
    ``proc + 1`` is processor ``proc`` (misses, barrier waits, protocol
    messages).  Events are emitted in nondecreasing timestamp order.
    """
    trace: List[Dict[str, Any]] = []

    def slice_(ts, dur, tid, name, cat, args=None):
        ev = {"ph": "X", "ts": float(ts), "dur": float(dur), "pid": 0,
              "tid": tid, "name": name, "cat": cat}
        if args:
            ev["args"] = args
        return ev

    def instant(ts, tid, name, cat, args=None):
        ev = {"ph": "i", "ts": float(ts), "pid": 0, "tid": tid,
              "name": name, "cat": cat, "s": "t"}
        if args:
            ev["args"] = args
        return ev

    for event in events:
        t = type(event)
        if t is PhaseBeginEvent:
            trace.append({"ph": "B", "ts": float(event.time), "pid": 0,
                          "tid": 0, "name": event.phase, "cat": "runtime"})
        elif t is PhaseEndEvent:
            trace.append({"ph": "E", "ts": float(event.time), "pid": 0,
                          "tid": 0, "name": event.phase, "cat": "runtime"})
        elif t is AccessEvent:
            if HitLevel is None or event.level is HitLevel.MEMORY:
                trace.append(slice_(
                    event.time, max(1, event.latency), event.proc + 1,
                    "miss", "memsys", {"addr": event.addr,
                                       "kind": event.kind.value}))
        elif t is DirTransitionEvent:
            trace.append(instant(
                event.time, event.proc + 1, "dir-transition", "memsys",
                {"node": event.node, "prev": _plain(event.prev),
                 "new": _plain(event.new)}))
        elif t is ProtocolMessageEvent:
            trace.append(instant(
                event.time, event.proc + 1, event.label, "core",
                {"array": event.array, "index": event.index}))
        elif t is SpeculationArmEvent:
            trace.append(instant(
                event.time, 0, "arm" if event.armed else "disarm", "core"))
        elif t is FailureEvent:
            trace.append(instant(
                event.time, (event.proc or 0) + 1, "FAIL", "core",
                {"reason": event.reason, "element": _plain(event.element)}))
        elif t is BarrierWaitEvent:
            if event.wait_cycles > 0:
                trace.append(slice_(
                    event.time - event.wait_cycles, event.wait_cycles,
                    event.proc + 1, "barrier-wait", "sim"))
        elif t is EpochSyncEvent:
            trace.append(instant(event.time, 0, f"epoch-sync#{event.epoch}",
                                 "sim", {"flushed": event.flushed_messages}))
        elif t is QuiesceEvent:
            trace.append(instant(event.time, 0, "quiesce", "sim",
                                 {"events": event.events_processed,
                                  "aborted": event.aborted}))
        elif t is RunStartEvent:
            trace.append(instant(event.time, 0, f"run-start:{event.scenario}",
                                 "runtime", {"loop": event.loop_name,
                                             "procs": event.num_processors}))
        elif t is RunEndEvent:
            trace.append(instant(event.time, 0, "run-end", "runtime",
                                 {"passed": event.passed}))
        elif t is AbortEvent:
            trace.append(instant(event.time, 0, "abort", "runtime",
                                 {"reason": event.reason}))
        elif t is RestoreEvent:
            trace.append(slice_(event.time - event.duration, event.duration,
                                0, "restore", "runtime"))
        # unknown event types are skipped: exporters must never crash a run

    trace.sort(key=lambda ev: ev["ts"])
    doc: Dict[str, Any] = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["metadata"] = metadata
    return doc


def write_chrome_trace(
    events: Iterable[Event],
    path: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a Chrome trace JSON file; returns the trace-event count."""
    doc = chrome_trace(events, metadata=metadata)
    _ensure_parent(path)
    with open(path, "w") as fp:
        json.dump(doc, fp)
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# Span traces and multi-process merge (spans are host wall-clock)
# ----------------------------------------------------------------------
def span_trace_events(
    snapshot: Dict[str, Any],
    pid: int,
    anchor_wall: float,
) -> List[Dict[str, Any]]:
    """Convert one ``SpanProfiler.snapshot()`` into Chrome "X" slices.

    Span times are perf-counter seconds relative to the profiler's
    start; the profiler's ``t0_wall`` rebases them onto the shared wall
    clock so snapshots from different processes land on one timeline.
    Timestamps are microseconds relative to ``anchor_wall``.
    """
    base = snapshot["t0_wall"] - anchor_wall
    out: List[Dict[str, Any]] = []
    for span in snapshot["spans"]:
        t1 = span["t1"] if span["t1"] is not None else span["t0"]
        args: Dict[str, Any] = dict(span.get("args") or {})
        if span.get("counters"):
            args["counters"] = dict(span["counters"])
        if span.get("resources"):
            args["resources"] = dict(span["resources"])
        ev = {
            "ph": "X",
            "ts": (base + span["t0"]) * 1e6,
            "dur": max(0.0, (t1 - span["t0"]) * 1e6),
            "pid": pid,
            "tid": span.get("tid", 0),
            "name": span["name"],
            "cat": span.get("cat", "span"),
        }
        if args:
            ev["args"] = args
        out.append(ev)
    return out


def _rescale_sim_events(
    trace_events: List[Dict[str, Any]],
    pid: int,
    window_us: tuple,
) -> List[Dict[str, Any]]:
    """Map sim-time (cycles-as-us) trace events into a wall window.

    The worker records obs events on the simulated clock; in the merged
    trace they are stretched linearly over the task's wall-clock span so
    per-processor tracks (tid = proc + 1) line up under the task's
    spans.  Relative ordering and proportions are preserved; absolute
    sim cycles stay available in each event's ``args``.
    """
    if not trace_events:
        return []
    w0, w1 = window_us
    s0 = min(ev["ts"] for ev in trace_events)
    s1 = max(ev["ts"] + ev.get("dur", 0.0) for ev in trace_events)
    scale = (w1 - w0) / (s1 - s0) if s1 > s0 else 0.0
    out = []
    for ev in trace_events:
        mapped = dict(ev)
        mapped["pid"] = pid
        mapped["ts"] = w0 + (ev["ts"] - s0) * scale
        if "dur" in ev:
            mapped["dur"] = ev["dur"] * scale
        args = dict(mapped.get("args") or {})
        args["sim_ts_cycles"] = ev["ts"]
        mapped["args"] = args
        out.append(mapped)
    return out


def merged_chrome_trace(
    parent: Optional[Dict[str, Any]],
    captures: Iterable[Dict[str, Any]],
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge parent spans + worker capture snapshots into one trace.

    ``parent`` is a ``SpanProfiler.snapshot()`` from the coordinating
    process (may be None); each capture is a ``WorkerCapture.snapshot()``
    shipped back from a pool worker.  Track layout: ``pid`` is the OS
    process id (one track group per worker, plus the parent), ``tid`` 0
    carries that process's spans, and ``tid`` ``proc + 1`` carries the
    worker's per-simulated-processor obs events rescaled onto the
    task's wall window.  Opens directly in Perfetto.
    """
    anchors = [c["profile"]["t0_wall"] for c in captures if c.get("profile")]
    if parent is not None:
        anchors.append(parent["t0_wall"])
    anchor = min(anchors) if anchors else 0.0

    trace: List[Dict[str, Any]] = []
    names: Dict[int, str] = {}
    if parent is not None:
        parent_pid = parent.get("pid", 0)
        names[parent_pid] = "parent"
        trace.extend(span_trace_events(parent, parent_pid, anchor))
    for capture in captures:
        prof = capture.get("profile")
        if not prof:
            continue
        pid = capture.get("pid", prof.get("pid", 0))
        if pid not in names:
            names[pid] = f"worker-{pid}"
        spans = span_trace_events(prof, pid, anchor)
        trace.extend(spans)
        sim_events = capture.get("trace_events") or []
        if sim_events and prof["spans"]:
            roots = [s for s in prof["spans"] if s.get("cat") == "task"]
            window = roots[0] if roots else prof["spans"][0]
            base = prof["t0_wall"] - anchor
            w0 = (base + window["t0"]) * 1e6
            w1 = (base + (window["t1"] or window["t0"])) * 1e6
            trace.extend(_rescale_sim_events(sim_events, pid, (w0, w1)))

    meta_events = [
        {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
         "args": {"name": label}}
        for pid, label in sorted(names.items())
    ]
    trace.sort(key=lambda ev: ev["ts"])
    doc: Dict[str, Any] = {
        "traceEvents": meta_events + trace,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["metadata"] = metadata
    return doc


def write_merged_chrome_trace(
    parent: Optional[Dict[str, Any]],
    captures: Iterable[Dict[str, Any]],
    path: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a merged multi-process trace; returns the event count."""
    doc = merged_chrome_trace(parent, list(captures), metadata=metadata)
    _ensure_parent(path)
    with open(path, "w") as fp:
        json.dump(doc, fp)
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# Text phase report
# ----------------------------------------------------------------------
def phase_report(events: Iterable[Event], width: int = 36) -> str:
    """Flame-style text report of where the cycles went, per phase."""
    header = ""
    phases: List[tuple] = []  # (name, start, duration)
    open_phases: Dict[str, float] = {}
    failures: List[FailureEvent] = []
    wall = 0.0
    for event in events:
        t = type(event)
        if t is RunStartEvent:
            header = (f"{event.scenario} on {event.loop_name} "
                      f"({event.num_processors} procs)")
        elif t is RunEndEvent:
            wall = max(wall, event.wall)
        elif t is PhaseBeginEvent:
            open_phases[event.phase] = event.time
        elif t is PhaseEndEvent:
            start = open_phases.pop(event.phase, event.time - event.duration)
            phases.append((event.phase, start, event.duration))
            wall = max(wall, event.time)
        elif t is FailureEvent:
            failures.append(event)
    total = sum(d for _, _, d in phases) or 1.0
    lines = [f"phase report: {header or '(no run marker)'} — "
             f"{wall:,.0f} cycles"]
    for name, start, duration in phases:
        bar = "#" * max(1, round(width * duration / total))
        lines.append(
            f"  {name:<16} {bar:<{width}} {100 * duration / total:5.1f}%"
            f" {duration:>14,.0f} cyc @ {start:,.0f}"
        )
    if failures:
        first = failures[0]
        lines.append(f"  FAIL: {first.reason} (element={first.element}, "
                     f"proc={first.proc}, t={first.time:,.0f})")
    return "\n".join(lines)
