"""Adm — surrogate for ``run.do20`` (paper §5.2).

Characteristics reproduced: 900 executions (sampled by default) with 32
or 64 iterations each; small working set; a mix of arrays needing the
non-privatization scheme and arrays needing privatization; 8-byte
elements; good load balance (the software test runs processor-wise).
Accesses to the arrays under test constitute a large fraction of the
loop's work, so the software scheme's instruction overhead hurts — the
paper names Adm (with Ocean) as suffering high instruction overhead.
"""

from __future__ import annotations

import random
from typing import List

from ..runtime.driver import RunConfig
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import compute, read, write
from ..types import ProtocolKind
from .base import Workload, WorkloadCharacteristics


class AdmWorkload(Workload):
    name = "Adm"
    num_processors = 16
    default_executions = 4
    paper_executions = 900

    GRID = 4_096       # elements of the non-privatized grid array
    SCRATCH = 512      # privatized workspace

    characteristics = WorkloadCharacteristics(
        name="Adm",
        source_loop="run.do20",
        paper_executions=900,
        typical_iterations="32 or 64",
        working_set="small",
        element_bytes="8",
        algorithm="non-privatization + privatization mix",
        scheduling="good balance; SW processor-wise",
        num_processors=16,
        notes="marked accesses are a large fraction of the work",
    )

    def __init__(self, seed: int = 2026, scale: float = 1.0) -> None:
        super().__init__(seed, scale)

    def build_execution(self, index: int, rng: random.Random) -> Loop:
        iteration_count = 32 if index % 2 == 0 else 64
        # The loop covers the whole (scaled) grid: the working set
        # shrinks with ``scale`` while iteration counts stay the paper's.
        grid = max(iteration_count * 8, int(self.GRID * self.scale))
        grid -= grid % iteration_count
        per_iter = grid // iteration_count
        arrays = [
            ArraySpec("Q", grid, 8, ProtocolKind.NONPRIV),
            ArraySpec("TMP", self.SCRATCH, 8, ProtocolKind.PRIV_SIMPLE),
            ArraySpec("C", 1_024, 8, modified=False),
        ]
        iterations: List[List[object]] = []
        for i in range(iteration_count):
            ops: List[object] = []
            base = i * per_iter
            for k in range(per_iter):
                j = base + k
                slot = k % self.SCRATCH
                # Privatized workspace: written then read (covered).
                ops.append(write("TMP", slot))
                ops.append(compute(12))
                ops.append(read("TMP", slot))
                # Grid element owned by this iteration: read-modify-write.
                ops.append(read("Q", j))
                ops.append(read("C", (j + k) % 1024))
                ops.append(compute(30))
                ops.append(write("Q", j))
            iterations.append(ops)
        return Loop(f"adm.e{index}", arrays, iterations)

    def sw_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.PROCESSOR)
        )

    def hw_config(self) -> RunConfig:
        # Balanced loop: static chunks, like the software scheme uses.
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK)
        )

    def ideal_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK)
        )
