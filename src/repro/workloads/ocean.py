"""Ocean — surrogate for ``ftrvmt.do109`` (paper §5.2).

Characteristics reproduced: executed thousands of times with 32
iterations most of the time; small working set of 258*64 complex (16-
byte) elements; data accessed with *different strides in different
executions*; the non-privatization algorithm applies; good load balance
(the software test runs processor-wise); runs on 8 processors.

The surrogate is an FFT-style butterfly pass: execution ``e`` picks a
stride from the execution index, and iteration ``i`` updates a disjoint
strided slice of the complex array in place (read, butterfly compute,
write), with read-only twiddle-factor accesses mixed in.  Disjointness
across iterations makes every execution fully parallel.
"""

from __future__ import annotations

import random
from typing import List

from ..runtime.driver import RunConfig
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import compute, read, write
from ..types import ProtocolKind
from .base import Workload, WorkloadCharacteristics


class OceanWorkload(Workload):
    name = "Ocean"
    num_processors = 8
    default_executions = 4
    #: the paper runs all 4129 executions; we default to a sample
    paper_executions = 4129

    #: ~258*64 complex elements, rounded to a power of two so every
    #: stride partitions the index space exactly.
    ARRAY_ELEMS = 16384
    ITERATIONS = 32
    STRIDES = (1, 2, 4, 8, 16)

    characteristics = WorkloadCharacteristics(
        name="Ocean",
        source_loop="ftrvmt.do109",
        paper_executions=4129,
        typical_iterations="32",
        working_set="258*64 complex elements (~258 KB)",
        element_bytes="16",
        algorithm="non-privatization",
        scheduling="good balance; SW processor-wise",
        num_processors=8,
        notes="different strides in different executions",
    )

    def __init__(self, seed: int = 2026, scale: float = 0.5) -> None:
        super().__init__(seed, scale)

    def array_elems(self) -> int:
        """Scaled array size: the loop always touches the whole array
        (as the paper's FFT pass does), so the working set shrinks with
        ``scale``.  Kept a multiple of ITERATIONS * max stride."""
        unit = self.ITERATIONS * max(self.STRIDES)
        size = int(self.ARRAY_ELEMS * self.scale)
        return max(unit, (size // unit) * unit)

    def build_execution(self, index: int, rng: random.Random) -> Loop:
        stride = self.STRIDES[index % len(self.STRIDES)]
        size = self.array_elems()
        # Iteration i owns the contiguous block [i*B, (i+1)*B) and walks
        # it with the execution's stride (column-major over a
        # (B/stride x stride) tile), visiting every element exactly once:
        # disjoint across iterations, full coverage, stride-dependent
        # locality — the §5.2 "different strides in different
        # executions" behaviour.
        block = size // self.ITERATIONS
        rows = block // stride
        arrays = [
            ArraySpec("FT", size, 16, ProtocolKind.NONPRIV),
            ArraySpec("W", 1024, 16, modified=False),  # twiddle factors
        ]
        iterations: List[List[object]] = []
        for i in range(self.ITERATIONS):
            ops: List[object] = []
            base = i * block
            for k in range(block):
                j = base + (k % rows) * stride + k // rows
                ops.append(read("FT", j))
                if k % 4 == 0:
                    ops.append(read("W", (k * stride) % 1024))
                ops.append(compute(26))  # butterfly flops
                ops.append(write("FT", j))
            iterations.append(ops)
        return Loop(f"ocean.e{index}", arrays, iterations)

    def sw_config(self) -> RunConfig:
        # Good load balance -> processor-wise software test (§5.2).
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.PROCESSOR)
        )

    def ideal_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK)
        )

    def hw_config(self) -> RunConfig:
        # Good load balance: the hardware scheme is free to schedule any
        # way (§4.1); static chunks minimize scheduling overhead here.
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.CHUNK)
        )
