"""Workload abstraction: a named generator of loop executions."""

from __future__ import annotations

import dataclasses
import random
from typing import Iterator, List, Optional

from ..runtime.driver import RunConfig
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..trace.loop import Loop


@dataclasses.dataclass(frozen=True)
class WorkloadCharacteristics:
    """The §5.2 summary row for one workload."""

    name: str
    source_loop: str
    paper_executions: int
    typical_iterations: str
    working_set: str
    element_bytes: str
    algorithm: str
    scheduling: str
    num_processors: int
    notes: str = ""


class Workload:
    """Base class for the paper's loop surrogates.

    Subclasses define the per-execution loop generator and the scenario
    configurations §5.2 prescribes (e.g. the processor-wise software
    test for Ocean and Adm, dynamic scheduling for P3m).

    ``default_executions`` is the scaled-down number of executions
    simulated by default; pass ``count`` to :meth:`executions` for more
    (up to the paper's full count) — results are averaged per
    execution, exactly as the paper reports them.
    """

    name: str = "workload"
    num_processors: int = 16
    default_executions: int = 4
    characteristics: Optional[WorkloadCharacteristics] = None

    def __init__(self, seed: int = 2026, scale: float = 1.0) -> None:
        self.seed = seed
        #: scales per-execution iteration counts (for quick benches)
        self.scale = scale

    # ------------------------------------------------------------------
    def executions(self, count: Optional[int] = None) -> Iterator[Loop]:
        """Yield ``count`` independent loop executions."""
        n = self.default_executions if count is None else count
        for i in range(n):
            yield self.build_execution(i, random.Random(self.seed * 1_000_003 + i))

    def build_execution(self, index: int, rng: random.Random) -> Loop:
        raise NotImplementedError

    def _scaled(self, iterations: int, minimum: int = 4) -> int:
        return max(minimum, int(iterations * self.scale))

    # ------------------------------------------------------------------
    # Scenario configurations (§5.2 choices); override as needed.
    # ------------------------------------------------------------------
    def hw_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 4, VirtualMode.CHUNK)
        )

    def sw_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(
                SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.PROCESSOR
            )
        )

    def ideal_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 4, VirtualMode.CHUNK)
        )
