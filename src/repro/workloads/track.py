"""Track — surrogate for ``nlfilt.do300`` (paper §5.2).

Characteristics reproduced: 56 executions (sampled by default) with an
average of 480 iterations; small working set; four arrays under the
non-privatization scheme with 4- or 8-byte elements; the fraction of
accesses to the arrays under test varies from 0% to 44% across
executions; load imbalance.  Crucially, a handful of executions (5 of
56 in the paper) are *not fully parallel*: they carry dependences
between adjacent iterations.  Those dependences land inside one
dynamic block (hardware scheme with small blocks) and inside one static
chunk (processor-wise software test), so both pass — but the
iteration-wise software test fails them (§5.2, §6.2).
"""

from __future__ import annotations

import random
from typing import List

from ..runtime.driver import RunConfig
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import compute, local, read, write
from ..types import ProtocolKind
from .base import Workload, WorkloadCharacteristics


class TrackWorkload(Workload):
    name = "Track"
    num_processors = 16
    default_executions = 6
    paper_executions = 56

    #: iterations per execution (paper average: 480), scaled; kept a
    #: multiple of num_processors * BLOCK so adjacent-dependence pairs
    #: stay inside one block and one chunk.
    BLOCK = 4
    DEFAULT_ITERATIONS = 128
    TESTED = 1_024  # elements per tested array

    characteristics = WorkloadCharacteristics(
        name="Track",
        source_loop="nlfilt.do300",
        paper_executions=56,
        typical_iterations="480 average",
        working_set="small",
        element_bytes="4 and 8",
        algorithm="non-privatization (4 arrays)",
        scheduling="imbalanced; HW dynamic small blocks, SW static",
        num_processors=16,
        notes="some executions not fully parallel; pass processor-wise",
    )

    def __init__(self, seed: int = 2026, scale: float = 1.0) -> None:
        super().__init__(seed, scale)

    def is_dependent_execution(self, index: int) -> bool:
        """Executions carrying adjacent-iteration dependences (the
        paper's 5-of-56); one in six of the default sample."""
        return index % 6 == 3

    def build_execution(self, index: int, rng: random.Random) -> Loop:
        iters = self._scaled(self.DEFAULT_ITERATIONS, 32)
        # Round to a multiple of procs*BLOCK for chunk/block alignment.
        unit = self.num_processors * self.BLOCK
        iters = max(unit, (iters // unit) * unit)
        iters = min(iters, self.TESTED // 2)  # keep owner slices disjoint
        marked_fraction = (index % 8) / 8 * 0.44  # 0% .. ~44% (§5.2)
        arrays = [
            ArraySpec("T1", self.TESTED, 4, ProtocolKind.NONPRIV),
            ArraySpec("T2", self.TESTED, 4, ProtocolKind.NONPRIV),
            ArraySpec("T3", self.TESTED, 8, ProtocolKind.NONPRIV),
            ArraySpec("T4", self.TESTED, 8, ProtocolKind.NONPRIV),
            ArraySpec("OBS", 8_192, 8, modified=False),
        ]
        tested = ("T1", "T2", "T3", "T4")
        # Each iteration owns a disjoint slice of the lower half of the
        # tested arrays; the upper half is reserved for the injected
        # adjacent-iteration dependences so they never collide with an
        # owner slice.
        half = self.TESTED // 2
        per_iter = max(1, half // iters)
        dependent = self.is_dependent_execution(index)
        iterations: List[List[object]] = []
        for i in range(iters):
            ops: List[object] = []
            weight = rng.randint(1, 10)  # load imbalance
            accesses = 4 + 2 * weight
            window = (i * 64) % 7_168  # sliding observation window
            for k in range(accesses):
                if rng.random() < marked_fraction:
                    name = tested[k % 4]
                    j = (i * per_iter + k % per_iter) % half
                    ops.append(read(name, j))
                    ops.append(compute(24))
                    ops.append(write(name, j))
                else:
                    ops.append(read("OBS", window + rng.randrange(1_024)))
                    ops.append(compute(24))
                    ops.append(local())
            ops.append(compute(30 * weight))
            iterations.append(ops)
        if dependent:
            # Dependences between iterations (4m+1, 4m+2), 1-based: both
            # land in the same dynamic block of 4 and (with aligned
            # chunks) the same static chunk.
            for m in range(0, iters // self.BLOCK, 3):
                a = m * self.BLOCK  # 0-based index of iteration 4m+1
                elem = half + (a * 7) % half
                iterations[a].append(write("T2", elem))
                iterations[a + 1].insert(0, read("T2", elem))
        return Loop(f"track.e{index}", arrays, iterations)

    def hw_config(self) -> RunConfig:
        # "The plain dynamically-scheduled hardware scheme passes all
        # loops if the iterations are scheduled in blocks of a few
        # iterations each" (§5.2).
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, self.BLOCK, VirtualMode.CHUNK)
        )

    def sw_config(self) -> RunConfig:
        # Iteration-wise fails 5 executions; processor-wise passes but
        # forces static scheduling despite the load imbalance (§5.2).
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.PROCESSOR)
        )

    def ideal_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, self.BLOCK, VirtualMode.CHUNK)
        )
