"""Parameterized synthetic loops for tests, examples and ablations."""

from __future__ import annotations

import random
from typing import List, Optional

from ..trace.loop import ArraySpec, Loop
from ..trace.ops import AccessOp, compute, read, write
from ..types import ProtocolKind


def parallel_nonpriv_loop(
    name: str = "synthetic-parallel",
    elements: int = 2_048,
    iterations: int = 64,
    work_cycles: int = 40,
    accesses_per_iteration: int = 8,
    seed: int = 7,
) -> Loop:
    """A fully parallel loop: every iteration owns a disjoint slice of a
    permuted index space (the classic ``A(f(i))`` subscripted-subscript
    pattern where ``f`` happens to be a permutation)."""
    rng = random.Random(seed)
    perm = list(range(elements))
    rng.shuffle(perm)
    per = min(accesses_per_iteration, elements // iterations)
    if per < 1:
        raise ValueError("need elements >= iterations")
    body: List[List[object]] = []
    for i in range(iterations):
        ops: List[object] = []
        for k in range(per):
            j = perm[i * per + k]
            ops.append(read("A", j))
            ops.append(compute(work_cycles))
            ops.append(write("A", j))
        body.append(ops)
    return Loop(name, [ArraySpec("A", elements, 8, ProtocolKind.NONPRIV)], body)


def privatizable_loop(
    name: str = "synthetic-priv",
    elements: int = 512,
    iterations: int = 64,
    work_cycles: int = 30,
    scratch_per_iteration: int = 6,
    live_out: bool = False,
    simple: bool = True,
) -> Loop:
    """Every iteration uses the array as scratch (write before read), so
    the loop is a doall only after privatization."""
    protocol = ProtocolKind.PRIV_SIMPLE if simple else ProtocolKind.PRIV
    body: List[List[object]] = []
    for i in range(iterations):
        ops: List[object] = []
        for k in range(scratch_per_iteration):
            slot = k % elements
            ops.append(write("W", slot))
            ops.append(compute(work_cycles))
            ops.append(read("W", slot))
        body.append(ops)
    spec = ArraySpec("W", elements, 8, protocol, live_out=live_out)
    return Loop(name, [spec], body)


def failing_loop(
    fail_at_iteration: int,
    name: str = "synthetic-failing",
    elements: int = 2_048,
    iterations: int = 64,
    work_cycles: int = 40,
    accesses_per_iteration: int = 8,
    seed: int = 7,
) -> Loop:
    """A parallel loop with one cross-iteration flow dependence injected
    between ``fail_at_iteration`` and the next iteration (1-based).

    Used by the failure-detection-latency ablation: the hardware scheme
    should abort roughly when the dependent pair executes, while the
    software scheme always runs the whole loop first.
    """
    if not 1 <= fail_at_iteration < iterations:
        raise ValueError("fail_at_iteration must be in [1, iterations)")
    loop = parallel_nonpriv_loop(
        name, elements, iterations, work_cycles, accesses_per_iteration, seed
    )
    # Reuse an element owned by the earlier iteration in the later one.
    src_ops = loop.iterations[fail_at_iteration - 1]
    victim = next(op for op in src_ops if isinstance(op, AccessOp) and op.is_write)
    loop.iterations[fail_at_iteration].insert(0, read("A", victim.index))
    return loop


def partially_parallel_loop(
    dependence_period: int = 4,
    name: str = "synthetic-partial",
    elements: int = 2_048,
    iterations: int = 64,
    work_cycles: int = 40,
    seed: int = 7,
) -> Loop:
    """Adjacent-iteration dependences every ``dependence_period``
    iterations: not a doall iteration-wise, but chunked schedules that
    keep each dependent pair on one processor pass the processor-wise
    tests (the paper's Track situation)."""
    loop = parallel_nonpriv_loop(
        name, elements, iterations, work_cycles, 4, seed
    )
    for a in range(0, iterations - 1, dependence_period):
        src_ops = loop.iterations[a]
        victim = next(op for op in src_ops if isinstance(op, AccessOp) and op.is_write)
        loop.iterations[a + 1].insert(0, read("A", victim.index))
    return loop
