"""Workload surrogates for the paper's evaluation (§5.2).

The original evaluation simulated four loops from the Perfect Club
benchmarks that Polaris could not analyze statically: ``ftrvmt.do109``
(Ocean), ``pp.do100`` (P3m), ``run.do20`` (Adm) and ``nlfilt.do300``
(Track).  Neither the benchmark inputs nor the compiler-instrumented
binaries are available, so each workload here is a *synthetic
surrogate* generated to match every characteristic §5.2 reports:
iteration counts, execution counts, working-set sizes, element sizes,
access patterns (strides, privatized scratch, load imbalance), which
algorithm each array needs, and — for Track — the 5-of-56 executions
that are not fully parallel yet pass the processor-wise test.  See
DESIGN.md §5 for the substitution rationale.
"""

from .base import Workload, WorkloadCharacteristics
from .ocean import OceanWorkload
from .p3m import P3mWorkload
from .adm import AdmWorkload
from .track import TrackWorkload
from .synthetic import (
    failing_loop,
    parallel_nonpriv_loop,
    partially_parallel_loop,
    privatizable_loop,
)

ALL_WORKLOADS = (OceanWorkload, P3mWorkload, AdmWorkload, TrackWorkload)


def workload_by_name(name: str) -> Workload:
    """Instantiate a paper workload by its short name."""
    table = {cls.name.lower(): cls for cls in ALL_WORKLOADS}
    try:
        return table[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(table)}"
        ) from None


__all__ = [
    "ALL_WORKLOADS",
    "AdmWorkload",
    "OceanWorkload",
    "P3mWorkload",
    "TrackWorkload",
    "Workload",
    "WorkloadCharacteristics",
    "failing_loop",
    "parallel_nonpriv_loop",
    "partially_parallel_loop",
    "privatizable_loop",
    "workload_by_name",
]
