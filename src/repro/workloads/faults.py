"""Systematic dependence injection for failure studies.

The evaluation's §6.2 *forces* failures by modifying loops.  This
module generalizes that: inject a flow, anti or output dependence
between two chosen iterations of any loop, on an element of a chosen
array under test.  Used by the failure benches and by tests that check
the detection machinery against each dependence kind.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ConfigurationError
from ..trace.loop import Loop
from ..trace.ops import AccessOp, read, write


@dataclasses.dataclass(frozen=True)
class InjectedDependence:
    """Description of one injected cross-iteration dependence.

    Iterations are 1-based.  ``kind`` is ``"flow"`` (write in ``src``,
    read in ``dst``), ``"anti"`` (read in ``src``, write in ``dst``) or
    ``"output"`` (write in both).  ``src < dst`` is required so the
    serial-order direction is unambiguous.
    """

    kind: str
    array: str
    element: int
    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.kind not in ("flow", "anti", "output"):
            raise ConfigurationError(f"unknown dependence kind {self.kind!r}")
        if not self.src < self.dst:
            raise ConfigurationError("src iteration must precede dst")


def inject(loop: Loop, dep: InjectedDependence) -> Loop:
    """Return a new loop with ``dep`` added to ``loop``'s iterations.

    The source op is appended to the end of the src iteration and the
    destination op prepended to the dst iteration, so the dependence's
    accesses bracket whatever the iterations already do.
    """
    if not 1 <= dep.src <= loop.num_iterations:
        raise ConfigurationError(f"src iteration {dep.src} out of range")
    if not 1 <= dep.dst <= loop.num_iterations:
        raise ConfigurationError(f"dst iteration {dep.dst} out of range")
    spec = loop.array(dep.array)
    if not 0 <= dep.element < spec.length:
        raise ConfigurationError(f"element {dep.element} out of range")
    iterations = [list(ops) for ops in loop.iterations]
    if dep.kind == "flow":
        iterations[dep.src - 1].append(write(dep.array, dep.element))
        iterations[dep.dst - 1].insert(0, read(dep.array, dep.element))
    elif dep.kind == "anti":
        iterations[dep.src - 1].append(read(dep.array, dep.element))
        iterations[dep.dst - 1].insert(0, write(dep.array, dep.element))
    else:  # output
        iterations[dep.src - 1].append(write(dep.array, dep.element))
        iterations[dep.dst - 1].insert(0, write(dep.array, dep.element))
    return Loop(
        f"{loop.name}+{dep.kind}@{dep.src}->{dep.dst}",
        loop.arrays,
        iterations,
        iteration_weights=loop.iteration_weights,
    )


def free_element(loop: Loop, array: str) -> int:
    """An element of ``array`` the loop never touches (for injections
    that must not collide with existing accesses).  Raises when the
    loop covers the whole array."""
    touched = set()
    for ops in loop.iterations:
        for op in ops:
            if isinstance(op, AccessOp) and op.array == array:
                touched.add(op.index)
    spec = loop.array(array)
    for candidate in range(spec.length):
        if candidate not in touched:
            return candidate
    raise ConfigurationError(
        f"loop touches every element of {array!r}; nowhere to inject"
    )


def inject_each_kind(
    loop: Loop, array: str, src: int, dst: int, element: Optional[int] = None
) -> List[Loop]:
    """One injected variant per dependence kind, on a free element."""
    if element is None:
        element = free_element(loop, array)
    return [
        inject(loop, InjectedDependence(kind, array, element, src, dst))
        for kind in ("flow", "anti", "output")
    ]
