"""Value-level (numpy-backed) versions of the paper's loop patterns.

The trace-level surrogates in this package drive the timing
simulation; these :class:`~repro.semantics.ConcreteLoop` builders drive
the *semantics* layer with the same access patterns, so the paper's
loop shapes can be executed end to end on real data and checked against
serial results.  Scales are small — these exist for correctness
demonstrations and tests, not timing studies.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..semantics.executor import ConcreteLoop
from ..types import ProtocolKind


def ocean_like(
    elements: int = 512, iterations: int = 16, stride: int = 2, seed: int = 0
) -> Tuple[ConcreteLoop, np.ndarray]:
    """An in-place strided butterfly update (Ocean's pattern).

    Returns the loop and the expected (serial) result.
    """
    rng = np.random.default_rng(seed)
    initial = rng.random(elements)
    block = elements // iterations
    rows = max(1, block // stride)

    def body(i, arrays):
        base = i * block
        for k in range(block):
            j = base + (k % rows) * stride + k // rows
            arrays["FT"][j] = arrays["FT"][j] * 0.5 + 1.0

    expected = initial.copy()
    for i in range(iterations):
        base = i * block
        for k in range(block):
            j = base + (k % rows) * stride + k // rows
            expected[j] = expected[j] * 0.5 + 1.0

    loop = ConcreteLoop(
        body, iterations, {"FT": initial},
        protocols={"FT": ProtocolKind.NONPRIV},
    )
    return loop, expected


def p3m_like(
    particles: int = 24, positions: int = 256, seed: int = 1
) -> Tuple[ConcreteLoop, np.ndarray]:
    """A privatized-scratch force loop (P3m's pattern).

    Each iteration accumulates neighbor interactions into a scratch
    array (written before read) and stores a per-particle force.
    Returns the loop and the expected FORCE array.
    """
    rng = np.random.default_rng(seed)
    pos = rng.random(positions)
    neighbor_count = rng.integers(2, 8, size=particles)
    neighbor_idx = rng.integers(0, positions, size=(particles, 8))

    def body(i, arrays):
        total = 0.0
        for k in range(int(neighbor_count[i])):
            arrays["XI"][k] = arrays["POS"][int(neighbor_idx[i, k])] * 2.0
            total += arrays["XI"][k]
        arrays["FORCE"][i] = total

    expected = np.zeros(particles)
    for i in range(particles):
        total = 0.0
        for k in range(int(neighbor_count[i])):
            total += pos[int(neighbor_idx[i, k])] * 2.0
        expected[i] = total

    loop = ConcreteLoop(
        body, particles,
        {
            "POS": pos,
            "XI": np.zeros(8),
            "FORCE": np.zeros(particles),
        },
        protocols={
            "XI": ProtocolKind.PRIV_SIMPLE,
            "FORCE": ProtocolKind.NONPRIV,
        },
    )
    return loop, expected


def track_like(
    iterations: int = 24, tested: int = 128, dependent: bool = False, seed: int = 2
) -> Tuple[ConcreteLoop, np.ndarray]:
    """A filter-update loop (Track's pattern), optionally with the
    adjacent-iteration dependences of its non-parallel executions.

    Returns the loop and the expected T array.
    """
    rng = np.random.default_rng(seed)
    initial = rng.random(tested)
    half = tested // 2

    def body(i, arrays):
        j = i % half
        arrays["T"][j] = arrays["T"][j] * 0.9 + 0.1
        if dependent and i % 4 == 0 and i + 1 < iterations:
            arrays["T"][half + i % half] = float(i)
        if dependent and i % 4 == 1:
            _ = arrays["T"][half + (i - 1) % half]

    expected = initial.copy()
    for i in range(iterations):
        j = i % half
        expected[j] = expected[j] * 0.9 + 0.1
        if dependent and i % 4 == 0 and i + 1 < iterations:
            expected[half + i % half] = float(i)

    loop = ConcreteLoop(
        body, iterations, {"T": initial},
        protocols={"T": ProtocolKind.NONPRIV},
    )
    return loop, expected
