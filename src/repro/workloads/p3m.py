"""P3m — surrogate for ``pp.do100`` (paper §5.2).

Characteristics reproduced: a single execution with a very large
iteration count (97,336 in the paper, of which 15,000 were simulated;
scaled down by default here); a very large working set; several arrays
needing the *privatization* algorithm; 4-byte elements; no read-in or
copy-out necessary; highly imbalanced iterations requiring dynamic
scheduling.

The surrogate is a particle-particle force computation: iteration ``i``
processes one particle with a power-law-distributed neighbor count
(the imbalance), reading shared read-only position data with poor
locality (the large working set) and using two scratch arrays as
per-iteration workspace — always written before read, hence
privatizable without read-in.
"""

from __future__ import annotations

import random
from typing import List

from ..runtime.driver import RunConfig
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import compute, read, write
from ..types import ProtocolKind
from .base import Workload, WorkloadCharacteristics


class P3mWorkload(Workload):
    name = "P3m"
    num_processors = 16
    default_executions = 1
    paper_executions = 1

    #: iterations simulated by the paper (of 97,336 total)
    PAPER_ITERATIONS = 15_000
    DEFAULT_ITERATIONS = 1_200
    POSITIONS = 120_000         # 4-byte elements: ~480 KB, exceeds the L2
    SCRATCH = 256

    characteristics = WorkloadCharacteristics(
        name="P3m",
        source_loop="pp.do100",
        paper_executions=1,
        typical_iterations="97336 (15000 simulated)",
        working_set="very large (~0.5 MB of positions)",
        element_bytes="4",
        algorithm="privatization (no read-in/copy-out)",
        scheduling="highly imbalanced; dynamic required",
        num_processors=16,
    )

    def __init__(self, seed: int = 2026, scale: float = 1.0) -> None:
        super().__init__(seed, scale)

    def build_execution(self, index: int, rng: random.Random) -> Loop:
        iterations_count = self._scaled(self.DEFAULT_ITERATIONS, 64)
        arrays = [
            ArraySpec("POS", self.POSITIONS, 4, modified=False),
            # Scratch workspace: written before read in every iteration.
            # No read-in/copy-out needed -> the reduced protocol suffices.
            ArraySpec("XI", self.SCRATCH, 4, ProtocolKind.PRIV_SIMPLE),
            ArraySpec("FI", self.SCRATCH, 4, ProtocolKind.PRIV_SIMPLE),
        ]
        iterations: List[List[object]] = []
        weights: List[int] = []
        for i in range(iterations_count):
            # Power-law neighbor count: a few very heavy iterations.
            u = rng.random()
            neighbors = max(2, int(2 + 40 * (u ** 4) * 2))
            weights.append(neighbors)
            ops: List[object] = []
            home = rng.randrange(self.POSITIONS)
            ops.append(read("POS", home))
            for k in range(neighbors):
                nb = (home + rng.randrange(-800, 800)) % self.POSITIONS
                slot = k % self.SCRATCH
                ops.append(read("POS", nb))
                ops.append(compute(34))
                ops.append(write("XI", slot))
                ops.append(write("FI", slot))
                ops.append(compute(22))
                ops.append(read("XI", slot))
                ops.append(read("FI", slot))
            ops.append(compute(20))
            iterations.append(ops)
        return Loop(f"p3m.e{index}", arrays, iterations, iteration_weights=weights)

    def hw_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 2, VirtualMode.CHUNK)
        )

    def sw_config(self) -> RunConfig:
        # Imbalance forbids the processor-wise (static) variant: the
        # software scheme uses the iteration-wise test with dynamic
        # scheduling (§5.2 prescribes dynamic scheduling for P3m).
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 2, VirtualMode.CHUNK)
        )

    def ideal_config(self) -> RunConfig:
        return RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 2, VirtualMode.CHUNK)
        )
