"""Application-level model: programs as serial sections + loop sites.

The paper's workloads are *applications* that execute their
hard-to-analyze loops many times (Ocean 4129 times, Adm 900), with
compiler-parallelized or sequential code in between.  A
:class:`Program` models that structure, and :func:`run_program`
simulates it end-to-end under one of three policies:

* ``SERIAL`` — never speculate (every loop runs sequentially);
* ``SPECULATE`` — always run the hardware speculation;
* ``ADAPTIVE`` — the §2.2.4 policy (:class:`AdaptiveSpeculator`),
  which learns per-site from pass/fail history.

This is where Amdahl effects appear: sequential sections bound the
application speedup no matter how well the loops parallelize.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Union

from ..params import MachineParams
from ..trace.loop import Loop
from .adaptive import AdaptiveSpeculator
from .driver import RunConfig, RunResult, run_hw, run_serial


@dataclasses.dataclass(frozen=True)
class SerialSection:
    """Code between the loops: a fixed number of one-processor cycles."""

    cycles: float
    label: str = "serial-section"


@dataclasses.dataclass(frozen=True)
class LoopExecution:
    """One execution of a run-time-parallelized loop site."""

    site: str
    loop: Loop


Section = Union[SerialSection, LoopExecution]


class Policy(enum.Enum):
    SERIAL = "serial"
    SPECULATE = "speculate"
    ADAPTIVE = "adaptive"


@dataclasses.dataclass
class SiteSummary:
    executions: int = 0
    speculated: int = 0
    passed: int = 0
    cycles: float = 0.0


@dataclasses.dataclass
class ProgramResult:
    """End-to-end simulated cost of one program under one policy."""

    policy: Policy
    total_cycles: float
    loop_cycles: float
    serial_section_cycles: float
    sites: Dict[str, SiteSummary]

    @property
    def loop_fraction(self) -> float:
        return self.loop_cycles / self.total_cycles if self.total_cycles else 0.0


class Program:
    """An ordered list of serial sections and loop executions."""

    def __init__(self, sections: Iterable[Section]) -> None:
        self.sections: List[Section] = list(sections)
        if not self.sections:
            raise ValueError("a program needs at least one section")

    @classmethod
    def from_workload(
        cls,
        workload,
        executions: Optional[int] = None,
        serial_between: float = 20_000.0,
    ) -> "Program":
        """Build a program that alternates sequential work with the
        workload's loop executions (the §5.2 application shape)."""
        sections: List[Section] = []
        for loop in workload.executions(executions):
            sections.append(SerialSection(serial_between))
            sections.append(LoopExecution(workload.name, loop))
        return cls(sections)

    def loop_executions(self) -> List[LoopExecution]:
        return [s for s in self.sections if isinstance(s, LoopExecution)]


def run_program(
    program: Program,
    params: MachineParams,
    config: Optional[RunConfig] = None,
    policy: Policy = Policy.ADAPTIVE,
    explore_after: int = 8,
) -> ProgramResult:
    """Simulate the program end to end under ``policy``.

    Loop executions run on fresh (cold-cache) machines, as the paper's
    methodology prescribes; serial sections cost their fixed cycles.
    """
    config = config or RunConfig()
    adaptive = AdaptiveSpeculator(params, config, explore_after=explore_after)
    total = 0.0
    loops = 0.0
    serial_cycles = 0.0
    sites: Dict[str, SiteSummary] = {}
    for section in program.sections:
        if isinstance(section, SerialSection):
            total += section.cycles
            serial_cycles += section.cycles
            continue
        summary = sites.setdefault(section.site, SiteSummary())
        if policy is Policy.SERIAL:
            result = run_serial(section.loop, params)
            speculated = False
        elif policy is Policy.SPECULATE:
            result = run_hw(section.loop, params, config)
            speculated = True
        else:
            decision, result = adaptive.execute(section.site, section.loop)
            speculated = decision.speculate
        summary.executions += 1
        summary.speculated += speculated
        summary.passed += result.passed
        summary.cycles += result.wall
        total += result.wall
        loops += result.wall
    return ProgramResult(
        policy=policy,
        total_cycles=total,
        loop_cycles=loops,
        serial_section_cycles=serial_cycles,
        sites=sites,
    )


def compare_policies(
    program_builder,
    params: MachineParams,
    config: Optional[RunConfig] = None,
    policies: Iterable[Policy] = (Policy.SERIAL, Policy.SPECULATE, Policy.ADAPTIVE),
    explore_after: int = 8,
) -> Dict[Policy, ProgramResult]:
    """Run freshly built copies of a program under several policies.

    ``program_builder`` is a zero-argument callable returning an
    equivalent :class:`Program` (loops are consumed by simulation state,
    so each policy gets its own instance).
    """
    results: Dict[Policy, ProgramResult] = {}
    for policy in policies:
        results[policy] = run_program(
            program_builder(), params, config, policy, explore_after
        )
    return results
