"""Adaptive speculation policy (paper §2.2.4).

The paper envisions the run-time test integrated in a parallelizing
compiler: "the compiler can use heuristics and statistics about the
parallelization success-rate in previous executions and automatically
decide when run-time parallelization can be profitable."

:class:`AdaptiveSpeculator` implements that decision loop for repeated
executions of the same source loop (the common case — Ocean runs 4129
times, Adm 900).  For each loop site it tracks, from past executions:

* the observed pass rate of the speculation,
* the average cost of a passing speculative run,
* the average cost of a failed one (abort + restore + serial), and
* the average serial cost,

and speculates only while the expected speculative cost beats serial:

    E[speculate] = p_pass * cost_pass + (1 - p_pass) * cost_fail

A small exploration bonus re-tries speculation occasionally after a
string of failures, so a loop whose input-dependent behaviour changes
(Track's mix of parallel and non-parallel executions) is re-evaluated.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..params import MachineParams
from ..trace.loop import Loop
from ..types import Scenario
from .driver import RunConfig, RunResult, run_hw, run_serial


@dataclasses.dataclass
class SiteStats:
    """Execution history of one loop site."""

    speculative_runs: int = 0
    passes: int = 0
    pass_cost: float = 0.0  # accumulated wall cycles of passing runs
    fail_cost: float = 0.0
    serial_runs: int = 0
    serial_cost: float = 0.0
    #: executions since speculation was last attempted (for exploration)
    since_last_attempt: int = 0

    @property
    def failures(self) -> int:
        return self.speculative_runs - self.passes

    @property
    def pass_rate(self) -> float:
        if self.speculative_runs == 0:
            return 1.0  # optimistic prior: try speculation first
        return self.passes / self.speculative_runs

    def avg_pass_cost(self) -> Optional[float]:
        return self.pass_cost / self.passes if self.passes else None

    def avg_fail_cost(self) -> Optional[float]:
        return self.fail_cost / self.failures if self.failures else None

    def avg_serial_cost(self) -> Optional[float]:
        return self.serial_cost / self.serial_runs if self.serial_runs else None


@dataclasses.dataclass
class Decision:
    """What the policy chose for one execution, and why."""

    speculate: bool
    reason: str
    expected_speculative: Optional[float] = None
    expected_serial: Optional[float] = None


class AdaptiveSpeculator:
    """Per-site decision maker plus executor.

    Args:
        params: machine to simulate on.
        config: scheduling configuration for the hardware scheme.
        explore_after: after this many consecutive non-speculative
            executions of a site, try speculating once again.
    """

    def __init__(
        self,
        params: MachineParams,
        config: Optional[RunConfig] = None,
        explore_after: int = 8,
    ) -> None:
        self.params = params
        self.config = config or RunConfig()
        self.explore_after = explore_after
        self.sites: Dict[str, SiteStats] = {}

    # ------------------------------------------------------------------
    def stats_for(self, site: str) -> SiteStats:
        stats = self.sites.get(site)
        if stats is None:
            stats = SiteStats()
            self.sites[site] = stats
        return stats

    def decide(self, site: str) -> Decision:
        """Choose speculation or serial execution for the next run."""
        stats = self.stats_for(site)
        if stats.speculative_runs == 0:
            return Decision(True, "no history: speculate optimistically")
        if stats.since_last_attempt >= self.explore_after:
            return Decision(True, "exploration retry after serial streak")
        pass_cost = stats.avg_pass_cost()
        fail_cost = stats.avg_fail_cost()
        serial_cost = stats.avg_serial_cost()
        if serial_cost is None:
            # Never ran serially: keep speculating unless it always fails.
            if stats.pass_rate == 0.0:
                return Decision(False, "speculation always failed so far")
            return Decision(True, f"pass rate {stats.pass_rate:.0%}, no serial baseline")
        p = stats.pass_rate
        expected = 0.0
        if pass_cost is not None:
            expected += p * pass_cost
        if fail_cost is not None:
            expected += (1 - p) * fail_cost
        elif pass_cost is not None:
            expected += (1 - p) * pass_cost  # no failure observed yet
        if expected < serial_cost:
            return Decision(
                True,
                f"expected speculative cost {expected:.0f} < serial {serial_cost:.0f}",
                expected, serial_cost,
            )
        return Decision(
            False,
            f"expected speculative cost {expected:.0f} >= serial {serial_cost:.0f}",
            expected, serial_cost,
        )

    # ------------------------------------------------------------------
    def execute(self, site: str, loop: Loop) -> "tuple[Decision, RunResult]":
        """Decide, simulate accordingly, and record the outcome."""
        stats = self.stats_for(site)
        decision = self.decide(site)
        if decision.speculate:
            result = run_hw(loop, self.params, self.config)
            stats.speculative_runs += 1
            stats.since_last_attempt = 0
            if result.passed:
                stats.passes += 1
                stats.pass_cost += result.wall
            else:
                stats.fail_cost += result.wall
                # A failed speculation ends in a serial execution whose
                # cost is also a serial-baseline observation.
                serial_part = result.phases.get("serial-reexec")
                if serial_part:
                    stats.serial_runs += 1
                    stats.serial_cost += serial_part
        else:
            result = run_serial(loop, self.params)
            stats.serial_runs += 1
            stats.serial_cost += result.wall
            stats.since_last_attempt += 1
        return decision, result
