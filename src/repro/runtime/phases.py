"""Bulk op-stream builders for the runtime's pre/post-loop phases.

All builders emit ops at *cache-line granularity*: one simulated access
per line touched (the fetch brings the rest of the line), plus compute
cycles proportional to the number of elements processed.  That keeps
the simulation cost manageable while preserving the memory behaviour
that matters (lines touched, local/remote placement, cache conflicts).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..params import MachineParams
from ..trace.ops import compute, read, write


def segment_of(length: int, proc: int, num_procs: int) -> Tuple[int, int]:
    """Contiguous [start, end) element segment of ``proc``."""
    base = length // num_procs
    rem = length % num_procs
    start = proc * base + min(proc, rem)
    size = base + (1 if proc < rem else 0)
    return start, start + size


def line_indices(start: int, end: int, elems_per_line: int) -> Iterator[Tuple[int, int]]:
    """Yield (first_element, count) per cache line covering [start, end)."""
    if start >= end:
        return
    first = start - (start % elems_per_line)
    idx = first
    while idx < end:
        lo = max(idx, start)
        hi = min(idx + elems_per_line, end)
        yield lo, hi - lo
        idx += elems_per_line


def copy_ops(
    src: str,
    dst: str,
    start: int,
    end: int,
    elems_per_line: int,
    per_element_cycles: int,
) -> Iterator[object]:
    """Copy ``src[start:end]`` to ``dst[start:end]`` (backup/restore)."""
    for first, count in line_indices(start, end, elems_per_line):
        yield read(src, first)
        yield write(dst, first)
        if per_element_cycles:
            yield compute(per_element_cycles * count)


def zero_ops(
    dst: str,
    start: int,
    end: int,
    elems_per_line: int,
    per_element_cycles: int,
) -> Iterator[object]:
    """Zero out ``dst[start:end]`` (shadow-array initialization)."""
    for first, count in line_indices(start, end, elems_per_line):
        yield write(dst, first)
        if per_element_cycles:
            yield compute(per_element_cycles * count)


def scan_ops(
    src: str,
    start: int,
    end: int,
    elems_per_line: int,
    per_element_cycles: int,
) -> Iterator[object]:
    """Read every line of ``src[start:end]`` and process each element."""
    for first, count in line_indices(start, end, elems_per_line):
        yield read(src, first)
        if per_element_cycles:
            yield compute(per_element_cycles * count)


def merge_analysis_ops(
    shadow_names: Sequence[str],
    global_names: Sequence[str],
    start: int,
    end: int,
    elems_per_line: int,
    per_element_cycles: int,
) -> Iterator[object]:
    """One processor's share of the merging + analysis phases.

    The processor owns the global-shadow segment [start, end): it reads
    that segment from *every* private shadow copy (``shadow_names``,
    one set per processor — mostly remote), ORs them into the global
    shadows (``global_names``), and runs the analysis tests on the
    merged values.  Work per processor is ``segment x num_procs``,
    which is constant as the machine grows — the scalability bottleneck
    the paper calls out in §6.3.
    """
    for first, count in line_indices(start, end, elems_per_line):
        for shadow in shadow_names:
            yield read(shadow, first)
        for global_name in global_names:
            yield write(global_name, first)
        if per_element_cycles:
            yield compute(per_element_cycles * count)


def gather_line_starts(
    indices: Iterable[int], elems_per_line: int
) -> List[int]:
    """Distinct line-start element indices covering ``indices``."""
    starts = sorted({i - (i % elems_per_line) for i in indices})
    return starts


def sparse_copy_ops(
    src: str,
    dst: str,
    indices: Iterable[int],
    elems_per_line: int,
    per_element_cycles: int,
) -> Iterator[object]:
    """Copy only the lines containing ``indices`` (sparse backup or
    copy-out of written elements)."""
    for first in gather_line_starts(indices, elems_per_line):
        yield read(src, first)
        yield write(dst, first)
        if per_element_cycles:
            yield compute(per_element_cycles * elems_per_line)


def chain(*streams: Iterable[object]) -> Iterator[object]:
    for stream in streams:
        for op in stream:
            yield op
