"""Speculative-parallelization runtime.

This layer turns a :class:`~repro.trace.Loop` into simulated execution:
iteration scheduling (§2.2.3/§4.1), state saving and restoring
(§2.2.1), the instrumented software execution (marking/merging/
analysis), the hardware speculative execution, copy-out, and the
failure path (abort, restore, serial re-execution).
"""

from .schedule import (
    ChunkQueue,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    static_chunks,
)
from .adaptive import AdaptiveSpeculator, Decision, SiteStats
from .driver import (
    LoopRunner,
    RunConfig,
    RunResult,
    run_hw,
    run_ideal,
    run_serial,
    run_sw,
)

__all__ = [
    "AdaptiveSpeculator",
    "ChunkQueue",
    "Decision",
    "LoopRunner",
    "SiteStats",
    "RunConfig",
    "RunResult",
    "SchedulePolicy",
    "ScheduleSpec",
    "VirtualMode",
    "run_hw",
    "run_ideal",
    "run_serial",
    "run_sw",
    "static_chunks",
]
