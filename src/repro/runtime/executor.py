"""Builds the per-processor op streams for the loop execution itself.

The same generator skeleton serves all scenarios; what differs is the
*instrumenter*, which maps each body op to the ops actually issued:

* identity for Serial, Ideal and HW (the hardware scheme needs no extra
  instructions inside the loop body — its test logic rides on the
  cache/directory transactions);
* :class:`SWInstrumenter` for the software scheme, which wraps every
  access to an array under test with shadow-array marking traffic and
  redirects accesses to speculatively privatized arrays to the
  processor's private copy.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

import dataclasses

from ..errors import SchedulingError
from ..lrpd.shadow import LRPDState
from ..params import CostModel
from ..sim.processor import (
    Barrier,
    BarrierOp,
    BusyCostOp,
    EpochSyncOp,
    IterBeginOp,
    Mutex,
    MutexOp,
)
from ..trace.loop import Loop
from ..trace.ops import AccessOp, ComputeOp, compute, read, write
from .schedule import (
    Block,
    ChunkQueue,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    plan_static,
    virtual_of,
)

Instrumenter = Callable[[int, AccessOp, int], Iterator[object]]


def identity_instrument(proc: int, op: AccessOp, virt: int) -> Iterator[object]:
    yield op


def shadow_name(array: str, kind: str, proc: int) -> str:
    """Naming convention for per-processor shadow arrays."""
    return f"{array}#{kind}@p{proc}"


def global_shadow_name(array: str, kind: str) -> str:
    return f"{array}#{kind}"


def private_copy_name(array: str, proc: int) -> str:
    return f"{array}@p{proc}"


class SWInstrumenter:
    """Marking instrumentation of the software LRPD scheme (§2.2).

    For every access to an array under test it emits the marking
    instructions (compute cycles) and the shadow-array memory accesses,
    updates the logical :class:`LRPDState`, and redirects data accesses
    of privatized arrays to the processor's private copy.  With the
    processor-wise test, shadow entries are bits packed 64 to a word,
    so shadow accesses are scaled down accordingly (§2.2.3).
    """

    def __init__(
        self,
        state: LRPDState,
        loop: Loop,
        cost: CostModel,
        processor_wise: bool = False,
    ) -> None:
        self.state = state
        self.cost = cost
        self.processor_wise = processor_wise
        self.pack = cost.sw_bitmap_word_elems if processor_wise else 1
        self._under_test: Set[str] = {a.name for a in loop.arrays_under_test()}
        self._privatized: Dict[str, bool] = {
            a.name: a.privatized for a in loop.arrays_under_test()
        }

    def __call__(self, proc: int, op: AccessOp, virt: int) -> Iterator[object]:
        name = op.array
        if name not in self._under_test:
            yield op
            return
        shadow = self.state.shadow(name, proc)
        index = op.index
        sidx = index // self.pack
        privatized = self._privatized[name]
        if op.is_read:
            yield compute(self.cost.sw_mark_read_instrs)
            yield read(shadow_name(name, "Aw", proc), sidx)
            covered = shadow.written_in(index, virt)
            shadow.markread(index, virt)
            if not covered:
                yield write(shadow_name(name, "Ar", proc), sidx)
                yield write(shadow_name(name, "Anp", proc), sidx)
            if privatized and shadow.ever_written(index):
                yield read(private_copy_name(name, proc), index)
            else:
                yield read(name, index)
        else:
            yield compute(self.cost.sw_mark_write_instrs)
            yield read(shadow_name(name, "Aw", proc), sidx)
            first_in_iter = not shadow.written_in(index, virt)
            first_in_loop = not shadow.ever_written(index)
            shadow.markwrite(index, virt)
            if first_in_iter:
                yield write(shadow_name(name, "Aw", proc), sidx)
                if self.state.with_awmin and first_in_loop:
                    # §2.2.3 extension: record the element's first
                    # writing iteration in the Awmin shadow array.
                    yield write(shadow_name(name, "Awmin", proc), sidx)
            if privatized:
                yield write(private_copy_name(name, proc), index)
            else:
                yield write(name, index)


def block_ops(
    proc: int,
    loop: Loop,
    block: Block,
    spec: ScheduleSpec,
    iter_overhead: int,
    instrument: Instrumenter,
    iter_end_cycles: int = 0,
) -> Iterator[object]:
    """Ops for one block of iterations on one processor."""
    plain = instrument is identity_instrument
    for iteration in block.iterations():
        virt = virtual_of(block, iteration, spec.virtual_mode, proc)
        yield IterBeginOp(iteration, virt, iter_overhead)
        if plain:
            # Uninstrumented execution (the hardware schemes) replays
            # the iteration's op list as-is; skip the per-access
            # generator round trip.
            yield from loop.iterations[iteration - 1]
        else:
            for op in loop.iterations[iteration - 1]:
                if isinstance(op, AccessOp):
                    for out in instrument(proc, op, virt):
                        yield out
                else:
                    yield op
        if iter_end_cycles:
            yield ComputeOp(iter_end_cycles)


def loop_streams(
    loop: Loop,
    spec: ScheduleSpec,
    num_procs: int,
    cost: CostModel,
    instrument: Optional[Instrumenter] = None,
    iter_overhead: Optional[int] = None,
    iter_end_cycles: int = 0,
    setup_cycles: int = 0,
    mutex: Optional[Mutex] = None,
    queue: Optional[ChunkQueue] = None,
    timestamp_bits: Optional[int] = None,
) -> Dict[int, Iterator[object]]:
    """Per-processor op generators for the doall execution of ``loop``.

    For the dynamic policy, callers may pass a shared ``mutex``/``queue``
    pair (otherwise they are created here); the queue's grab log records
    the emergent block-to-processor assignment.

    ``timestamp_bits`` enables the §3.3 time-stamp overflow handling:
    when the (chunk-numbered) virtual iteration would exceed
    ``2**timestamp_bits - 1``, all processors synchronize at a barrier
    and the effective numbering restarts from 1 (the hardware resets
    the privatization time stamps).  Requires a static policy with
    CHUNK numbering.
    """
    instrument = instrument or identity_instrument
    overhead = cost.loop_iter_overhead if iter_overhead is None else iter_overhead

    if timestamp_bits is not None:
        return _epoch_streams(
            loop, spec, num_procs, cost, instrument, overhead,
            iter_end_cycles, setup_cycles, timestamp_bits,
        )

    if spec.policy is SchedulePolicy.DYNAMIC:
        from .schedule import cyclic_blocks

        if queue is None:
            queue = ChunkQueue(cyclic_blocks(loop.num_iterations, spec.chunk_iterations))
        if mutex is None:
            mutex = Mutex()

        def dynamic_stream(proc: int) -> Iterator[object]:
            if setup_cycles:
                yield BusyCostOp(setup_cycles)
            while True:
                yield MutexOp(mutex, cost.sched_dynamic_per_grab)
                block = queue.pop(proc)
                if block is None:
                    return
                for op in block_ops(
                    proc, loop, block, spec, overhead, instrument, iter_end_cycles
                ):
                    yield op

        return {p: dynamic_stream(p) for p in range(num_procs)}

    per_proc_blocks = plan_static(spec, loop.num_iterations, num_procs)

    def static_stream(proc: int, blocks: Sequence[Block]) -> Iterator[object]:
        if setup_cycles:
            yield BusyCostOp(setup_cycles)
        yield BusyCostOp(cost.sched_static_per_proc)
        for block in blocks:
            for op in block_ops(
                proc, loop, block, spec, overhead, instrument, iter_end_cycles
            ):
                yield op

    return {
        p: static_stream(p, blocks)
        for p, blocks in enumerate(per_proc_blocks)
    }


def _epoch_streams(
    loop: Loop,
    spec: ScheduleSpec,
    num_procs: int,
    cost: CostModel,
    instrument: Instrumenter,
    overhead: int,
    iter_end_cycles: int,
    setup_cycles: int,
    timestamp_bits: int,
) -> Dict[int, Iterator[object]]:
    """Static schedules partitioned into time-stamp epochs (§3.3)."""
    if spec.policy is SchedulePolicy.DYNAMIC:
        raise SchedulingError(
            "time-stamp epoch synchronization requires a static schedule"
        )
    if spec.virtual_mode is not VirtualMode.CHUNK:
        raise SchedulingError(
            "time-stamp epochs apply to chunk (superiteration) numbering"
        )
    capacity = 2 ** timestamp_bits - 1
    if capacity < 1:
        raise SchedulingError("timestamp_bits must be >= 1")
    per_proc_blocks = plan_static(spec, loop.num_iterations, num_procs)
    max_ordinal = max(
        (b.ordinal for blocks in per_proc_blocks for b in blocks), default=1
    )
    num_epochs = -(-max_ordinal // capacity)  # ceil
    barriers = [
        Barrier(num_procs, cost.barrier_base, cost.barrier_per_proc)
        for _ in range(max(0, num_epochs - 1))
    ]

    def stream(proc: int, blocks: Sequence[Block]) -> Iterator[object]:
        if setup_cycles:
            yield BusyCostOp(setup_cycles)
        yield BusyCostOp(cost.sched_static_per_proc)
        by_epoch: Dict[int, List[Block]] = {}
        for block in blocks:
            by_epoch.setdefault((block.ordinal - 1) // capacity, []).append(block)
        for epoch in range(num_epochs):
            for block in by_epoch.get(epoch, []):
                effective = dataclasses.replace(
                    block, ordinal=((block.ordinal - 1) % capacity) + 1
                )
                for op in block_ops(
                    proc, loop, effective, spec, overhead, instrument,
                    iter_end_cycles,
                ):
                    yield op
            if epoch < num_epochs - 1:
                yield BarrierOp(barriers[epoch])
                yield EpochSyncOp(epoch + 1)

    return {p: stream(p, blocks) for p, blocks in enumerate(per_proc_blocks)}


def serial_stream(loop: Loop, cost: CostModel) -> Iterator[object]:
    """All iterations in order on one processor, no test, no marking."""
    for iteration in range(1, loop.num_iterations + 1):
        yield IterBeginOp(iteration, iteration, cost.loop_iter_overhead)
        for op in loop.iterations[iteration - 1]:
            yield op
