"""Whole-phase vectorized execution of the hardware scheme (``engine="vector"``).

The third execution tier.  Instead of simulating the quiescent loop
phase op by op (scalar) or in batched bursts (batch), the vector tier:

1. *extracts* the loop's access trace by walking the same per-processor
   op streams the other engines execute (:func:`loop_streams` — so
   scheduling, virtual numbering, time-stamp epochs and their
   ``SchedulingError`` cases are shared, not re-implemented) into flat
   numpy row arrays;
2. decides the speculation verdict with one whole-phase kernel per
   array under test (``MaxR1st > MinW`` masks, boolean reductions —
   see ``core/nonpriv.py`` and ``core/privatization.py``);
3. on PASS, replays the phase's *cost* through the simulation engine as
   one :class:`AggregateCostOp` per processor per epoch (with the real
   barrier/epoch-sync ops between segments), fills the directory-side
   access-bit tables with their end state, and installs the coherence
   end state with one argsort-based ``bulk_loop_commit``.

Contract (enforced by ``repro/testing/diffcheck.py`` in verdict mode
and ``tests/test_differential.py``): the vector tier is
**verdict/failure-attribution conformant** with the scalar engine —
same pass/fail, same failure reason/element/iteration/processor, same
detection cycle and iteration assignment.  It deliberately relaxes
internal trace ordering and timing (wall clock, per-phase times, memory
counters, directory end-state), which the full scalar-vs-batch
signature still pins.

Safety is by *delegation*, never by guessing, but the fast path is
wide.  Dynamic self-scheduling is decided natively: the dispatcher's
grab order is deterministic given the cost model, so
:func:`replay_dynamic_assignment` computes the emergent
iteration→processor map on a speculation-less scratch machine and the
kernels run on the resulting trace.  A kernel FAIL is decided natively
too: the FAIL-localizing kernels name the candidate elements, and one
op-by-op batch attempt (aborted at the first FAIL, exactly like
scalar) supplies the exact attribution — reason, element, iteration,
processor, detection cycle — which is cross-checked against the
candidate set.  Wholesale batch delegation remains only for cost-model
features the replay cannot reproduce exactly (directory/L2 contention,
multi-way caches, time-stamp epochs under dynamic scheduling) and as
the fallback when a localized replay disagrees with the kernels.
Kernel PASS implies scalar PASS (the kernels are conservative), so a
vector PASS is always decided by the kernels alone.

Extractions are memoized across sweep points: runs sharing the loop
fingerprint, schedule, and machine geometry reuse the flat trace (and,
for dynamic schedules, the replayed assignment), counted by the
``vector.extract_memo_hits`` / ``vector.replay_memo_hits`` span
counters.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.nonpriv import nonpriv_vector_fail_candidates, nonpriv_vector_verdict
from ..core.privatization import (
    priv_simple_vector_fail_candidates,
    priv_simple_vector_fill_tables,
    priv_simple_vector_verdict,
    priv_vector_fail_candidates,
    priv_vector_fill_tables,
    priv_vector_verdict,
)
from ..core.accessbits import read_first_rows
from ..obs import spans as obs_spans
from ..obs.events import AbortEvent, LedgerWriteEvent, RestoreEvent
from ..obs.provenance import run_provenance
from ..params import MachineParams
from ..sim.machine import Machine
from ..sim.processor import (
    AggregateCostOp,
    BarrierOp,
    BusyCostOp,
    EpochSyncOp,
    IterBeginOp,
)
from ..sim.stats import TimeBreakdown
from ..trace.loop import Loop
from ..trace.ops import AccessOp, ComputeOp, LocalOp
from ..types import ProtocolKind, Scenario
from .executor import (
    block_ops,
    identity_instrument,
    loop_streams,
    private_copy_name,
    serial_stream,
)
from .phases import chain, sparse_copy_ops
from .schedule import (
    Block,
    SchedulePolicy,
    replay_dynamic_assignment,
    static_assignment,
)


@dataclasses.dataclass
class _Extraction:
    """Flat access record of the whole loop phase.

    One row per shared-memory access, rows grouped by processor and in
    program order within each processor (the order every group-wise
    kernel requires).  ``raws`` are raw whole-loop virtual ordinals,
    ``effs`` the effective (epoch-relative) ordinals the scalar engine
    numbers iterations with, ``epochs`` the time-stamp epoch index.
    """

    procs: np.ndarray
    aids: np.ndarray
    elems: np.ndarray
    writes: np.ndarray
    raws: np.ndarray
    effs: np.ndarray
    epochs: np.ndarray
    #: busy cycles per processor per epoch segment (between barriers)
    busy_segs: List[List[float]]
    num_epochs: int

    def rows_of(self, aid: int) -> np.ndarray:
        return self.aids == aid


def _dynamic_streams(
    loop: Loop, config, num: int, cost, iter_overhead: int,
    dynamic_blocks: List[List[Block]],
) -> Dict[int, Iterator[object]]:
    """The op streams a dynamic run emits once its grab order is known.

    Mirrors :func:`loop_streams`'s dynamic stream exactly, with the
    mutex-guarded queue pops replaced by their known outcomes: the
    setup burst, one ``sched_dynamic_per_grab`` busy charge before each
    grabbed block, and one final charge for the grab that finds the
    queue empty.  (The mutex hold counts as busy time in the op-by-op
    engines too, so the cost accounting matches.)
    """

    def stream(proc: int) -> Iterator[object]:
        yield BusyCostOp(cost.hw_loop_setup_cycles)
        for block in dynamic_blocks[proc]:
            yield BusyCostOp(cost.sched_dynamic_per_grab)
            yield from block_ops(
                proc, loop, block, config.schedule, iter_overhead,
                identity_instrument, 0,
            )
        yield BusyCostOp(cost.sched_dynamic_per_grab)

    return {p: stream(p) for p in range(num)}


def _extract(
    loop: Loop, params: MachineParams, config, iter_overhead: int,
    dynamic_blocks: Optional[List[List[Block]]] = None,
) -> _Extraction:
    """Walk the real per-processor op streams and record every access.

    Uses the same :func:`loop_streams` the scalar/batch engines execute,
    so static planning, chunk virtualization and the §3.3 epoch
    partitioning (including its ``SchedulingError`` rejections) are
    byte-for-byte shared.  For dynamic schedules the caller supplies the
    replayed per-processor block lists and the streams are rebuilt from
    them (the grab order is already settled, so no mutex is needed).
    """
    cost = params.cost
    num = params.num_processors
    if dynamic_blocks is not None:
        streams = _dynamic_streams(
            loop, config, num, cost, iter_overhead, dynamic_blocks
        )
    else:
        streams = loop_streams(
            loop, config.schedule, num, cost,
            iter_overhead=iter_overhead,
            setup_cycles=cost.hw_loop_setup_cycles,
            timestamp_bits=config.timestamp_bits,
        )
    bits = config.timestamp_bits
    capacity = (2 ** bits - 1) if bits is not None else None
    aid_of = {spec.name: i for i, spec in enumerate(loop.arrays)}

    procs: List[int] = []
    aids: List[int] = []
    elems: List[int] = []
    writes: List[bool] = []
    raws: List[int] = []
    effs: List[int] = []
    epochs: List[int] = []
    busy_segs: List[List[float]] = []

    for proc in range(num):
        busy = 0.0
        segs: List[float] = []
        epoch = 0
        raw = eff = 0
        for op in streams[proc]:
            cls = type(op)
            if cls is AccessOp:
                procs.append(proc)
                aids.append(aid_of[op.array])
                elems.append(op.index)
                writes.append(not op.is_read)
                raws.append(raw)
                effs.append(eff)
                epochs.append(epoch)
                busy += 1.0
            elif cls is ComputeOp:
                busy += op.cycles
            elif cls is LocalOp:
                busy += 1.0
            elif cls is IterBeginOp:
                eff = op.virtual
                raw = epoch * capacity + eff if capacity is not None else eff
                busy += op.overhead_cycles
            elif cls is BusyCostOp:
                busy += op.cycles
            elif cls is BarrierOp:
                # Epoch boundary: close the current busy segment.  The
                # barrier/epoch-sync costs are charged by the real ops
                # the aggregate replay emits between segments.
                segs.append(busy)
                busy = 0.0
            elif cls is EpochSyncOp:
                epoch = op.epoch
            else:  # pragma: no cover - static streams emit nothing else
                raise TypeError(f"vector extraction: unknown op {op!r}")
        segs.append(busy)
        busy_segs.append(segs)

    num_epochs = max(len(s) for s in busy_segs) if busy_segs else 1
    for segs in busy_segs:
        segs.extend([0.0] * (num_epochs - len(segs)))
    return _Extraction(
        procs=np.asarray(procs, dtype=np.int64),
        aids=np.asarray(aids, dtype=np.int64),
        elems=np.asarray(elems, dtype=np.int64),
        writes=np.asarray(writes, dtype=bool),
        raws=np.asarray(raws, dtype=np.int64),
        effs=np.asarray(effs, dtype=np.int64),
        epochs=np.asarray(epochs, dtype=np.int64),
        busy_segs=busy_segs,
        num_epochs=num_epochs,
    )


# ----------------------------------------------------------------------
# Cross-sweep extraction reuse
# ----------------------------------------------------------------------
#: (key -> _Extraction) and (key -> (blocks, assignment)).  Bounded LRU:
#: sweep grids revisit the same loop × schedule × geometry many times
#: (one run per telemetry level, per engine cell, per repeat), and the
#: extraction walk is the vector tier's dominant cost on small loops.
#: Consumers never mutate a cached extraction's arrays.
_EXTRACT_MEMO: "OrderedDict[tuple, _Extraction]" = OrderedDict()
_REPLAY_MEMO: "OrderedDict[tuple, Tuple[list, list]]" = OrderedDict()
_MEMO_CAP = 64


def _memo_get(memo: OrderedDict, key: tuple, counter: str):
    hit = memo.get(key)
    if hit is not None:
        memo.move_to_end(key)
        prof = obs_spans.current()
        if prof is not None:
            prof.count(counter)
    return hit


def _memo_put(memo: OrderedDict, key: tuple, value) -> None:
    memo[key] = value
    if len(memo) > _MEMO_CAP:
        memo.popitem(last=False)


def clear_extraction_memos() -> None:
    """Drop the cross-sweep extraction/replay caches.

    For test isolation and for benchmarks that want to measure the
    cold path; production sweeps never need to call this."""
    _EXTRACT_MEMO.clear()
    _REPLAY_MEMO.clear()


def _memo_keys(loop: Loop, params: MachineParams, config, iter_overhead: int):
    """(replay key, extraction key) for this run.

    The static extraction depends only on the loop shape, the schedule
    plan, the processor count and the per-iteration costs; the dynamic
    replay (and therefore the dynamic extraction) additionally depends
    on the full machine geometry — cache shapes and latencies steer the
    grab order — and on the backup phase that warms the caches.
    """
    from ..obs.ledger import loop_fingerprint

    fp = loop_fingerprint(loop)
    if config.schedule.policy is SchedulePolicy.DYNAMIC:
        tail = (fp, params, config.schedule, config.sparse_backup, iter_overhead)
        return ("replay",) + tail, ("dynamic",) + tail
    static_key = (
        "static", fp, config.schedule, config.timestamp_bits,
        params.num_processors, iter_overhead, params.cost,
    )
    return None, static_key


@dataclasses.dataclass
class _ArrayVerdict:
    """Kernel outputs for one array under test, kept for the fills."""

    passed: bool
    rows: np.ndarray
    rf_rows: Optional[np.ndarray] = None
    #: non-privatization directory end state (PASS runs only)
    np_first: Optional[np.ndarray] = None
    np_priv: Optional[np.ndarray] = None
    np_ronly: Optional[np.ndarray] = None
    #: FAIL runs: element indexes that fail this array's test (meta
    #: indexes in the per-line-bit mode) — the localization candidates
    #: the exact replay's attribution must land in.
    fail_elems: Optional[np.ndarray] = None


def _meta_geometry(params: MachineParams, spec) -> Tuple[int, int]:
    """(elements per line, meta-table length) of the per-line-bit mode."""
    epl = params.elems_per_line(spec.elem_bytes)
    return epl, -(-spec.length // epl)


def _kernel_verdicts(
    loop: Loop, params: MachineParams, config, ext: _Extraction
) -> Dict[str, _ArrayVerdict]:
    """Run the whole-phase verdict kernels for every array under test.

    Always returns the full verdict dict; failing arrays carry their
    FAIL-localization candidate elements in ``fail_elems``."""
    out: Dict[str, _ArrayVerdict] = {}
    aid_of = {spec.name: i for i, spec in enumerate(loop.arrays)}
    for spec in loop.arrays_under_test():
        rows = ext.rows_of(aid_of[spec.name])
        procs = ext.procs[rows]
        elems = ext.elems[rows]
        writes = ext.writes[rows]
        if spec.protocol is ProtocolKind.NONPRIV:
            if config.per_line_bits:
                epl, length = _meta_geometry(params, spec)
                elems = elems // epl
            else:
                length = spec.length
            passed, first, priv, ronly = nonpriv_vector_verdict(
                procs, elems, writes, length
            )
            verdict = _ArrayVerdict(
                passed, rows, np_first=first, np_priv=priv, np_ronly=ronly
            )
            if not passed:
                verdict.fail_elems = nonpriv_vector_fail_candidates(
                    procs, elems, writes, length
                )
        elif spec.protocol is ProtocolKind.PRIV:
            rf = read_first_rows(procs, ext.raws[rows], elems, writes)
            passed = priv_vector_verdict(
                rf, ext.raws[rows], elems, writes, spec.length
            )
            verdict = _ArrayVerdict(passed, rows, rf_rows=rf)
            if not passed:
                verdict.fail_elems = priv_vector_fail_candidates(
                    rf, ext.raws[rows], elems, writes, spec.length
                )
        else:  # PRIV_SIMPLE
            rf = read_first_rows(procs, ext.raws[rows], elems, writes)
            passed = priv_simple_vector_verdict(rf, elems, writes, spec.length)
            verdict = _ArrayVerdict(passed, rows, rf_rows=rf)
            if not passed:
                verdict.fail_elems = priv_simple_vector_fail_candidates(
                    rf, elems, writes, spec.length
                )
        out[spec.name] = verdict
    return out


def _fill_tables(
    machine: Machine, loop: Loop, params: MachineParams, config,
    ext: _Extraction, verdicts: Dict[str, _ArrayVerdict],
) -> None:
    """Write the directory-side access-bit end state of a passing run."""
    spec_engine = machine.spec
    assert spec_engine is not None
    num = params.num_processors
    for spec in loop.arrays_under_test():
        v = verdicts[spec.name]
        rows = v.rows
        procs = ext.procs[rows]
        elems = ext.elems[rows]
        writes = ext.writes[rows]
        if spec.protocol is ProtocolKind.NONPRIV:
            table = spec_engine.nonpriv.table(spec.name)
            table.first[:] = v.np_first
            table.priv[:] = v.np_priv
            table.ronly[:] = v.np_ronly
        elif spec.protocol is ProtocolKind.PRIV:
            priv_vector_fill_tables(
                spec_engine.priv.shared_table(spec.name),
                [spec_engine.priv.private_table(spec.name, p) for p in range(num)],
                procs, v.rf_rows, ext.raws[rows], elems, writes,
                ext.epochs[rows], ext.effs[rows],
            )
        else:
            priv_simple_vector_fill_tables(
                spec_engine.priv_simple.shared_table(spec.name),
                [
                    spec_engine.priv_simple.private_table(spec.name, p)
                    for p in range(num)
                ],
                procs, v.rf_rows, ext.effs[rows], elems, writes,
            )


def _resolve_rows(
    machine: Machine, loop: Loop, params: MachineParams, ext: _Extraction
) -> np.ndarray:
    """Physical address of every access row, exactly as the scalar
    engine's address-range comparator would have resolved it (shared,
    private copy, or — for PRIV_SIMPLE reads — private iff this
    processor wrote the element at an earlier access)."""
    space = machine.space
    n = len(ext.procs)
    addrs = np.zeros(n, dtype=np.int64)
    num = params.num_processors
    all_rows = np.arange(n, dtype=np.int64)
    for aid, spec in enumerate(loop.arrays):
        mask = ext.rows_of(aid)
        if not mask.any():
            continue
        elems = ext.elems[mask]
        if spec.protocol in (ProtocolKind.PLAIN, ProtocolKind.NONPRIV):
            decl = space.array(spec.name)
            addrs[mask] = decl.base + elems * decl.elem_bytes
            continue
        bases = np.asarray(
            [space.array(private_copy_name(spec.name, p)).base for p in range(num)],
            dtype=np.int64,
        )
        eb = spec.elem_bytes
        if spec.protocol is ProtocolKind.PRIV:
            addrs[mask] = bases[ext.procs[mask]] + elems * eb
            continue
        # PRIV_SIMPLE: writes go private; reads go private iff the same
        # processor wrote the element at an earlier row (row positions
        # are per-processor program order).
        rows_idx = all_rows[mask]
        w = ext.writes[mask]
        key = ext.procs[mask] * spec.length + elems
        first_w = np.full(num * spec.length, n + 1, dtype=np.int64)
        np.minimum.at(first_w, key[w], rows_idx[w])
        private = w | (rows_idx > first_w[key])
        shared = space.array(spec.name)
        addrs[mask] = np.where(
            private,
            bases[ext.procs[mask]] + elems * eb,
            shared.base + elems * eb,
        )
    return addrs


def _timing_and_stats(
    machine: Machine, params: MachineParams, ext: _Extraction, addrs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Memory-stall model of the quiescent phase, and the matching
    MemStats bookkeeping.

    Deterministic cold-cache approximation: the first touch of each
    (processor, line) pair misses — stalling the processor only when it
    is a read (writes retire through the write buffer) — and every
    later touch hits in the L1 (unit latency, no stall).  Returns
    ``(line_addrs, mem_per_proc_epoch, first_touch_mask)``.
    """
    lat = params.latency
    line_bytes = params.line_bytes
    lines = addrs - addrs % line_bytes
    n = len(lines)
    stats = machine.memsys.stats
    if n == 0:
        return lines, np.zeros((params.num_processors, ext.num_epochs)), (
            np.zeros(0, dtype=bool)
        )

    uniq, inverse = np.unique(lines, return_inverse=True)
    homes = np.asarray(
        [machine.space.home_node(int(a)) for a in uniq], dtype=np.int64
    )
    home_r = homes[inverse]
    key = ext.procs * len(uniq) + inverse
    _, first_idx = np.unique(key, return_index=True)
    first_touch = np.zeros(n, dtype=bool)
    first_touch[first_idx] = True

    nodes = np.asarray(
        [params.node_of_processor(p) for p in range(params.num_processors)],
        dtype=np.int64,
    )
    local = home_r == nodes[ext.procs]
    miss_stall = np.where(local, lat.local_mem, lat.remote_2hop) - 1
    stall = np.where(first_touch & ~ext.writes, miss_stall, 0).astype(np.float64)
    mem = np.zeros((params.num_processors, ext.num_epochs), dtype=np.float64)
    np.add.at(mem, (ext.procs, ext.epochs), stall)

    stats.reads += int((~ext.writes).sum())
    stats.writes += int(ext.writes.sum())
    local_misses = int((first_touch & local).sum())
    remote = int(first_touch.sum()) - local_misses
    stats.local_misses += local_misses
    stats.remote_2hop += remote
    stats.l1_hits += n - int(first_touch.sum())
    stats.read_stall_cycles += int(stall.sum())
    return lines, mem, first_touch


def _aggregate_streams(
    machine: Machine, ext: _Extraction, mem: np.ndarray
) -> Dict[int, Iterator[object]]:
    """One AggregateCostOp per processor per epoch segment, separated by
    the same barrier/epoch-sync ops the scalar epoch streams use."""
    num = machine.params.num_processors
    barriers = [machine.new_barrier() for _ in range(ext.num_epochs - 1)]

    def stream(proc: int) -> Iterator[object]:
        for epoch in range(ext.num_epochs):
            yield AggregateCostOp(ext.busy_segs[proc][epoch], float(mem[proc][epoch]))
            if epoch < ext.num_epochs - 1:
                yield BarrierOp(barriers[epoch])
                yield EpochSyncOp(epoch + 1)

    return {p: stream(p) for p in range(num)}


def _serial_cost_estimate(loop: Loop, params: MachineParams) -> float:
    """Analytic wall-cycle estimate of the §6.2 serial re-execution.

    Walks :func:`serial_stream` once in plain python instead of through
    the event engine, under the same deterministic cold-cache model the
    vector PASS path uses (first touch of each line misses, stalling
    only reads; all data local on the serial machine).  The vector
    tier's wall clock is outside the verdict contract, so the estimate
    replaces the dominant cost of a FAIL run — op-by-op serial
    re-simulation — with one linear pass.
    """
    cost = params.cost
    lat = params.latency
    lb = params.line_bytes
    eb = {spec.name: spec.elem_bytes for spec in loop.arrays}
    busy = 0.0
    stall = 0.0
    seen = set()
    for op in serial_stream(loop, cost):
        cls = type(op)
        if cls is AccessOp:
            busy += 1.0
            line = (op.array, (op.index * eb[op.array]) // lb)
            if line not in seen:
                seen.add(line)
                if op.is_read:
                    stall += lat.local_mem - 1
        elif cls is ComputeOp:
            busy += op.cycles
        elif cls is LocalOp:
            busy += 1.0
        elif cls is IterBeginOp:
            busy += op.overhead_cycles
    return busy + stall


def _close_run_spans(machine: Machine) -> None:
    """Close the run/tier spans ``_begin_run`` opened, for paths that
    abandon a machine without going through ``_finish_run``."""
    prof = obs_spans.current()
    handles = getattr(machine, "_prof_spans", None)
    if prof is not None and handles is not None:
        run_span, tier_span = handles
        prof.end(tier_span)
        prof.end(run_span)
        machine._prof_spans = None


def _fail_path(
    loop: Loop,
    params: MachineParams,
    config,
    serial_result,
    candidates: Dict[str, set],
):
    """Exact failure attribution for a kernel FAIL, without wholesale
    delegation.

    The localization kernels have already named the candidate failing
    elements per array.  One op-by-op batch attempt — the same
    backup + speculative-doall code path :func:`run_hw` uses, aborted
    at the first FAIL exactly like scalar — supplies the attribution
    (reason, element, iteration, processor, detection cycle), which
    must land in the candidate set; if it does not (or the attempt
    unexpectedly passes), the run falls back to wholesale delegation.
    The serial re-execution tail is costed analytically
    (:func:`_serial_cost_estimate`) instead of re-simulated, and the
    result is finished — provenance, telemetry, ledger — under the
    caller's vector configuration.
    """
    from .driver import (
        RunResult,
        _apply_hook,
        _begin_run,
        _finish_run,
        _hw_attempt,
        _hw_setup,
        _restore_streams,
        _run_phase,
    )

    machine = Machine(params, with_speculation=True, engine="batch")
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.HW, loop)
    assert machine.spec is not None
    has_priv = _hw_setup(machine, loop, params, config)

    phases: Dict[str, float] = {}
    breakdown = TimeBreakdown()
    prof = obs_spans.current()
    if prof is not None:
        with prof.span("vector.fail_replay", cat="vector"):
            failure, detection, assignment = _hw_attempt(
                machine, loop, params, config, has_priv, phases, breakdown
            )
    else:
        failure, detection, assignment = _hw_attempt(
            machine, loop, params, config, has_priv, phases, breakdown
        )

    agreed = (
        failure is not None
        and failure.element is not None
        and failure.element[1] in candidates.get(failure.element[0], ())
    )
    if not agreed:
        machine.spec.disarm()
        _close_run_spans(machine)
        return _delegate(
            loop, params, config, serial_result, reason="localize-disagree"
        )

    machine.spec.disarm()
    bus = machine.bus
    if bus is not None and bus.active:
        bus.emit(
            AbortEvent(machine.engine.now, failure.reason, detection_cycle=detection)
        )
    breakdown.add(
        _run_phase(machine, "restore", _restore_streams(machine, loop), phases)
    )
    if bus is not None and bus.active:
        bus.emit(RestoreEvent(machine.engine.now, phases.get("restore", 0.0)))
    if serial_result is not None:
        serial_wall = serial_result.wall
        breakdown.add(serial_result.breakdown)
    else:
        serial_wall = _serial_cost_estimate(loop, params)
    phases["serial-reexec"] = serial_wall

    result = RunResult(
        scenario=Scenario.HW,
        loop_name=loop.name,
        num_processors=params.num_processors,
        passed=False,
        wall=machine.engine.now + serial_wall,
        breakdown=breakdown,
        phases=phases,
        failure=failure,
        detection_cycle=detection,
        spec_messages=machine.spec.stats.messages,
        mem=machine.memsys.stats,
        assignment=assignment,
    )
    return _finish_run(machine, config, params, result, loop)


def _delegate(loop, params, config, serial_result, reason="unreproducible-cost-model"):
    """Re-run the whole case on the batch engine (observably identical
    to scalar), re-stamping provenance so the result still names the
    configuration the caller asked for.

    The inner run is given no ledger: it would archive under the batch
    config's content address, which the caller's future vector-keyed
    lookups can never hit.  Instead the finished result — with its
    vector provenance restored — is committed here under the caller's
    key, so a repeat of the same vector request is served from cache.
    """
    from .driver import _ambient_bus, run_hw

    prof = obs_spans.current()
    if prof is not None:
        prof.count("vector.delegations")
        handle = prof.begin("vector.delegate", cat="vector", reason=reason)
    t0 = time.perf_counter()
    batch = dataclasses.replace(config, engine="batch", ledger=None)
    try:
        result = run_hw(loop, params, batch, serial_result)
    finally:
        if prof is not None:
            prof.end(handle)
    result.provenance = run_provenance(
        params, config, scenario=Scenario.HW.value, loop_name=loop.name
    )
    if config.ledger is not None:
        from ..obs.ledger import as_ledger, ledger_key

        ledger = as_ledger(config.ledger)
        key = ledger_key(
            Scenario.HW, loop, params, config, provenance=result.provenance
        )
        _, deduped = ledger.record_result(
            result, key=key, host_wall_s=time.perf_counter() - t0, config=config
        )
        bus = _ambient_bus(config)
        if bus is not None and bus.active:
            bus.emit(
                LedgerWriteEvent(
                    0.0, key, "run", passed=result.passed, deduped=deduped
                )
            )
    return result


def run_hw_vector(
    loop: Loop,
    params: MachineParams,
    config=None,
    serial_result=None,
):
    """Hardware speculative parallelization on the vector tier."""
    from .driver import (
        RunConfig,
        RunResult,
        _apply_hook,
        _backup_streams,
        _begin_run,
        _finish_run,
        _hw_copy_out_indices,
        _hw_setup,
        _run_phase,
    )

    config = config or RunConfig()
    has_priv = any(
        spec.protocol is not ProtocolKind.NONPRIV
        for spec in loop.arrays_under_test()
    )
    cost = params.cost
    iter_overhead = cost.loop_iter_overhead + (
        cost.hw_iter_tag_clear_cycles if has_priv else 0
    )
    prof = obs_spans.current()
    replay_key, ext_key = _memo_keys(loop, params, config, iter_overhead)

    dyn_blocks = None
    dyn_assignment = None
    if replay_key is not None:  # dynamic self-scheduling
        replayed = _memo_get(_REPLAY_MEMO, replay_key, "vector.replay_memo_hits")
        if replayed is None:
            if prof is not None:
                with prof.span("vector.schedule_replay", cat="vector"):
                    replayed = replay_dynamic_assignment(
                        loop, params, config, iter_overhead
                    )
            else:
                replayed = replay_dynamic_assignment(
                    loop, params, config, iter_overhead
                )
            if replayed is None:
                # A cost-model feature the scratch replay cannot
                # reproduce exactly is enabled; only the op-by-op
                # engines know the emergent grab order.
                return _delegate(loop, params, config, serial_result,
                                 reason="dynamic-schedule")
            _memo_put(_REPLAY_MEMO, replay_key, replayed)
        dyn_blocks, dyn_assignment = replayed

    ext = _memo_get(_EXTRACT_MEMO, ext_key, "vector.extract_memo_hits")
    if ext is None:
        if prof is not None:
            with prof.span("vector.extract", cat="vector"):
                ext = _extract(loop, params, config, iter_overhead,
                               dynamic_blocks=dyn_blocks)
        else:
            ext = _extract(loop, params, config, iter_overhead,
                           dynamic_blocks=dyn_blocks)
        _memo_put(_EXTRACT_MEMO, ext_key, ext)
    if prof is not None:
        with prof.span("vector.kernels", cat="vector"):
            verdicts = _kernel_verdicts(loop, params, config, ext)
    else:
        verdicts = _kernel_verdicts(loop, params, config, ext)

    failing = {name: v for name, v in verdicts.items() if not v.passed}
    if failing:
        candidates = {
            name: {int(e) for e in v.fail_elems} for name, v in failing.items()
        }
        return _fail_path(loop, params, config, serial_result, candidates)

    machine = Machine(params, with_speculation=True, engine="vector")
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.HW, loop)
    assert machine.spec is not None
    _hw_setup(machine, loop, params, config)

    phases: Dict[str, float] = {}
    breakdown = TimeBreakdown()
    if loop.modified_arrays():
        breakdown.add(
            _run_phase(
                machine, "backup",
                _backup_streams(machine, loop, config.sparse_backup), phases,
            )
        )

    machine.spec.arm()
    addrs = _resolve_rows(machine, loop, params, ext)
    lines, mem, _ = _timing_and_stats(machine, params, ext, addrs)
    breakdown.add(
        _run_phase(
            machine, "loop", _aggregate_streams(machine, ext, mem), phases,
            abort_on_failure=True,
        )
    )
    if dyn_assignment is not None:
        # The replayed emergent grab order (cached copies are shared
        # across runs; hand each result its own lists).
        assignment = [list(a) for a in dyn_assignment]
    else:
        assignment = static_assignment(
            config.schedule, loop.num_iterations, params.num_processors
        )

    if prof is not None:
        with prof.span("vector.fill+commit", cat="vector"):
            _fill_tables(machine, loop, params, config, ext, verdicts)
            machine.memsys.bulk_loop_commit(ext.procs, lines, ext.writes)
    else:
        _fill_tables(machine, loop, params, config, ext, verdicts)
        machine.memsys.bulk_loop_commit(ext.procs, lines, ext.writes)
    machine.spec.disarm()

    # Copy-out of privatized live-out arrays, run op-by-op like scalar
    # (it is tiny compared to the loop).  Scalar runs it before
    # disarming, with writes redirected to the private copies by the
    # armed comparator; address choice only perturbs timing, which is
    # outside the vector tier's contract.
    copyout: Dict[int, Iterator[object]] = {}
    for spec in loop.arrays_under_test():
        if not (spec.privatized and spec.live_out):
            continue
        epl = params.elems_per_line(spec.elem_bytes)
        for proc in range(params.num_processors):
            indices = _hw_copy_out_indices(machine, spec.name, spec.protocol, proc)
            if not indices:
                continue
            ops = sparse_copy_ops(
                private_copy_name(spec.name, proc), spec.name, indices,
                epl, cost.copy_out_per_element,
            )
            copyout[proc] = chain(copyout[proc], ops) if proc in copyout else ops
    if copyout:
        breakdown.add(_run_phase(machine, "copy-out", copyout, phases))

    result = RunResult(
        scenario=Scenario.HW,
        loop_name=loop.name,
        num_processors=params.num_processors,
        passed=True,
        wall=machine.engine.now,
        breakdown=breakdown,
        phases=phases,
        spec_messages=machine.spec.stats.messages,
        mem=machine.memsys.stats,
        assignment=assignment,
    )
    return _finish_run(machine, config, params, result, loop)
