"""Whole-phase vectorized execution of the hardware scheme (``engine="vector"``).

The third execution tier.  Instead of simulating the quiescent loop
phase op by op (scalar) or in batched bursts (batch), the vector tier:

1. *extracts* the loop's access trace by walking the same per-processor
   op streams the other engines execute (:func:`loop_streams` — so
   scheduling, virtual numbering, time-stamp epochs and their
   ``SchedulingError`` cases are shared, not re-implemented) into flat
   numpy row arrays;
2. decides the speculation verdict with one whole-phase kernel per
   array under test (``MaxR1st > MinW`` masks, boolean reductions —
   see ``core/nonpriv.py`` and ``core/privatization.py``);
3. on PASS, replays the phase's *cost* through the simulation engine as
   one :class:`AggregateCostOp` per processor per epoch (with the real
   barrier/epoch-sync ops between segments), fills the directory-side
   access-bit tables with their end state, and installs the coherence
   end state with one argsort-based ``bulk_loop_commit``.

Contract (enforced by ``repro/testing/diffcheck.py`` in verdict mode
and ``tests/test_differential.py``): the vector tier is
**verdict/failure-attribution conformant** with the scalar engine —
same pass/fail, same failure reason/element/iteration/processor, same
detection cycle and iteration assignment.  It deliberately relaxes
internal trace ordering and timing (wall clock, per-phase times, memory
counters, directory end-state), which the full scalar-vs-batch
signature still pins.

Safety is by *delegation*, never by guessing: any case the kernels
cannot decide exactly like the scalar protocols — dynamic
self-scheduling (the verdict can depend on the emergent grab order) or
a kernel FAIL (exact attribution requires the op-by-op race replay) —
is re-run wholesale on the batch engine, which is observably identical
to scalar.  Kernel PASS implies scalar PASS (the kernels are
conservative), so a vector PASS is always decided by the kernels alone.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core.nonpriv import nonpriv_vector_verdict
from ..core.privatization import (
    priv_simple_vector_fill_tables,
    priv_simple_vector_verdict,
    priv_vector_fill_tables,
    priv_vector_verdict,
)
from ..core.accessbits import read_first_rows
from ..obs import spans as obs_spans
from ..obs.provenance import run_provenance
from ..params import MachineParams
from ..sim.machine import Machine
from ..sim.processor import (
    AggregateCostOp,
    BarrierOp,
    BusyCostOp,
    EpochSyncOp,
    IterBeginOp,
)
from ..sim.stats import TimeBreakdown
from ..trace.loop import Loop
from ..trace.ops import AccessOp, ComputeOp, LocalOp
from ..types import ProtocolKind, Scenario
from .executor import loop_streams, private_copy_name
from .phases import chain, sparse_copy_ops
from .schedule import SchedulePolicy, static_assignment


@dataclasses.dataclass
class _Extraction:
    """Flat access record of the whole loop phase.

    One row per shared-memory access, rows grouped by processor and in
    program order within each processor (the order every group-wise
    kernel requires).  ``raws`` are raw whole-loop virtual ordinals,
    ``effs`` the effective (epoch-relative) ordinals the scalar engine
    numbers iterations with, ``epochs`` the time-stamp epoch index.
    """

    procs: np.ndarray
    aids: np.ndarray
    elems: np.ndarray
    writes: np.ndarray
    raws: np.ndarray
    effs: np.ndarray
    epochs: np.ndarray
    #: busy cycles per processor per epoch segment (between barriers)
    busy_segs: List[List[float]]
    num_epochs: int

    def rows_of(self, aid: int) -> np.ndarray:
        return self.aids == aid


def _extract(
    loop: Loop, params: MachineParams, config, iter_overhead: int
) -> _Extraction:
    """Walk the real per-processor op streams and record every access.

    Uses the same :func:`loop_streams` the scalar/batch engines execute,
    so static planning, chunk virtualization and the §3.3 epoch
    partitioning (including its ``SchedulingError`` rejections) are
    byte-for-byte shared.
    """
    cost = params.cost
    num = params.num_processors
    streams = loop_streams(
        loop, config.schedule, num, cost,
        iter_overhead=iter_overhead,
        setup_cycles=cost.hw_loop_setup_cycles,
        timestamp_bits=config.timestamp_bits,
    )
    bits = config.timestamp_bits
    capacity = (2 ** bits - 1) if bits is not None else None
    aid_of = {spec.name: i for i, spec in enumerate(loop.arrays)}

    procs: List[int] = []
    aids: List[int] = []
    elems: List[int] = []
    writes: List[bool] = []
    raws: List[int] = []
    effs: List[int] = []
    epochs: List[int] = []
    busy_segs: List[List[float]] = []

    for proc in range(num):
        busy = 0.0
        segs: List[float] = []
        epoch = 0
        raw = eff = 0
        for op in streams[proc]:
            cls = type(op)
            if cls is AccessOp:
                procs.append(proc)
                aids.append(aid_of[op.array])
                elems.append(op.index)
                writes.append(not op.is_read)
                raws.append(raw)
                effs.append(eff)
                epochs.append(epoch)
                busy += 1.0
            elif cls is ComputeOp:
                busy += op.cycles
            elif cls is LocalOp:
                busy += 1.0
            elif cls is IterBeginOp:
                eff = op.virtual
                raw = epoch * capacity + eff if capacity is not None else eff
                busy += op.overhead_cycles
            elif cls is BusyCostOp:
                busy += op.cycles
            elif cls is BarrierOp:
                # Epoch boundary: close the current busy segment.  The
                # barrier/epoch-sync costs are charged by the real ops
                # the aggregate replay emits between segments.
                segs.append(busy)
                busy = 0.0
            elif cls is EpochSyncOp:
                epoch = op.epoch
            else:  # pragma: no cover - static streams emit nothing else
                raise TypeError(f"vector extraction: unknown op {op!r}")
        segs.append(busy)
        busy_segs.append(segs)

    num_epochs = max(len(s) for s in busy_segs) if busy_segs else 1
    for segs in busy_segs:
        segs.extend([0.0] * (num_epochs - len(segs)))
    return _Extraction(
        procs=np.asarray(procs, dtype=np.int64),
        aids=np.asarray(aids, dtype=np.int64),
        elems=np.asarray(elems, dtype=np.int64),
        writes=np.asarray(writes, dtype=bool),
        raws=np.asarray(raws, dtype=np.int64),
        effs=np.asarray(effs, dtype=np.int64),
        epochs=np.asarray(epochs, dtype=np.int64),
        busy_segs=busy_segs,
        num_epochs=num_epochs,
    )


@dataclasses.dataclass
class _ArrayVerdict:
    """Kernel outputs for one array under test, kept for the fills."""

    passed: bool
    rows: np.ndarray
    rf_rows: Optional[np.ndarray] = None
    #: non-privatization directory end state (PASS runs only)
    np_first: Optional[np.ndarray] = None
    np_priv: Optional[np.ndarray] = None
    np_ronly: Optional[np.ndarray] = None


def _meta_geometry(params: MachineParams, spec) -> Tuple[int, int]:
    """(elements per line, meta-table length) of the per-line-bit mode."""
    epl = max(1, params.line_bytes // spec.elem_bytes)
    return epl, -(-spec.length // epl)


def _kernel_verdicts(
    loop: Loop, params: MachineParams, config, ext: _Extraction
) -> "Optional[Dict[str, _ArrayVerdict]]":
    """Run the whole-phase verdict kernels; None means a kernel FAILed
    (or could not be decided exactly) and the run must delegate."""
    out: Dict[str, _ArrayVerdict] = {}
    aid_of = {spec.name: i for i, spec in enumerate(loop.arrays)}
    for spec in loop.arrays_under_test():
        rows = ext.rows_of(aid_of[spec.name])
        procs = ext.procs[rows]
        elems = ext.elems[rows]
        writes = ext.writes[rows]
        if spec.protocol is ProtocolKind.NONPRIV:
            if config.per_line_bits:
                epl, length = _meta_geometry(params, spec)
                elems = elems // epl
            else:
                length = spec.length
            passed, first, priv, ronly = nonpriv_vector_verdict(
                procs, elems, writes, length
            )
            verdict = _ArrayVerdict(
                passed, rows, np_first=first, np_priv=priv, np_ronly=ronly
            )
        elif spec.protocol is ProtocolKind.PRIV:
            rf = read_first_rows(procs, ext.raws[rows], elems, writes)
            passed = priv_vector_verdict(
                rf, ext.raws[rows], elems, writes, spec.length
            )
            verdict = _ArrayVerdict(passed, rows, rf_rows=rf)
        else:  # PRIV_SIMPLE
            rf = read_first_rows(procs, ext.raws[rows], elems, writes)
            passed = priv_simple_vector_verdict(rf, elems, writes, spec.length)
            verdict = _ArrayVerdict(passed, rows, rf_rows=rf)
        if not verdict.passed:
            return None
        out[spec.name] = verdict
    return out


def _fill_tables(
    machine: Machine, loop: Loop, params: MachineParams, config,
    ext: _Extraction, verdicts: Dict[str, _ArrayVerdict],
) -> None:
    """Write the directory-side access-bit end state of a passing run."""
    spec_engine = machine.spec
    assert spec_engine is not None
    num = params.num_processors
    for spec in loop.arrays_under_test():
        v = verdicts[spec.name]
        rows = v.rows
        procs = ext.procs[rows]
        elems = ext.elems[rows]
        writes = ext.writes[rows]
        if spec.protocol is ProtocolKind.NONPRIV:
            table = spec_engine.nonpriv.table(spec.name)
            table.first[:] = v.np_first
            table.priv[:] = v.np_priv
            table.ronly[:] = v.np_ronly
        elif spec.protocol is ProtocolKind.PRIV:
            priv_vector_fill_tables(
                spec_engine.priv.shared_table(spec.name),
                [spec_engine.priv.private_table(spec.name, p) for p in range(num)],
                procs, v.rf_rows, ext.raws[rows], elems, writes,
                ext.epochs[rows], ext.effs[rows],
            )
        else:
            priv_simple_vector_fill_tables(
                spec_engine.priv_simple.shared_table(spec.name),
                [
                    spec_engine.priv_simple.private_table(spec.name, p)
                    for p in range(num)
                ],
                procs, v.rf_rows, ext.effs[rows], elems, writes,
            )


def _resolve_rows(
    machine: Machine, loop: Loop, params: MachineParams, ext: _Extraction
) -> np.ndarray:
    """Physical address of every access row, exactly as the scalar
    engine's address-range comparator would have resolved it (shared,
    private copy, or — for PRIV_SIMPLE reads — private iff this
    processor wrote the element at an earlier access)."""
    space = machine.space
    n = len(ext.procs)
    addrs = np.zeros(n, dtype=np.int64)
    num = params.num_processors
    all_rows = np.arange(n, dtype=np.int64)
    for aid, spec in enumerate(loop.arrays):
        mask = ext.rows_of(aid)
        if not mask.any():
            continue
        elems = ext.elems[mask]
        if spec.protocol in (ProtocolKind.PLAIN, ProtocolKind.NONPRIV):
            decl = space.array(spec.name)
            addrs[mask] = decl.base + elems * decl.elem_bytes
            continue
        bases = np.asarray(
            [space.array(private_copy_name(spec.name, p)).base for p in range(num)],
            dtype=np.int64,
        )
        eb = spec.elem_bytes
        if spec.protocol is ProtocolKind.PRIV:
            addrs[mask] = bases[ext.procs[mask]] + elems * eb
            continue
        # PRIV_SIMPLE: writes go private; reads go private iff the same
        # processor wrote the element at an earlier row (row positions
        # are per-processor program order).
        rows_idx = all_rows[mask]
        w = ext.writes[mask]
        key = ext.procs[mask] * spec.length + elems
        first_w = np.full(num * spec.length, n + 1, dtype=np.int64)
        np.minimum.at(first_w, key[w], rows_idx[w])
        private = w | (rows_idx > first_w[key])
        shared = space.array(spec.name)
        addrs[mask] = np.where(
            private,
            bases[ext.procs[mask]] + elems * eb,
            shared.base + elems * eb,
        )
    return addrs


def _timing_and_stats(
    machine: Machine, params: MachineParams, ext: _Extraction, addrs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Memory-stall model of the quiescent phase, and the matching
    MemStats bookkeeping.

    Deterministic cold-cache approximation: the first touch of each
    (processor, line) pair misses — stalling the processor only when it
    is a read (writes retire through the write buffer) — and every
    later touch hits in the L1 (unit latency, no stall).  Returns
    ``(line_addrs, mem_per_proc_epoch, first_touch_mask)``.
    """
    lat = params.latency
    line_bytes = params.line_bytes
    lines = addrs - addrs % line_bytes
    n = len(lines)
    stats = machine.memsys.stats
    if n == 0:
        return lines, np.zeros((params.num_processors, ext.num_epochs)), (
            np.zeros(0, dtype=bool)
        )

    uniq, inverse = np.unique(lines, return_inverse=True)
    homes = np.asarray(
        [machine.space.home_node(int(a)) for a in uniq], dtype=np.int64
    )
    home_r = homes[inverse]
    key = ext.procs * len(uniq) + inverse
    _, first_idx = np.unique(key, return_index=True)
    first_touch = np.zeros(n, dtype=bool)
    first_touch[first_idx] = True

    nodes = np.asarray(
        [params.node_of_processor(p) for p in range(params.num_processors)],
        dtype=np.int64,
    )
    local = home_r == nodes[ext.procs]
    miss_stall = np.where(local, lat.local_mem, lat.remote_2hop) - 1
    stall = np.where(first_touch & ~ext.writes, miss_stall, 0).astype(np.float64)
    mem = np.zeros((params.num_processors, ext.num_epochs), dtype=np.float64)
    np.add.at(mem, (ext.procs, ext.epochs), stall)

    stats.reads += int((~ext.writes).sum())
    stats.writes += int(ext.writes.sum())
    local_misses = int((first_touch & local).sum())
    remote = int(first_touch.sum()) - local_misses
    stats.local_misses += local_misses
    stats.remote_2hop += remote
    stats.l1_hits += n - int(first_touch.sum())
    stats.read_stall_cycles += int(stall.sum())
    return lines, mem, first_touch


def _aggregate_streams(
    machine: Machine, ext: _Extraction, mem: np.ndarray
) -> Dict[int, Iterator[object]]:
    """One AggregateCostOp per processor per epoch segment, separated by
    the same barrier/epoch-sync ops the scalar epoch streams use."""
    num = machine.params.num_processors
    barriers = [machine.new_barrier() for _ in range(ext.num_epochs - 1)]

    def stream(proc: int) -> Iterator[object]:
        for epoch in range(ext.num_epochs):
            yield AggregateCostOp(ext.busy_segs[proc][epoch], float(mem[proc][epoch]))
            if epoch < ext.num_epochs - 1:
                yield BarrierOp(barriers[epoch])
                yield EpochSyncOp(epoch + 1)

    return {p: stream(p) for p in range(num)}


def _delegate(loop, params, config, serial_result, reason="dynamic-schedule"):
    """Re-run the whole case on the batch engine (observably identical
    to scalar), re-stamping provenance so the result still names the
    configuration the caller asked for."""
    from .driver import run_hw

    prof = obs_spans.current()
    if prof is not None:
        prof.count("vector.delegations")
        handle = prof.begin("vector.delegate", cat="vector", reason=reason)
    batch = dataclasses.replace(config, engine="batch")
    try:
        result = run_hw(loop, params, batch, serial_result)
    finally:
        if prof is not None:
            prof.end(handle)
    result.provenance = run_provenance(
        params, config, scenario=Scenario.HW.value, loop_name=loop.name
    )
    return result


def run_hw_vector(
    loop: Loop,
    params: MachineParams,
    config=None,
    serial_result=None,
):
    """Hardware speculative parallelization on the vector tier."""
    from .driver import (
        RunConfig,
        RunResult,
        _apply_hook,
        _backup_streams,
        _begin_run,
        _finish_run,
        _hw_copy_out_indices,
        _hw_setup,
        _run_phase,
    )

    config = config or RunConfig()
    if config.schedule.policy is SchedulePolicy.DYNAMIC:
        # The verdict can depend on the emergent grab order; only the
        # op-by-op engines know it.
        return _delegate(loop, params, config, serial_result,
                         reason="dynamic-schedule")

    has_priv = any(
        spec.protocol is not ProtocolKind.NONPRIV
        for spec in loop.arrays_under_test()
    )
    cost = params.cost
    iter_overhead = cost.loop_iter_overhead + (
        cost.hw_iter_tag_clear_cycles if has_priv else 0
    )
    prof = obs_spans.current()
    if prof is not None:
        with prof.span("vector.extract", cat="vector"):
            ext = _extract(loop, params, config, iter_overhead)
        with prof.span("vector.kernels", cat="vector"):
            verdicts = _kernel_verdicts(loop, params, config, ext)
    else:
        ext = _extract(loop, params, config, iter_overhead)
        verdicts = _kernel_verdicts(loop, params, config, ext)
    if verdicts is None:
        # Kernel FAIL: exact failure attribution (reason, element,
        # iteration, processor, detection cycle) requires the op-by-op
        # race replay.
        return _delegate(loop, params, config, serial_result,
                         reason="kernel-fail")

    machine = Machine(params, with_speculation=True, engine="vector")
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.HW, loop)
    assert machine.spec is not None
    _hw_setup(machine, loop, params, config)

    phases: Dict[str, float] = {}
    breakdown = TimeBreakdown()
    if loop.modified_arrays():
        breakdown.add(
            _run_phase(
                machine, "backup",
                _backup_streams(machine, loop, config.sparse_backup), phases,
            )
        )

    machine.spec.arm()
    addrs = _resolve_rows(machine, loop, params, ext)
    lines, mem, _ = _timing_and_stats(machine, params, ext, addrs)
    breakdown.add(
        _run_phase(
            machine, "loop", _aggregate_streams(machine, ext, mem), phases,
            abort_on_failure=True,
        )
    )
    assignment = static_assignment(
        config.schedule, loop.num_iterations, params.num_processors
    )

    if prof is not None:
        with prof.span("vector.fill+commit", cat="vector"):
            _fill_tables(machine, loop, params, config, ext, verdicts)
            machine.memsys.bulk_loop_commit(ext.procs, lines, ext.writes)
    else:
        _fill_tables(machine, loop, params, config, ext, verdicts)
        machine.memsys.bulk_loop_commit(ext.procs, lines, ext.writes)
    machine.spec.disarm()

    # Copy-out of privatized live-out arrays, run op-by-op like scalar
    # (it is tiny compared to the loop).  Scalar runs it before
    # disarming, with writes redirected to the private copies by the
    # armed comparator; address choice only perturbs timing, which is
    # outside the vector tier's contract.
    copyout: Dict[int, Iterator[object]] = {}
    for spec in loop.arrays_under_test():
        if not (spec.privatized and spec.live_out):
            continue
        epl = params.line_bytes // spec.elem_bytes
        for proc in range(params.num_processors):
            indices = _hw_copy_out_indices(machine, spec.name, spec.protocol, proc)
            if not indices:
                continue
            ops = sparse_copy_ops(
                private_copy_name(spec.name, proc), spec.name, indices,
                epl, cost.copy_out_per_element,
            )
            copyout[proc] = chain(copyout[proc], ops) if proc in copyout else ops
    if copyout:
        breakdown.add(_run_phase(machine, "copy-out", copyout, phases))

    result = RunResult(
        scenario=Scenario.HW,
        loop_name=loop.name,
        num_processors=params.num_processors,
        passed=True,
        wall=machine.engine.now,
        breakdown=breakdown,
        phases=phases,
        spec_messages=machine.spec.stats.messages,
        mem=machine.memsys.stats,
        assignment=assignment,
    )
    return _finish_run(machine, config, params, result, loop)
