"""Iteration scheduling policies (paper §2.2.3 and §4.1).

Three policies are modeled:

* **static chunking** — the iteration space is split into one chunk of
  contiguous iterations per processor.  Required by the processor-wise
  software test; may cause load imbalance (the paper's Track example).
* **block-cyclic** — contiguous blocks of ``chunk_iterations`` dealt to
  processors round-robin, statically.
* **dynamic self-scheduling** — processors grab the next block of
  ``chunk_iterations`` from a shared counter (simulated as a mutex-
  protected queue, so grab order follows simulated time).

Each assigned iteration also carries a *virtual* iteration number — the
number the speculation protocols see.  ``ITERATION`` numbering gives
the iteration-wise test; ``CHUNK`` numbering makes each block a
super-iteration (§4.1's block scheduling optimization); ``PROCESSOR``
numbering (static chunking only) gives the processor-wise test.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional, Tuple

from ..errors import SchedulingError


class SchedulePolicy(enum.Enum):
    STATIC_CHUNK = "static-chunk"
    BLOCK_CYCLIC = "block-cyclic"
    DYNAMIC = "dynamic"


class VirtualMode(enum.Enum):
    """How iterations are numbered for the dependence test."""

    ITERATION = "iteration"
    CHUNK = "chunk"
    PROCESSOR = "processor"


@dataclasses.dataclass(frozen=True)
class ScheduleSpec:
    """A scheduling policy plus its parameters."""

    policy: SchedulePolicy = SchedulePolicy.DYNAMIC
    chunk_iterations: int = 4
    virtual_mode: VirtualMode = VirtualMode.CHUNK

    def __post_init__(self) -> None:
        if self.chunk_iterations < 1:
            raise SchedulingError("chunk_iterations must be >= 1")
        if (
            self.virtual_mode is VirtualMode.PROCESSOR
            and self.policy is not SchedulePolicy.STATIC_CHUNK
        ):
            raise SchedulingError(
                "processor-wise numbering requires static chunk scheduling "
                "(paper §2.2.3)"
            )


@dataclasses.dataclass(frozen=True)
class Block:
    """A contiguous block of iterations (1-based, inclusive)."""

    first: int
    last: int
    ordinal: int  # 1-based block number in iteration order

    def iterations(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def __len__(self) -> int:
        return self.last - self.first + 1


def static_chunks(num_iterations: int, num_procs: int) -> List[Block]:
    """One contiguous chunk per processor (earlier chunks get the
    remainder), in processor order."""
    base = num_iterations // num_procs
    rem = num_iterations % num_procs
    blocks: List[Block] = []
    start = 1
    for p in range(num_procs):
        size = base + (1 if p < rem else 0)
        if size == 0:
            continue
        blocks.append(Block(start, start + size - 1, p + 1))
        start += size
    return blocks


def cyclic_blocks(num_iterations: int, chunk: int) -> List[Block]:
    blocks: List[Block] = []
    ordinal = 1
    start = 1
    while start <= num_iterations:
        end = min(start + chunk - 1, num_iterations)
        blocks.append(Block(start, end, ordinal))
        ordinal += 1
        start = end + 1
    return blocks


class ChunkQueue:
    """Shared work queue for dynamic self-scheduling.

    ``pop`` is called by a processor's op generator right after it
    acquired the scheduler mutex, so pops happen in simulated-time
    order and the block-to-processor mapping emerges from the timing —
    exactly how a fetch&add self-scheduled loop behaves.
    """

    def __init__(self, blocks: List[Block]) -> None:
        self._blocks = list(blocks)
        self._next = 0
        self.grab_log: List[Tuple[int, int]] = []  # (ordinal, proc)

    def pop(self, proc: int) -> Optional[Block]:
        if self._next >= len(self._blocks):
            return None
        block = self._blocks[self._next]
        self._next += 1
        self.grab_log.append((block.ordinal, proc))
        return block

    @property
    def remaining(self) -> int:
        return len(self._blocks) - self._next

    def assignment(self, num_procs: int) -> List[List[int]]:
        """The realized per-processor iteration lists (1-based, in grab
        order) — the ground truth any value-level commit must replay."""
        by_ordinal = {b.ordinal: b for b in self._blocks}
        per_proc: List[List[int]] = [[] for _ in range(num_procs)]
        for ordinal, proc in self.grab_log:
            per_proc[proc].extend(by_ordinal[ordinal].iterations())
        return per_proc

    def per_proc_blocks(self, num_procs: int) -> List[List[Block]]:
        """The realized per-processor block lists, in grab order."""
        by_ordinal = {b.ordinal: b for b in self._blocks}
        per_proc: List[List[Block]] = [[] for _ in range(num_procs)]
        for ordinal, proc in self.grab_log:
            per_proc[proc].append(by_ordinal[ordinal])
        return per_proc


def virtual_of(block: Block, iteration: int, mode: VirtualMode, proc: int) -> int:
    """The virtual iteration number the dependence test sees."""
    if mode is VirtualMode.ITERATION:
        return iteration
    if mode is VirtualMode.CHUNK:
        return block.ordinal
    return proc + 1


def plan_static(
    spec: ScheduleSpec, num_iterations: int, num_procs: int
) -> List[List[Block]]:
    """Per-processor block lists for the static policies."""
    if spec.policy is SchedulePolicy.STATIC_CHUNK:
        per_proc: List[List[Block]] = [[] for _ in range(num_procs)]
        for p, block in enumerate(static_chunks(num_iterations, num_procs)):
            per_proc[p] = [block]
        return per_proc
    if spec.policy is SchedulePolicy.BLOCK_CYCLIC:
        per_proc = [[] for _ in range(num_procs)]
        for i, block in enumerate(cyclic_blocks(num_iterations, spec.chunk_iterations)):
            per_proc[i % num_procs].append(block)
        return per_proc
    raise SchedulingError(f"{spec.policy} is not a static policy")


def static_assignment(
    spec: ScheduleSpec, num_iterations: int, num_procs: int
) -> List[List[int]]:
    """Per-processor iteration lists (1-based) for the static policies."""
    return [
        [it for block in blocks for it in block.iterations()]
        for blocks in plan_static(spec, num_iterations, num_procs)
    ]


# ----------------------------------------------------------------------
# Dynamic-schedule assignment replay (the vector tier's fast path)
# ----------------------------------------------------------------------
class _ReplayController:
    """Always-armed, never-failed controller stand-in: the replay only
    resolves addresses, it never runs the dependence test."""

    armed = True
    failed = False
    failure = None


class _ReplayResolver:
    """Duck-typed stand-in for the :class:`SpeculationEngine` on the
    replay scratch machine.

    Implements exactly the surface the batch-fast processor loop
    touches — ``controller``, ``static_address_map``, ``resolve`` and
    ``set_iteration`` — reproducing the armed comparator's address
    redirections (privatized accesses to per-processor copies,
    PRIV_SIMPLE reads routed private only after this processor wrote
    the element) without any protocol state or messages.
    """

    def __init__(self, space, loop, params) -> None:
        from ..types import ProtocolKind

        self.controller = _ReplayController()
        self._space = space
        self._priv: dict = {}
        self._priv_simple: dict = {}
        self._shared: dict = {}
        self._written: dict = {}
        num = params.num_processors
        for spec in loop.arrays_under_test():
            if spec.protocol is ProtocolKind.NONPRIV:
                continue
            from .executor import private_copy_name

            privs = [
                space.array(private_copy_name(spec.name, p)) for p in range(num)
            ]
            self._shared[spec.name] = space.array(spec.name)
            if spec.protocol is ProtocolKind.PRIV_SIMPLE:
                self._priv_simple[spec.name] = privs
            else:
                self._priv[spec.name] = privs

    def static_address_map(self) -> dict:
        redirected = self._priv.keys() | self._priv_simple.keys()
        return {
            d.name: (d.base, d.elem_bytes, d.length)
            for d in self._space.decls()
            if d.name not in redirected
        }

    def resolve(self, proc: int, name: str, index: int, kind) -> int:
        from ..types import AccessKind

        privs = self._priv.get(name)
        if privs is not None:
            return privs[proc].addr_of(index)
        privs = self._priv_simple.get(name)
        if privs is not None:
            # The engine's resolve also consults the message-updated
            # write_any bits, but any element they mark was written
            # earlier by this same processor in program order — so the
            # synchronous written set alone decides identically.
            written = self._written.setdefault((name, proc), set())
            if kind is AccessKind.WRITE:
                written.add(index)
                return privs[proc].addr_of(index)
            if index in written:
                return privs[proc].addr_of(index)
            return self._shared[name].addr_of(index)
        return self._space.array(name).addr_of(index)

    def set_iteration(self, proc: int, virtual_iteration: int) -> None:
        pass


def _make_replay_priv_hooks(space, priv_specs, params):
    """Memory-system hooks mirroring the full-privatization protocol's
    only timing contribution: the blocking read-in of Figs 8-(e)/9-(j).

    The real protocol charges a read-in on a private-directory access to
    an untouched line.  "Untouched" is decided by the private table's
    ``pmax`` stamps, which are set synchronously on directory accesses
    and at ``local_msg_delay`` after tag-side cache hits — so the mirror
    tracks, per element, the *earliest effective time* either stamp gets
    set and compares it against the access time.  Recording a hit whose
    real signal was suppressed (tag bits already set) is harmless: the
    suppression implies an earlier stamp already holds an effective time
    at or before it.
    """
    from ..memsys.system import SpeculationHooks
    from ..params import elems_per_line
    from ..types import AccessKind
    from .executor import private_copy_name

    class _ReplayPrivHooks(SpeculationHooks):
        def __init__(self) -> None:
            self._delay = max(1, params.latency.local_mem // 4)
            self._ranges: list = []
            inf = float("inf")
            for spec in priv_specs:
                shared = space.array(spec.name)
                for p in range(params.num_processors):
                    decl = space.array(private_copy_name(spec.name, p))
                    self._ranges.append(
                        [
                            decl.base, decl.end, decl.elem_bytes, decl.length,
                            shared, p,
                            [inf] * decl.length,  # earliest read-first stamp
                            [inf] * decl.length,  # earliest write stamp
                        ]
                    )

        def _locate(self, addr: int):
            for rng in self._ranges:
                if rng[0] <= addr < rng[1]:
                    index = (addr - rng[0]) // rng[2]
                    if index < rng[3]:
                        return rng, index
            return None, 0

        def _read_in_latency(self, shared, index: int, proc: int) -> int:
            lat = params.latency
            home = space.home_node(shared.addr_of(index))
            if home == params.node_of_processor(proc):
                return lat.local_mem
            return lat.remote_2hop

        def _line_untouched(self, rng, line_addr: int, now: float) -> bool:
            base, _, eb, length = rng[0], rng[1], rng[2], rng[3]
            first = max(0, (line_addr - base) // eb)
            span = elems_per_line(params.line_bytes, eb)
            count = max(0, min(span, length - first))
            r_eff, w_eff = rng[6], rng[7]
            for k in range(first, first + count):
                if r_eff[k] <= now or w_eff[k] <= now:
                    return False
            return True

        def on_cache_hit(self, proc, line, addr, kind, now):
            rng, index = self._locate(addr)
            if rng is None:
                return
            eff = now + self._delay
            stamps = rng[6] if kind is AccessKind.READ else rng[7]
            if eff < stamps[index]:
                stamps[index] = eff

        def on_dir_access(self, proc, line_addr, addr, kind, now):
            rng, index = self._locate(addr)
            if rng is None:
                return 0
            extra = 0
            if kind is AccessKind.READ:
                if self._line_untouched(rng, line_addr, now):
                    extra = self._read_in_latency(rng[4], index, rng[5])
                if now < rng[6][index]:
                    rng[6][index] = now
            else:
                w_eff = rng[7]
                if w_eff[index] > now:  # first effective write
                    if self._line_untouched(rng, line_addr, now):
                        extra = self._read_in_latency(rng[4], index, rng[5])
                    w_eff[index] = now
            return extra

    return _ReplayPrivHooks()


def replay_dynamic_assignment(
    loop, params, config, iter_overhead: int
) -> Optional[Tuple[List[List[Block]], List[List[int]]]]:
    """Compute the emergent iteration→processor map of a dynamic
    self-scheduled HW run without running the speculation protocols.

    The dispatcher's grab order is fully determined by the cost model:
    a scratch batch machine executes the real op streams through the
    real mutex/queue, with a speculation stand-in that reproduces the
    armed comparator's address redirections and (for full-PRIV arrays)
    the protocol's read-in latencies.  Returns ``(per_proc_blocks,
    assignment)``, or ``None`` when a cost-model feature the replay
    cannot reproduce exactly is enabled (directory/L2 contention — the
    protocol's messages then perturb timing — or multi-way caches,
    whose LRU state messages also perturb; time-stamp epochs, which the
    op-by-op engines reject for dynamic schedules anyway), in which
    case the caller must delegate.
    """
    if config.schedule.policy is not SchedulePolicy.DYNAMIC:
        return None
    if config.timestamp_bits is not None:
        return None
    if params.contention.enabled:
        return None
    if params.l1.ways != 1 or params.l2.ways != 1:
        return None

    from ..sim.machine import Machine
    from ..types import ProtocolKind
    from .driver import _backup_streams, _hw_setup
    from .executor import loop_streams
    from ..sim.processor import Mutex

    scratch = Machine(params, with_speculation=False, engine="batch")
    _hw_setup(scratch, loop, params, config)
    if loop.modified_arrays():
        result = scratch.engine.run_phase(
            _backup_streams(scratch, loop, config.sparse_backup),
            start_time=scratch.engine.now,
        )
        scratch.engine.now = result.finish

    scratch.engine.spec = _ReplayResolver(scratch.space, loop, params)
    priv_specs = [
        s for s in loop.arrays_under_test() if s.protocol is ProtocolKind.PRIV
    ]
    if priv_specs:
        scratch.memsys.set_hooks(
            _make_replay_priv_hooks(scratch.space, priv_specs, params)
        )

    queue = ChunkQueue(
        cyclic_blocks(loop.num_iterations, config.schedule.chunk_iterations)
    )
    streams = loop_streams(
        loop, config.schedule, params.num_processors, params.cost,
        iter_overhead=iter_overhead,
        setup_cycles=params.cost.hw_loop_setup_cycles,
        mutex=Mutex(),
        queue=queue,
    )
    scratch.engine.run_phase(
        streams, start_time=scratch.engine.now, abort_on_failure=True
    )
    num = params.num_processors
    return queue.per_proc_blocks(num), queue.assignment(num)
