"""Iteration scheduling policies (paper §2.2.3 and §4.1).

Three policies are modeled:

* **static chunking** — the iteration space is split into one chunk of
  contiguous iterations per processor.  Required by the processor-wise
  software test; may cause load imbalance (the paper's Track example).
* **block-cyclic** — contiguous blocks of ``chunk_iterations`` dealt to
  processors round-robin, statically.
* **dynamic self-scheduling** — processors grab the next block of
  ``chunk_iterations`` from a shared counter (simulated as a mutex-
  protected queue, so grab order follows simulated time).

Each assigned iteration also carries a *virtual* iteration number — the
number the speculation protocols see.  ``ITERATION`` numbering gives
the iteration-wise test; ``CHUNK`` numbering makes each block a
super-iteration (§4.1's block scheduling optimization); ``PROCESSOR``
numbering (static chunking only) gives the processor-wise test.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional, Tuple

from ..errors import SchedulingError


class SchedulePolicy(enum.Enum):
    STATIC_CHUNK = "static-chunk"
    BLOCK_CYCLIC = "block-cyclic"
    DYNAMIC = "dynamic"


class VirtualMode(enum.Enum):
    """How iterations are numbered for the dependence test."""

    ITERATION = "iteration"
    CHUNK = "chunk"
    PROCESSOR = "processor"


@dataclasses.dataclass(frozen=True)
class ScheduleSpec:
    """A scheduling policy plus its parameters."""

    policy: SchedulePolicy = SchedulePolicy.DYNAMIC
    chunk_iterations: int = 4
    virtual_mode: VirtualMode = VirtualMode.CHUNK

    def __post_init__(self) -> None:
        if self.chunk_iterations < 1:
            raise SchedulingError("chunk_iterations must be >= 1")
        if (
            self.virtual_mode is VirtualMode.PROCESSOR
            and self.policy is not SchedulePolicy.STATIC_CHUNK
        ):
            raise SchedulingError(
                "processor-wise numbering requires static chunk scheduling "
                "(paper §2.2.3)"
            )


@dataclasses.dataclass(frozen=True)
class Block:
    """A contiguous block of iterations (1-based, inclusive)."""

    first: int
    last: int
    ordinal: int  # 1-based block number in iteration order

    def iterations(self) -> Iterator[int]:
        return iter(range(self.first, self.last + 1))

    def __len__(self) -> int:
        return self.last - self.first + 1


def static_chunks(num_iterations: int, num_procs: int) -> List[Block]:
    """One contiguous chunk per processor (earlier chunks get the
    remainder), in processor order."""
    base = num_iterations // num_procs
    rem = num_iterations % num_procs
    blocks: List[Block] = []
    start = 1
    for p in range(num_procs):
        size = base + (1 if p < rem else 0)
        if size == 0:
            continue
        blocks.append(Block(start, start + size - 1, p + 1))
        start += size
    return blocks


def cyclic_blocks(num_iterations: int, chunk: int) -> List[Block]:
    blocks: List[Block] = []
    ordinal = 1
    start = 1
    while start <= num_iterations:
        end = min(start + chunk - 1, num_iterations)
        blocks.append(Block(start, end, ordinal))
        ordinal += 1
        start = end + 1
    return blocks


class ChunkQueue:
    """Shared work queue for dynamic self-scheduling.

    ``pop`` is called by a processor's op generator right after it
    acquired the scheduler mutex, so pops happen in simulated-time
    order and the block-to-processor mapping emerges from the timing —
    exactly how a fetch&add self-scheduled loop behaves.
    """

    def __init__(self, blocks: List[Block]) -> None:
        self._blocks = list(blocks)
        self._next = 0
        self.grab_log: List[Tuple[int, int]] = []  # (ordinal, proc)

    def pop(self, proc: int) -> Optional[Block]:
        if self._next >= len(self._blocks):
            return None
        block = self._blocks[self._next]
        self._next += 1
        self.grab_log.append((block.ordinal, proc))
        return block

    @property
    def remaining(self) -> int:
        return len(self._blocks) - self._next

    def assignment(self, num_procs: int) -> List[List[int]]:
        """The realized per-processor iteration lists (1-based, in grab
        order) — the ground truth any value-level commit must replay."""
        by_ordinal = {b.ordinal: b for b in self._blocks}
        per_proc: List[List[int]] = [[] for _ in range(num_procs)]
        for ordinal, proc in self.grab_log:
            per_proc[proc].extend(by_ordinal[ordinal].iterations())
        return per_proc


def virtual_of(block: Block, iteration: int, mode: VirtualMode, proc: int) -> int:
    """The virtual iteration number the dependence test sees."""
    if mode is VirtualMode.ITERATION:
        return iteration
    if mode is VirtualMode.CHUNK:
        return block.ordinal
    return proc + 1


def plan_static(
    spec: ScheduleSpec, num_iterations: int, num_procs: int
) -> List[List[Block]]:
    """Per-processor block lists for the static policies."""
    if spec.policy is SchedulePolicy.STATIC_CHUNK:
        per_proc: List[List[Block]] = [[] for _ in range(num_procs)]
        for p, block in enumerate(static_chunks(num_iterations, num_procs)):
            per_proc[p] = [block]
        return per_proc
    if spec.policy is SchedulePolicy.BLOCK_CYCLIC:
        per_proc = [[] for _ in range(num_procs)]
        for i, block in enumerate(cyclic_blocks(num_iterations, spec.chunk_iterations)):
            per_proc[i % num_procs].append(block)
        return per_proc
    raise SchedulingError(f"{spec.policy} is not a static policy")


def static_assignment(
    spec: ScheduleSpec, num_iterations: int, num_procs: int
) -> List[List[int]]:
    """Per-processor iteration lists (1-based) for the static policies."""
    return [
        [it for block in blocks for it in block.iterations()]
        for blocks in plan_static(spec, num_iterations, num_procs)
    ]
