"""Scenario drivers: Serial, Ideal, SW (LRPD) and HW (this paper).

Each ``run_*`` function simulates one complete execution of one loop
under one scenario and returns a :class:`RunResult` with the wall time,
the Busy/Sync/Mem breakdown (Figure 12), per-phase times, and the test
outcome.  The failure path follows the paper's accounting (§6.2): the
execution time of a failed speculation is the parallel execution up to
detection (including backup), plus the restore, plus the Serial time.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from ..errors import ConfigurationError, SpeculationFailure
from ..lrpd.analysis import LRPDOutcome, analyze
from ..lrpd.shadow import LRPDState
from ..memsys.system import MemStats
from ..obs.events import (
    AbortEvent,
    LedgerHitEvent,
    LedgerWriteEvent,
    PhaseBeginEvent,
    PhaseEndEvent,
    RestoreEvent,
    RunEndEvent,
    RunStartEvent,
)
from ..obs import spans
from ..obs.provenance import RunProvenance, run_provenance
from ..params import MachineParams
from ..sim.machine import Machine
from ..sim.processor import Mutex
from ..sim.stats import TimeBreakdown
from ..trace.loop import Loop
from ..types import ProtocolKind, Scenario
from .executor import (
    SWInstrumenter,
    global_shadow_name,
    loop_streams,
    private_copy_name,
    serial_stream,
    shadow_name,
)
from .phases import (
    chain,
    copy_ops,
    merge_analysis_ops,
    segment_of,
    sparse_copy_ops,
    zero_ops,
)
from .schedule import (
    ChunkQueue,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    cyclic_blocks,
    static_assignment,
)


@dataclasses.dataclass(frozen=True)
class RunConfig:
    """Knobs shared by the parallel scenarios."""

    schedule: ScheduleSpec = dataclasses.field(default_factory=ScheduleSpec)
    #: simulation engine: ``"scalar"`` executes one event per shared
    #: access with per-word tag objects; ``"batch"`` uses whole-line tag
    #: blocks and keeps processors executing inline while no other
    #: pending event could legally run first — observably equivalent to
    #: scalar (verdicts, timing, directory end-state), enforced by the
    #: differential conformance suite (tests/test_differential.py).
    #: ``"vector"`` (HW scenario) rebuilds the quiescent fast path as
    #: whole-phase numpy kernels (runtime/vector.py): verdict and
    #: failure-attribution conformant with scalar, but free to relax
    #: internal trace ordering and timing.  Static schedules are decided
    #: natively (PASS and FAIL — failing runs are localized and replayed
    #: on a batch machine for exact attribution); deterministic dynamic
    #: schedules are replayed on a scratch machine to recover the
    #: emergent assignment; only cost-model features the replay cannot
    #: reproduce (contention, multi-way caches, epoched time stamps)
    #: delegate the whole run to the batch engine.  Pinned by
    #: ``repro.testing.diffcheck`` in its ``verdict`` signature mode.
    engine: str = "scalar"
    #: dense backup copies whole arrays; sparse backs up only the lines
    #: that the loop will write (hash-table saves of §2.2.1).
    sparse_backup: bool = False
    #: software scheme: maintain the extra ``Awmin`` shadow array so the
    #: LRPD test also accepts loops needing read-in/copy-out (§2.2.3).
    sw_read_in: bool = False
    #: hardware scheme: width of the privatization time stamps.  When
    #: the chunk-numbered virtual iteration would overflow, processors
    #: synchronize and the effective numbering resets (§3.3).  ``None``
    #: models unbounded stamps (no synchronization ever needed).
    timestamp_bits: Optional[int] = None
    #: hardware scheme: keep one set of access bits per cache line
    #: instead of per word — the space saving §4.1 rejects because
    #: false sharing then fails the test spuriously (ablation knob).
    per_line_bits: bool = False
    #: called with the freshly built Machine before the run starts —
    #: the hook point for attaching traces/logs (repro.analysis).
    machine_hook: Optional[Callable[[Machine], None]] = None
    #: telemetry sink attached to the machine before the run: anything
    #: with an ``attach(machine)`` method, typically ``repro.obs.Telemetry``
    #: or a bare ``repro.obs.EventBus``.
    telemetry: Optional[object] = None
    #: online invariant monitors armed for the run: anything with an
    #: ``attach(machine)`` method, typically ``repro.obs.MonitorSuite``.
    #: Monitors subscribe to the machine's event bus (sharing the
    #: telemetry bus when one is attached) and, via ``finalize``, stamp
    #: their violations — and on failures a forensic report — into the
    #: RunResult.  ``None`` (the default) keeps the zero-overhead null
    #: path: no bus, no event construction.
    monitors: Optional[object] = None
    #: provenance-keyed run archive: a ``repro.obs.RunLedger`` (or a
    #: directory path).  Every completed run is recorded — provenance,
    #: verdict, metrics, span rollup, host wall time — and a re-run
    #: whose content address matches an archived record is served
    #: bit-identically from the archive without re-simulating (skipped
    #: when ``monitors``/``machine_hook`` are set: those need a live
    #: machine).  Never enters the provenance hash; ``None`` (the
    #: default) keeps the zero-overhead null path — the ledger module
    #: is not even imported.
    ledger: Optional[object] = None


def _engine_of(config: "Optional[RunConfig]") -> str:
    engine = config.engine if config is not None else "scalar"
    if engine not in ("scalar", "batch", "vector"):
        raise ConfigurationError(
            f"unknown engine {engine!r}: use 'scalar', 'batch' or 'vector'"
        )
    return engine


def _apply_hook(config: "Optional[RunConfig]", machine: Machine) -> None:
    if config is not None and config.telemetry is not None:
        config.telemetry.attach(machine)
    else:
        # A profiling WorkerCapture installed around this task observes
        # the run only when no explicit telemetry claimed the machine's
        # bus — explicit telemetry always wins.
        capture = spans.capture_current()
        if capture is not None:
            capture.attach(machine)
    if config is not None and config.monitors is not None:
        config.monitors.attach(machine)
    if config is not None and config.machine_hook is not None:
        config.machine_hook(machine)
    if config is not None and config.ledger is not None:
        # Host-wall anchor for the ledger record; per-machine (not a
        # module global) so the vector tier's delegation re-entry keeps
        # each run's timing separate.
        machine._ledger_t0 = time.perf_counter()


@dataclasses.dataclass
class RunResult:
    """Outcome and timing of one simulated loop execution."""

    scenario: Scenario
    loop_name: str
    num_processors: int
    passed: bool
    wall: float
    breakdown: TimeBreakdown
    phases: "Dict[str, float]"
    failure: Optional[SpeculationFailure] = None
    #: simulated cycle (within the loop phase) at which the failure was
    #: detected; None for passing runs and for non-speculative scenarios
    detection_cycle: Optional[float] = None
    lrpd: Optional[LRPDOutcome] = None
    spec_messages: int = 0
    #: memory-system counters for the whole run (hits, misses, traffic)
    mem: Optional[MemStats] = None
    #: manifest identifying the exact configuration that produced this
    #: result (repro.obs.provenance); stamped by every scenario driver
    provenance: Optional[RunProvenance] = None
    #: metrics-registry snapshot, when the run had telemetry attached
    metrics: Optional[dict] = None
    #: realized iteration-to-processor assignment: ``assignment[p]`` is
    #: the 1-based iterations processor ``p`` executed, in execution
    #: order.  For dynamic self-scheduling this is the *emergent* grab
    #: order from the simulation — the ground truth a value-level commit
    #: must replay.  ``None`` for non-parallel scenarios.
    assignment: Optional[List[List[int]]] = None
    #: invariant violations collected by armed monitors
    #: (``repro.obs.monitor.InvariantViolation``); None when no monitors
    violations: Optional[list] = None
    #: abort root-cause report (``repro.obs.forensics.ForensicReport``),
    #: built when monitors were armed and the speculation failed
    forensics: Optional[object] = None

    @property
    def speedup_base(self) -> float:
        return self.wall


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _allocate_loop_arrays(machine: Machine, loop: Loop, local: bool) -> None:
    for spec in loop.arrays:
        machine.space.allocate(
            spec.name,
            spec.length,
            spec.elem_bytes,
            protocol=spec.protocol,
            home_policy="local" if local else "round_robin",
            local_node=0,
        )


def _backup_name(array: str) -> str:
    return f"{array}#bak"


def _run_phase(
    machine: Machine,
    name: str,
    streams: Dict[int, Iterator[object]],
    phases: Dict[str, float],
    abort_on_failure: bool = False,
) -> TimeBreakdown:
    engine = machine.engine
    start = engine.now
    bus = machine.bus
    if bus is not None and bus.active:
        bus.emit(PhaseBeginEvent(start, name))
    prof = spans.current()
    if prof is not None:
        events0 = engine.events_processed
        phase_span = prof.begin(
            f"phase:{name}", cat="phase", sample=True,
            phase=name, engine=machine.engine_mode,
        )
    result = engine.run_phase(streams, start_time=start, abort_on_failure=abort_on_failure)
    finish = result.finish
    participants = result.participants()
    # End-of-phase load imbalance is synchronization time.
    for i in participants:
        result.per_proc[i].sync += max(0.0, finish - result.finish_times[i])
    breakdown = TimeBreakdown.from_procs([result.per_proc[i] for i in participants])
    phases[name] = finish - start
    engine.now = finish
    if prof is not None:
        prof.end(
            phase_span,
            **{"engine.events": engine.events_processed - events0,
               "sim.cycles": finish - start},
        )
    if bus is not None and bus.active:
        bus.emit(PhaseEndEvent(finish, name, finish - start))
    return breakdown


def _backup_streams(
    machine: Machine, loop: Loop, sparse: bool
) -> Dict[int, Iterator[object]]:
    params = machine.params
    cost = params.cost
    num = params.num_processors
    streams: Dict[int, Iterator[object]] = {}
    arrays = loop.modified_arrays()
    for proc in range(num):
        pieces = []
        for spec in arrays:
            epl = params.elems_per_line(spec.elem_bytes)
            if sparse:
                written = sorted(loop.written_elements(spec.name))
                lo, hi = segment_of(len(written), proc, num)
                pieces.append(
                    sparse_copy_ops(
                        spec.name, _backup_name(spec.name), written[lo:hi],
                        epl, cost.backup_per_element,
                    )
                )
            else:
                lo, hi = segment_of(spec.length, proc, num)
                pieces.append(
                    copy_ops(
                        spec.name, _backup_name(spec.name), lo, hi,
                        epl, cost.backup_per_element,
                    )
                )
        streams[proc] = chain(*pieces)
    return streams


def _restore_streams(machine: Machine, loop: Loop) -> Dict[int, Iterator[object]]:
    params = machine.params
    cost = params.cost
    num = params.num_processors
    streams: Dict[int, Iterator[object]] = {}
    for proc in range(num):
        pieces = []
        for spec in loop.modified_arrays():
            epl = params.elems_per_line(spec.elem_bytes)
            lo, hi = segment_of(spec.length, proc, num)
            pieces.append(
                copy_ops(
                    _backup_name(spec.name), spec.name, lo, hi,
                    epl, cost.restore_per_element,
                )
            )
        streams[proc] = chain(*pieces)
    return streams


def _serial_params(params: MachineParams) -> MachineParams:
    return dataclasses.replace(params, num_processors=1, processors_per_node=1)


def _make_queue(schedule: ScheduleSpec, loop: Loop):
    """Work queue + mutex for dynamic self-scheduling, created here (not
    inside ``loop_streams``) so the realized block-to-processor grab log
    survives the run."""
    if schedule.policy is not SchedulePolicy.DYNAMIC:
        return None, None
    queue = ChunkQueue(cyclic_blocks(loop.num_iterations, schedule.chunk_iterations))
    return queue, Mutex()


def _realized_assignment(
    queue: Optional[ChunkQueue],
    schedule: ScheduleSpec,
    loop: Loop,
    num_procs: int,
) -> List[List[int]]:
    """Per-processor 1-based iteration lists actually executed: the
    emergent grab order for dynamic scheduling, the static plan
    otherwise."""
    if queue is not None:
        return queue.assignment(num_procs)
    return static_assignment(schedule, loop.num_iterations, num_procs)


def _append_failure_tail(
    machine: Machine,
    loop: Loop,
    phases: Dict[str, float],
    breakdown: TimeBreakdown,
    serial_result: Optional["RunResult"],
    params: MachineParams,
    reason: str = "speculation-failed",
    detection: Optional[float] = None,
) -> "TimeBreakdown":
    """Failure path: restore the arrays, then account the serial
    re-execution at the Serial scenario's cost (paper §6.2)."""
    bus = machine.bus
    if bus is not None and bus.active:
        bus.emit(AbortEvent(machine.engine.now, reason, detection_cycle=detection))
    restore_bd = _run_phase(machine, "restore", _restore_streams(machine, loop), phases)
    breakdown.add(restore_bd)
    if bus is not None and bus.active:
        bus.emit(RestoreEvent(machine.engine.now, phases.get("restore", 0.0)))
    if serial_result is None:
        serial_result = run_serial(loop, params)
    phases["serial-reexec"] = serial_result.wall
    breakdown.add(serial_result.breakdown)
    return breakdown


def _ambient_bus(config: "Optional[RunConfig]"):
    """Best event bus available before any machine exists: the config's
    telemetry bus, else the ambient pool-worker capture's bus."""
    telemetry = config.telemetry if config is not None else None
    bus = getattr(telemetry, "bus", None)
    if bus is None and telemetry is not None and hasattr(telemetry, "emit"):
        bus = telemetry  # a bare EventBus passed as telemetry
    if bus is None:
        capture = spans.capture_current()
        if capture is not None:
            bus = capture.bus
    return bus


def _ledger_serve(
    config: "Optional[RunConfig]",
    scenario: Scenario,
    loop: Loop,
    params: MachineParams,
) -> "Optional[RunResult]":
    """The cache-read path: an archived run with the same content
    address is returned bit-identically instead of re-simulating.

    Declines (returns None) when the ledger is disabled, when serving
    is turned off, when monitors or a machine hook are armed (both need
    a live machine the archive cannot provide), or on a plain miss.
    """
    if config is None or config.ledger is None:
        return None
    if config.monitors is not None or config.machine_hook is not None:
        return None
    from ..obs.ledger import as_ledger, ledger_key

    ledger = as_ledger(config.ledger)
    if not ledger.serve_hits:
        return None
    key = ledger_key(scenario, loop, params, config)
    result = ledger.serve(key)
    if result is None:
        return None
    bus = _ambient_bus(config)
    if bus is not None and bus.active:
        bus.emit(LedgerHitEvent(0.0, key, scenario.value, loop.name))
    return result


def _ledger_commit(
    machine: Machine,
    config: "RunConfig",
    params: MachineParams,
    result: "RunResult",
    loop: Optional[Loop],
    prof,
    handles,
) -> None:
    """Archive a completed run (the tail of ``_finish_run``)."""
    if loop is None:
        return
    from ..obs.ledger import as_ledger, ledger_key, span_rollup

    ledger = as_ledger(config.ledger)
    # The result's provenance was stamped moments ago for exactly this
    # (params, config, scenario) — reuse it rather than rehashing.
    key = ledger_key(result.scenario, loop, params, config,
                     provenance=result.provenance)
    t0 = getattr(machine, "_ledger_t0", None)
    host_wall = time.perf_counter() - t0 if t0 is not None else None
    rollup = None
    if prof is not None and handles is not None:
        rollup = span_rollup(prof.spans, handles[0]["sid"])
    _, deduped = ledger.record_result(
        result, key=key, host_wall_s=host_wall, rollup=rollup, config=config
    )
    bus = machine.bus
    if bus is not None and bus.active:
        bus.emit(
            LedgerWriteEvent(
                machine.engine.now, key, "run",
                passed=result.passed, deduped=deduped,
            )
        )


def _begin_run(machine: Machine, scenario: Scenario, loop: Loop) -> None:
    prof = spans.current()
    if prof is not None:
        # Hierarchy: run -> engine tier -> phase -> epoch.  The tier
        # span groups the phase spans under the engine that ran them;
        # _finish_run closes both (every driver exit goes through it).
        run_span = prof.begin(
            "run", cat="run", sample=True,
            scenario=scenario.value, loop=loop.name,
            engine=machine.engine_mode,
            procs=machine.params.num_processors,
        )
        tier_span = prof.begin(f"engine:{machine.engine_mode}", cat="tier")
        machine._prof_spans = (run_span, tier_span)
    bus = machine.bus
    if bus is not None and bus.active:
        bus.emit(
            RunStartEvent(
                machine.engine.now,
                scenario.value,
                loop.name,
                machine.params.num_processors,
            )
        )


def _finish_run(
    machine: Machine,
    config: "Optional[RunConfig]",
    params: MachineParams,
    result: "RunResult",
    loop: Optional[Loop] = None,
) -> "RunResult":
    """Stamp provenance/metrics into a result and close out telemetry."""
    result.provenance = run_provenance(
        params,
        config,
        scenario=result.scenario.value,
        loop_name=result.loop_name,
    )
    telemetry = config.telemetry if config is not None else None
    if telemetry is not None and hasattr(telemetry, "metrics_snapshot"):
        result.metrics = telemetry.metrics_snapshot()
    bus = machine.bus
    if bus is not None and bus.active:
        bus.emit(RunEndEvent(machine.engine.now, result.passed, result.wall))
    prof = spans.current()
    handles = getattr(machine, "_prof_spans", None)
    if prof is not None and handles is not None:
        run_span, tier_span = handles
        prof.end(tier_span)
        prof.end(run_span, **{"sim.wall_cycles": result.wall})
        machine._prof_spans = None
    monitors = config.monitors if config is not None else None
    if monitors is not None and hasattr(monitors, "finalize"):
        monitors.finalize(result, loop)
    # Archive last, after monitors stamped violations/forensics, so the
    # record holds the result exactly as the caller receives it.
    if config is not None and config.ledger is not None:
        _ledger_commit(machine, config, params, result, loop, prof, handles)
    return result


# ----------------------------------------------------------------------
# Serial
# ----------------------------------------------------------------------
def run_serial(
    loop: Loop, params: MachineParams, config: Optional[RunConfig] = None
) -> RunResult:
    """Uniprocessor execution with all data local (§6)."""
    served = _ledger_serve(config, Scenario.SERIAL, loop, params)
    if served is not None:
        return served
    machine = Machine(
        _serial_params(params), with_speculation=False, engine=_engine_of(config)
    )
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.SERIAL, loop)
    _allocate_loop_arrays(machine, loop, local=True)
    phases: Dict[str, float] = {}
    breakdown = _run_phase(
        machine, "loop", {0: serial_stream(loop, params.cost)}, phases
    )
    result = RunResult(
        scenario=Scenario.SERIAL,
        loop_name=loop.name,
        num_processors=1,
        passed=True,
        wall=machine.engine.now,
        breakdown=breakdown,
        phases=phases,
        mem=machine.memsys.stats,
    )
    return _finish_run(machine, config, params, result, loop)


# ----------------------------------------------------------------------
# Ideal
# ----------------------------------------------------------------------
def run_ideal(
    loop: Loop, params: MachineParams, config: Optional[RunConfig] = None
) -> RunResult:
    """Doall execution without any correctness tests (§6): scheduling
    overheads and load imbalance included, data distributed.

    Arrays the compiler would privatize are still privatized (that is
    part of making the loop a doall, not part of testing it): accesses
    to them are redirected to per-processor local copies.
    """
    config = config or RunConfig()
    served = _ledger_serve(config, Scenario.IDEAL, loop, params)
    if served is not None:
        return served
    machine = Machine(params, with_speculation=False, engine=_engine_of(config))
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.IDEAL, loop)
    _allocate_loop_arrays(machine, loop, local=False)
    privatized = {a.name for a in loop.arrays if a.privatized}
    for name in privatized:
        spec = loop.array(name)
        for proc in range(params.num_processors):
            machine.space.allocate(
                private_copy_name(name, proc), spec.length, spec.elem_bytes,
                home_policy="local", local_node=params.node_of_processor(proc),
            )

    def instrument(proc, op, virt):
        if op.array in privatized:
            yield type(op)(op.kind, private_copy_name(op.array, proc), op.index)
        else:
            yield op

    phases: Dict[str, float] = {}
    streams = loop_streams(
        loop, config.schedule, params.num_processors, params.cost,
        instrument=instrument if privatized else None,
    )
    breakdown = _run_phase(machine, "loop", streams, phases)
    result = RunResult(
        scenario=Scenario.IDEAL,
        loop_name=loop.name,
        num_processors=params.num_processors,
        passed=True,
        wall=machine.engine.now,
        breakdown=breakdown,
        phases=phases,
        mem=machine.memsys.stats,
    )
    return _finish_run(machine, config, params, result, loop)


# ----------------------------------------------------------------------
# HW — the paper's scheme
# ----------------------------------------------------------------------
def _hw_setup(
    machine: Machine, loop: Loop, params: MachineParams, config: RunConfig
) -> bool:
    """Allocate the loop's arrays (plus backups and per-processor
    private copies) and register everything under test with the
    speculation engine.  Shared by the op-by-op and vector tiers.
    Returns whether any privatization protocol is in play (it adds the
    per-iteration tag-clear overhead).

    On a speculation-less machine (the vector tier's dynamic-schedule
    replay scratch) the allocation order stays identical — so the
    address layout matches a real run exactly — and only the engine
    registration is skipped."""
    _allocate_loop_arrays(machine, loop, local=False)
    for spec in loop.modified_arrays():
        machine.space.allocate(
            _backup_name(spec.name), spec.length, spec.elem_bytes,
            home_policy="round_robin",
        )

    has_priv = False
    for spec in loop.arrays_under_test():
        decl = machine.space.array(spec.name)
        if spec.protocol is ProtocolKind.NONPRIV:
            if machine.spec is not None:
                machine.spec.register_nonpriv(
                    decl, per_line_bits=config.per_line_bits
                )
        else:
            has_priv = True
            privs = [
                machine.space.allocate(
                    private_copy_name(spec.name, p), spec.length, spec.elem_bytes,
                    protocol=spec.protocol,
                    home_policy="local",
                    local_node=params.node_of_processor(p),
                )
                for p in range(params.num_processors)
            ]
            if machine.spec is not None:
                machine.spec.register_priv(
                    decl, privs, simple=(spec.protocol is ProtocolKind.PRIV_SIMPLE)
                )
    return has_priv


def _hw_attempt(
    machine: Machine,
    loop: Loop,
    params: MachineParams,
    config: RunConfig,
    has_priv: bool,
    phases: Dict[str, float],
    breakdown: TimeBreakdown,
):
    """Backup + speculative doall on an already-set-up HW machine.

    Runs the checkpoint phase and the speculative loop phase (aborted on
    the first FAIL), commits the loop-end tag state and returns
    ``(failure, detection_cycle, assignment)``.  Shared by :func:`run_hw`
    and the vector tier's exact failure-attribution path."""
    assert machine.spec is not None
    # Phase 1: checkpoint the modifiable shared arrays (§2.2.1).
    if loop.modified_arrays():
        breakdown.add(
            _run_phase(
                machine, "backup",
                _backup_streams(machine, loop, config.sparse_backup), phases,
            )
        )

    # Phase 2: the speculative doall, aborted on the first FAIL.
    machine.spec.arm()
    cost = params.cost
    iter_overhead = cost.loop_iter_overhead + (
        cost.hw_iter_tag_clear_cycles if has_priv else 0
    )
    queue, mutex = (
        _make_queue(config.schedule, loop)
        if config.timestamp_bits is None
        else (None, None)
    )
    streams = loop_streams(
        loop, config.schedule, params.num_processors, cost,
        iter_overhead=iter_overhead,
        setup_cycles=cost.hw_loop_setup_cycles,
        mutex=mutex,
        queue=queue,
        timestamp_bits=config.timestamp_bits,
    )
    loop_start = machine.engine.now
    breakdown.add(
        _run_phase(machine, "loop", streams, phases, abort_on_failure=True)
    )
    assignment = _realized_assignment(
        queue, config.schedule, loop, params.num_processors
    )

    # Loop-end commit: dirty lines may hold tag state (writes, read-
    # firsts) the directories never saw; merge it before the verdict.
    machine.spec.commit(machine.engine.now)

    failure = machine.spec.controller.failure
    detection = None
    if failure is not None and failure.detected_at is not None:
        detection = failure.detected_at - loop_start
    return failure, detection, assignment


def run_hw(
    loop: Loop,
    params: MachineParams,
    config: Optional[RunConfig] = None,
    serial_result: Optional[RunResult] = None,
) -> RunResult:
    """Hardware speculative run-time parallelization (§3/§4)."""
    config = config or RunConfig()
    # Serve before the vector dispatch: the content address includes the
    # engine, so a vector-keyed hit short-circuits even the delegation
    # decision.
    served = _ledger_serve(config, Scenario.HW, loop, params)
    if served is not None:
        return served
    if _engine_of(config) == "vector":
        from .vector import run_hw_vector

        return run_hw_vector(loop, params, config, serial_result)
    machine = Machine(params, with_speculation=True, engine=_engine_of(config))
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.HW, loop)
    assert machine.spec is not None
    has_priv = _hw_setup(machine, loop, params, config)

    phases: Dict[str, float] = {}
    breakdown = TimeBreakdown()
    failure, detection, assignment = _hw_attempt(
        machine, loop, params, config, has_priv, phases, breakdown
    )
    cost = params.cost

    if failure is not None:
        machine.spec.disarm()
        breakdown = _append_failure_tail(
            machine, loop, phases, breakdown, serial_result, params,
            reason=failure.reason, detection=detection,
        )
        wall = machine.engine.now + phases.get("serial-reexec", 0.0)
        result = RunResult(
            scenario=Scenario.HW,
            loop_name=loop.name,
            num_processors=params.num_processors,
            passed=False,
            wall=wall,
            breakdown=breakdown,
            phases=phases,
            failure=failure,
            detection_cycle=detection,
            spec_messages=machine.spec.stats.messages,
            mem=machine.memsys.stats,
            assignment=assignment,
        )
        return _finish_run(machine, config, params, result, loop)

    # Phase 3: copy-out of privatized, live-out arrays (§2.2.3).
    copyout: Dict[int, Iterator[object]] = {}
    for spec in loop.arrays_under_test():
        if not (spec.privatized and spec.live_out):
            continue
        epl = params.elems_per_line(spec.elem_bytes)
        for proc in range(params.num_processors):
            indices = _hw_copy_out_indices(machine, spec.name, spec.protocol, proc)
            if not indices:
                continue
            ops = sparse_copy_ops(
                private_copy_name(spec.name, proc), spec.name, indices,
                epl, cost.copy_out_per_element,
            )
            copyout[proc] = chain(copyout[proc], ops) if proc in copyout else ops
    if copyout:
        breakdown.add(_run_phase(machine, "copy-out", copyout, phases))
    machine.spec.disarm()

    result = RunResult(
        scenario=Scenario.HW,
        loop_name=loop.name,
        num_processors=params.num_processors,
        passed=True,
        wall=machine.engine.now,
        breakdown=breakdown,
        phases=phases,
        spec_messages=machine.spec.stats.messages,
        mem=machine.memsys.stats,
        assignment=assignment,
    )
    return _finish_run(machine, config, params, result, loop)


def _hw_copy_out_indices(
    machine: Machine, name: str, protocol: ProtocolKind, proc: int
) -> List[int]:
    assert machine.spec is not None
    if protocol is ProtocolKind.PRIV:
        table = machine.spec.priv.shared_table(name)
        return np.nonzero(table.last_w_proc == proc)[0].tolist()
    # PRIV_SIMPLE has no last-writer time stamps: each processor
    # conservatively copies out everything it wrote.
    table = machine.spec.priv_simple.private_table(name, proc)
    return np.nonzero(table.write_any)[0].tolist()


# ----------------------------------------------------------------------
# SW — the software LRPD baseline
# ----------------------------------------------------------------------
def run_sw(
    loop: Loop,
    params: MachineParams,
    config: Optional[RunConfig] = None,
    serial_result: Optional[RunResult] = None,
) -> RunResult:
    """Software speculative run-time parallelization (§2)."""
    config = config or RunConfig()
    served = _ledger_serve(config, Scenario.SW, loop, params)
    if served is not None:
        return served
    processor_wise = config.schedule.virtual_mode is VirtualMode.PROCESSOR
    if processor_wise and config.schedule.policy is not SchedulePolicy.STATIC_CHUNK:
        raise ConfigurationError(
            "the processor-wise software test requires static chunk scheduling"
        )
    machine = Machine(params, with_speculation=False, engine=_engine_of(config))
    _apply_hook(config, machine)
    _begin_run(machine, Scenario.SW, loop)
    cost = params.cost
    num = params.num_processors
    _allocate_loop_arrays(machine, loop, local=False)
    for spec in loop.modified_arrays():
        machine.space.allocate(
            _backup_name(spec.name), spec.length, spec.elem_bytes,
            home_policy="round_robin",
        )

    # Shadow arrays: 2-byte time stamps per element (iteration-wise) or
    # 64-elements-per-word bitmaps (processor-wise); one private set per
    # processor in its local memory, plus global merged shadows.
    state = LRPDState(num, with_awmin=config.sw_read_in)
    shadow_kinds = ("Ar", "Aw", "Anp") + (("Awmin",) if config.sw_read_in else ())
    under_test = loop.arrays_under_test()
    if processor_wise:
        shadow_elem_bytes = 8
        shadow_len = lambda n: max(1, math.ceil(n / cost.sw_bitmap_word_elems))
    else:
        shadow_elem_bytes = 2
        shadow_len = lambda n: n
    for spec in under_test:
        state.register(spec.name, spec.length, spec.privatized)
        slen = shadow_len(spec.length)
        for kind in shadow_kinds:
            machine.space.allocate(
                global_shadow_name(spec.name, kind), slen, shadow_elem_bytes,
                home_policy="round_robin",
            )
            for proc in range(num):
                machine.space.allocate(
                    shadow_name(spec.name, kind, proc), slen, shadow_elem_bytes,
                    home_policy="local", local_node=params.node_of_processor(proc),
                )
        if spec.privatized:
            for proc in range(num):
                machine.space.allocate(
                    private_copy_name(spec.name, proc), spec.length,
                    spec.elem_bytes,
                    home_policy="local", local_node=params.node_of_processor(proc),
                )

    phases: Dict[str, float] = {}
    breakdown = TimeBreakdown()

    # Phase 1: zero the private shadows and back up modified arrays.
    setup: Dict[int, Iterator[object]] = {}
    backup = _backup_streams(machine, loop, config.sparse_backup)
    for proc in range(num):
        pieces = []
        for spec in under_test:
            slen = shadow_len(spec.length)
            epl = params.elems_per_line(shadow_elem_bytes)
            for kind in shadow_kinds:
                pieces.append(
                    zero_ops(
                        shadow_name(spec.name, kind, proc), 0, slen,
                        epl, cost.sw_zero_per_element,
                    )
                )
        pieces.append(backup[proc])
        setup[proc] = chain(*pieces)
    breakdown.add(_run_phase(machine, "setup", setup, phases))

    # Phase 2: the speculative doall with marking.
    instrument = SWInstrumenter(state, loop, cost, processor_wise=processor_wise)
    queue, mutex = _make_queue(config.schedule, loop)
    streams = loop_streams(
        loop, config.schedule, num, cost,
        instrument=instrument,
        iter_end_cycles=cost.sw_iter_end_instrs,
        mutex=mutex,
        queue=queue,
    )
    breakdown.add(_run_phase(machine, "loop", streams, phases))
    assignment = _realized_assignment(queue, config.schedule, loop, num)

    # Phase 3: merging + analysis.
    merge: Dict[int, Iterator[object]] = {}
    for proc in range(num):
        pieces = []
        for spec in under_test:
            slen = shadow_len(spec.length)
            epl = params.elems_per_line(shadow_elem_bytes)
            lo, hi = segment_of(slen, proc, num)
            privates = [
                shadow_name(spec.name, kind, p)
                for p in range(num)
                for kind in shadow_kinds
            ]
            globals_ = [
                global_shadow_name(spec.name, kind) for kind in shadow_kinds
            ]
            pieces.append(
                merge_analysis_ops(
                    privates, globals_, lo, hi, epl, cost.sw_analysis_per_element
                )
            )
        merge[proc] = chain(*pieces)
    breakdown.add(_run_phase(machine, "merge-analysis", merge, phases))

    outcome = analyze(state)
    if not outcome.passed:
        breakdown = _append_failure_tail(
            machine, loop, phases, breakdown, serial_result, params,
            reason="lrpd-test-failed",
        )
        result = RunResult(
            scenario=Scenario.SW,
            loop_name=loop.name,
            num_processors=num,
            passed=False,
            wall=machine.engine.now + phases.get("serial-reexec", 0.0),
            breakdown=breakdown,
            phases=phases,
            detection_cycle=None,  # only known after the loop completes
            lrpd=outcome,
            mem=machine.memsys.stats,
            assignment=assignment,
        )
        return _finish_run(machine, config, params, result, loop)

    # Phase 4: copy-out of privatized live-out arrays.
    copyout: Dict[int, Iterator[object]] = {}
    for spec in under_test:
        if not (spec.privatized and spec.live_out):
            continue
        epl = params.elems_per_line(spec.elem_bytes)
        for proc in range(num):
            shadow = state.shadow(spec.name, proc)
            indices = [i for i in range(spec.length) if shadow.ever_written(i)]
            if not indices:
                continue
            ops = sparse_copy_ops(
                private_copy_name(spec.name, proc), spec.name, indices,
                epl, cost.copy_out_per_element,
            )
            copyout[proc] = chain(copyout[proc], ops) if proc in copyout else ops
    if copyout:
        breakdown.add(_run_phase(machine, "copy-out", copyout, phases))

    result = RunResult(
        scenario=Scenario.SW,
        loop_name=loop.name,
        num_processors=num,
        passed=True,
        wall=machine.engine.now,
        breakdown=breakdown,
        phases=phases,
        lrpd=outcome,
        mem=machine.memsys.stats,
        assignment=assignment,
    )
    return _finish_run(machine, config, params, result, loop)


class LoopRunner:
    """Convenience wrapper running one loop under all four scenarios."""

    def __init__(
        self, params: MachineParams, config: Optional[RunConfig] = None
    ) -> None:
        self.params = params
        self.config = config or RunConfig()

    def run(self, loop: Loop, scenario: Scenario) -> RunResult:
        if scenario is Scenario.SERIAL:
            return run_serial(loop, self.params, self.config)
        if scenario is Scenario.IDEAL:
            return run_ideal(loop, self.params, self.config)
        if scenario is Scenario.HW:
            return run_hw(loop, self.params, self.config)
        return run_sw(loop, self.params, self.config)
