"""Loop and access-trace representation.

A loop is represented as a sequence of iterations, each iteration being
a list of abstract operations (:class:`ComputeOp`, :class:`AccessOp`,
:class:`LocalOp`) over declared arrays.  This mirrors how the paper's
execution-driven simulator consumed references from instrumented
binaries; here the workload generators in :mod:`repro.workloads` produce
the streams directly.
"""

from .ops import AccessOp, ComputeOp, LocalOp, Op, read, write, compute, local
from .loop import ArraySpec, Loop, LoopStats
from .oracle import DependenceOracle, DependenceReport, Parallelism

__all__ = [
    "AccessOp",
    "ComputeOp",
    "LocalOp",
    "Op",
    "read",
    "write",
    "compute",
    "local",
    "ArraySpec",
    "Loop",
    "LoopStats",
    "DependenceOracle",
    "DependenceReport",
    "Parallelism",
]
