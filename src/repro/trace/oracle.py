"""Ground-truth dependence analysis of a loop's access stream.

The oracle answers, exactly and non-speculatively, the questions the
run-time tests approximate:

* Is the loop a **doall** as written (no element is touched by more than
  one iteration unless it is read-only)?
* Is it a doall **after privatization** (LRPD criterion, §2.2.2: each
  element under test is read-only, or every read of it is preceded by a
  write in the same iteration)?
* Is it a doall after privatization **with read-in/copy-out**
  (§2.2.3: per element, every read-first iteration is no later than
  every writing iteration — equivalently ``maxR1st <= minW``)?
* The same three questions **processor-wise**, for a given assignment of
  iterations to processors (iterations mapped to "super-iterations").

Tests use the oracle to verify the protocols: a protocol may be
conservative (flag a parallel loop as serial) but must never pass a loop
whose parallel execution violates its own correctness criterion.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..types import AccessKind
from .loop import Loop
from .ops import AccessOp


class Parallelism(enum.Enum):
    """Summary classification of one loop (see :class:`DependenceReport`)."""

    DOALL = "doall"
    PRIVATIZABLE = "privatizable"
    PRIVATIZABLE_RICO = "privatizable-with-read-in-copy-out"
    NOT_PARALLEL = "not-parallel"


@dataclasses.dataclass(frozen=True)
class Dependence:
    """One concrete cross-iteration dependence, for reporting."""

    kind: str  # "flow", "anti", or "output"
    array: str
    element: int
    src_iteration: int
    dst_iteration: int


@dataclasses.dataclass
class ArrayFacts:
    """Per-element access facts for one array, gathered in one pass.

    Iteration numbers are 1-based.  ``read_first`` holds iterations where
    the element was read before any same-iteration write; ``read_uncov``
    holds iterations where it was read and *never* written in that
    iteration (the software test's ``Ar`` condition); ``writes`` holds
    all writing iterations.
    """

    writes: Dict[int, List[int]] = dataclasses.field(default_factory=dict)
    read_first: Dict[int, List[int]] = dataclasses.field(default_factory=dict)
    read_uncov: Dict[int, List[int]] = dataclasses.field(default_factory=dict)
    reads: Dict[int, List[int]] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ArrayVerdict:
    """Oracle verdict for one array under test."""

    name: str
    is_doall: bool
    is_privatizable: bool
    is_priv_rico: bool
    dependences: List[Dependence]

    @property
    def best(self) -> Parallelism:
        if self.is_doall:
            return Parallelism.DOALL
        if self.is_privatizable:
            return Parallelism.PRIVATIZABLE
        if self.is_priv_rico:
            return Parallelism.PRIVATIZABLE_RICO
        return Parallelism.NOT_PARALLEL


@dataclasses.dataclass
class DependenceReport:
    """Loop-level oracle verdict.

    A loop is parallel at a given level only if *every* array under test
    is parallel at that level (arrays the compiler fully analyzed are
    assumed dependence-free and are not inspected).
    """

    loop_name: str
    arrays: Dict[str, ArrayVerdict]

    @property
    def is_doall(self) -> bool:
        return all(v.is_doall for v in self.arrays.values())

    @property
    def is_privatizable(self) -> bool:
        """Doall if each array is left alone or privatized as declared."""
        return all(v.is_doall or v.is_privatizable for v in self.arrays.values())

    @property
    def is_priv_rico(self) -> bool:
        return all(
            v.is_doall or v.is_privatizable or v.is_priv_rico
            for v in self.arrays.values()
        )

    @property
    def classification(self) -> Parallelism:
        if self.is_doall:
            return Parallelism.DOALL
        if self.is_privatizable:
            return Parallelism.PRIVATIZABLE
        if self.is_priv_rico:
            return Parallelism.PRIVATIZABLE_RICO
        return Parallelism.NOT_PARALLEL

    def dependences(self) -> List[Dependence]:
        out: List[Dependence] = []
        for verdict in self.arrays.values():
            out.extend(verdict.dependences)
        return out


class DependenceOracle:
    """Exact dependence analyzer over a :class:`Loop`'s trace.

    Args:
        loop: the loop to analyze.
        iteration_map: optional mapping from 1-based iteration number to
            a "super-iteration" number.  Passing the identity yields the
            iteration-wise analysis; passing the processor assignment of
            a static chunked schedule yields the processor-wise analysis
            of paper §2.2.3.
        max_dependences: cap on dependences *enumerated* per array (the
            verdict itself is always exact).
    """

    def __init__(
        self,
        loop: Loop,
        iteration_map: Optional[Mapping[int, int]] = None,
        max_dependences: int = 16,
    ) -> None:
        self.loop = loop
        self.iteration_map = iteration_map
        self.max_dependences = max_dependences

    # ------------------------------------------------------------------
    def _mapped(self, iteration: int) -> int:
        if self.iteration_map is None:
            return iteration
        return self.iteration_map[iteration]

    def _gather(self) -> Dict[str, ArrayFacts]:
        under_test = {a.name for a in self.loop.arrays_under_test()}
        facts: Dict[str, ArrayFacts] = {name: ArrayFacts() for name in under_test}
        # Group consecutive real iterations mapping to the same virtual
        # iteration: under chunked or processor-wise numbering the whole
        # group is one "super-iteration" (§2.2.3), so a write in an
        # earlier real iteration covers a read in a later one.
        groups: List[Tuple[int, List[object]]] = []
        for it_no, ops in enumerate(self.loop.iterations, start=1):
            virt = self._mapped(it_no)
            if groups and groups[-1][0] == virt:
                groups[-1][1].extend(ops)
            else:
                groups.append((virt, list(ops)))
        for virt, ops in groups:
            # Per-(super-)iteration first-write tracking per element.
            written_before: Set[Tuple[str, int]] = set()
            read_seen: Dict[Tuple[str, int], bool] = {}
            for op in ops:
                if not isinstance(op, AccessOp) or op.array not in under_test:
                    continue
                key = (op.array, op.index)
                f = facts[op.array]
                if op.kind is AccessKind.WRITE:
                    written_before.add(key)
                    f.writes.setdefault(op.index, []).append(virt)
                else:
                    f.reads.setdefault(op.index, []).append(virt)
                    if key not in written_before:
                        f.read_first.setdefault(op.index, []).append(virt)
                    read_seen.setdefault(key, True)
            # Post-pass: reads never covered by any same-iteration write.
            for (arr, idx) in read_seen:
                if (arr, idx) not in written_before:
                    facts[arr].read_uncov.setdefault(idx, []).append(virt)
        # Deduplicate virtual iteration numbers while preserving order.
        for f in facts.values():
            for table in (f.writes, f.read_first, f.read_uncov, f.reads):
                for idx, its in table.items():
                    seen: Set[int] = set()
                    table[idx] = [i for i in its if not (i in seen or seen.add(i))]
        return facts

    # ------------------------------------------------------------------
    def analyze(self) -> DependenceReport:
        facts = self._gather()
        verdicts: Dict[str, ArrayVerdict] = {}
        for name, f in facts.items():
            verdicts[name] = self._verdict(name, f)
        return DependenceReport(loop_name=self.loop.name, arrays=verdicts)

    def _verdict(self, name: str, f: ArrayFacts) -> ArrayVerdict:
        is_doall = True
        is_priv = True
        is_rico = True
        deps: List[Dependence] = []

        elements = set(f.writes) | set(f.reads)
        for elem in elements:
            w = f.writes.get(elem, [])
            r = f.reads.get(elem, [])
            r_first = f.read_first.get(elem, [])
            r_uncov = f.read_uncov.get(elem, [])

            # --- doall: read-only, or all accesses in one iteration ----
            touched = set(w) | set(r)
            if w and len(touched) > 1:
                is_doall = False
                self._enumerate_deps(name, elem, w, r_uncov, deps)
            # --- privatizable (no read-in): every read preceded by a
            # same-iteration write, or element is read-only -------------
            if w and r_first:
                is_priv = False
            # --- privatizable with read-in/copy-out:
            # max read-first iteration <= min writing iteration ---------
            if w and r_first and max(r_first) > min(w):
                is_rico = False
        return ArrayVerdict(
            name=name,
            is_doall=is_doall,
            is_privatizable=is_priv,
            is_priv_rico=is_rico,
            dependences=deps,
        )

    def _enumerate_deps(
        self,
        array: str,
        elem: int,
        writes: Sequence[int],
        reads_uncov: Sequence[int],
        out: List[Dependence],
    ) -> None:
        """List a few concrete dependences for diagnostics."""
        if len(out) >= self.max_dependences:
            return
        wset = sorted(set(writes))
        # Output dependences: two different iterations writing.
        for a, b in zip(wset, wset[1:]):
            if a != b:
                out.append(Dependence("output", array, elem, a, b))
                break
        for rit in sorted(set(reads_uncov)):
            for wit in wset:
                if wit == rit:
                    continue
                kind = "flow" if wit < rit else "anti"
                out.append(Dependence(kind, array, elem, min(wit, rit), max(wit, rit)))
                if len(out) >= self.max_dependences:
                    return
                break


def lrpd_would_pass(report: DependenceReport, privatize: Mapping[str, bool]) -> bool:
    """Whether the software LRPD test (§2.2.2, no ``Awmin``) passes.

    For each array: pass requires no ``Aw & Ar`` overlap and either
    single-writer (``Atw == Atm``, i.e. doall) or, when the array was
    speculatively privatized, no ``Aw & Anp`` overlap (privatizable).
    """
    for name, verdict in report.arrays.items():
        if verdict.is_doall:
            continue
        if privatize.get(name, False) and verdict.is_privatizable:
            continue
        return False
    return True
