"""Abstract operations that make up a loop iteration.

Three kinds of operation exist:

* :class:`ComputeOp` — pure computation, costs a number of cycles and
  never touches the memory system.
* :class:`AccessOp` — a read or write of one element of a *declared
  array*; it flows through the simulated cache hierarchy and, for arrays
  under test, through the speculation protocols.
* :class:`LocalOp` — a read or write of iteration-private data (scalars,
  stack); it is modeled as a primary-cache hit and exists so workloads
  can carry a realistic ratio of marked to unmarked references.
"""

from __future__ import annotations

import dataclasses

from ..types import AccessKind


@dataclasses.dataclass(frozen=True)
class ComputeOp:
    """Pure computation worth ``cycles`` processor cycles."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("compute cycles must be non-negative")


@dataclasses.dataclass(frozen=True)
class AccessOp:
    """A read or write of ``array[index]``."""

    kind: AccessKind
    array: str
    index: int

    @property
    def is_read(self) -> bool:
        return self.kind is AccessKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


@dataclasses.dataclass(frozen=True)
class LocalOp:
    """An access to iteration-private memory (always an L1 hit)."""

    kind: AccessKind


Op = object  # union of ComputeOp | AccessOp | LocalOp; kept loose for speed


def read(array: str, index: int) -> AccessOp:
    """Shorthand constructor for a read access."""
    return AccessOp(AccessKind.READ, array, index)


def write(array: str, index: int) -> AccessOp:
    """Shorthand constructor for a write access."""
    return AccessOp(AccessKind.WRITE, array, index)


def compute(cycles: int) -> ComputeOp:
    """Shorthand constructor for pure computation."""
    return ComputeOp(cycles)


def local(kind: AccessKind = AccessKind.READ) -> LocalOp:
    """Shorthand constructor for a private-data access."""
    return LocalOp(kind)
