"""Loop representation: declared arrays plus an iteration stream."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError
from ..types import AccessKind, ProtocolKind
from .ops import AccessOp, ComputeOp, LocalOp


@dataclasses.dataclass(frozen=True)
class ArraySpec:
    """Declaration of one array a loop touches.

    Attributes:
        name: unique name within the loop.
        length: number of elements.
        elem_bytes: element size in bytes (4, 8 or 16 in the paper's
            workloads).
        protocol: dependence-test protocol for the hardware scheme, or
            ``PLAIN`` when the compiler fully analyzed the array.  For
            the software scheme, ``PRIV``/``PRIV_SIMPLE`` means the
            array is speculatively privatized, ``NONPRIV`` means it is
            tested without privatization.
        modified: whether the loop may write the array (only modified
            shared arrays need backup, §2.2.1).
        live_out: whether values written to a privatized array are used
            after the loop (requires copy-out, §2.2.3).
    """

    name: str
    length: int
    elem_bytes: int = 8
    protocol: ProtocolKind = ProtocolKind.PLAIN
    modified: bool = True
    live_out: bool = False

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ConfigurationError(f"array {self.name!r} needs length >= 1")
        if self.elem_bytes not in (1, 2, 4, 8, 16, 32):
            raise ConfigurationError(
                f"array {self.name!r}: unsupported element size {self.elem_bytes}"
            )

    @property
    def under_test(self) -> bool:
        return self.protocol is not ProtocolKind.PLAIN

    @property
    def privatized(self) -> bool:
        return self.protocol in (ProtocolKind.PRIV, ProtocolKind.PRIV_SIMPLE)


@dataclasses.dataclass
class LoopStats:
    """Static summary of one loop execution's access stream."""

    iterations: int = 0
    reads: int = 0
    writes: int = 0
    marked_reads: int = 0
    marked_writes: int = 0
    local_accesses: int = 0
    compute_cycles: int = 0
    footprint_bytes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def marked_fraction(self) -> float:
        total = self.accesses
        return (self.marked_reads + self.marked_writes) / total if total else 0.0


class Loop:
    """One loop execution: array declarations plus iterations of ops.

    Iterations are numbered from 1, matching the paper's time-stamp
    convention (``MinW`` is initialized above any real iteration and
    time stamps compare against iteration numbers, so 0 is reserved for
    "never").
    """

    def __init__(
        self,
        name: str,
        arrays: Sequence[ArraySpec],
        iterations: Sequence[Sequence[object]],
        iteration_weights: Optional[Sequence[int]] = None,
    ) -> None:
        if not iterations:
            raise ConfigurationError(f"loop {name!r} has no iterations")
        names = [a.name for a in arrays]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"loop {name!r} declares duplicate array names")
        self.name = name
        self.arrays: Tuple[ArraySpec, ...] = tuple(arrays)
        self.iterations: List[List[object]] = [list(it) for it in iterations]
        self._by_name: Dict[str, ArraySpec] = {a.name: a for a in self.arrays}
        self._validate()
        if iteration_weights is not None and len(iteration_weights) != len(
            self.iterations
        ):
            raise ConfigurationError("iteration_weights length mismatch")
        self.iteration_weights = (
            list(iteration_weights) if iteration_weights is not None else None
        )

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for it_no, ops in enumerate(self.iterations, start=1):
            for op in ops:
                if isinstance(op, AccessOp):
                    spec = self._by_name.get(op.array)
                    if spec is None:
                        raise ConfigurationError(
                            f"loop {self.name!r} iteration {it_no} touches "
                            f"undeclared array {op.array!r}"
                        )
                    if not 0 <= op.index < spec.length:
                        raise ConfigurationError(
                            f"loop {self.name!r}: {op.array}[{op.index}] out of "
                            f"bounds (length {spec.length})"
                        )
                    if op.is_write and not spec.modified:
                        raise ConfigurationError(
                            f"loop {self.name!r} writes read-only array {op.array!r}"
                        )
                elif not isinstance(op, (ComputeOp, LocalOp)):
                    raise ConfigurationError(
                        f"loop {self.name!r}: unknown op type {type(op).__name__}"
                    )

    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    def array(self, name: str) -> ArraySpec:
        return self._by_name[name]

    def arrays_under_test(self) -> List[ArraySpec]:
        return [a for a in self.arrays if a.under_test]

    def modified_arrays(self) -> List[ArraySpec]:
        """Arrays that need backup before speculation (§2.2.1).

        Read-only arrays never need saving.  Privatized arrays are
        written only through private copies during speculation, so the
        shared image stays intact and they need no backup either — the
        paper notes "read-only and privatized arrays need not be saved".
        """
        return [a for a in self.arrays if a.modified and not a.privatized]

    def written_elements(self, array: str) -> Set[int]:
        """All element indices of ``array`` written anywhere in the loop."""
        out: Set[int] = set()
        for ops in self.iterations:
            for op in ops:
                if isinstance(op, AccessOp) and op.is_write and op.array == array:
                    out.add(op.index)
        return out

    def stats(self) -> LoopStats:
        s = LoopStats(iterations=self.num_iterations)
        for ops in self.iterations:
            for op in ops:
                if isinstance(op, AccessOp):
                    marked = self._by_name[op.array].under_test
                    if op.is_read:
                        s.reads += 1
                        s.marked_reads += marked
                    else:
                        s.writes += 1
                        s.marked_writes += marked
                elif isinstance(op, ComputeOp):
                    s.compute_cycles += op.cycles
                elif isinstance(op, LocalOp):
                    s.local_accesses += 1
        s.footprint_bytes = sum(a.length * a.elem_bytes for a in self.arrays)
        return s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Loop({self.name!r}, iterations={self.num_iterations}, "
            f"arrays={[a.name for a in self.arrays]})"
        )
