"""Value-level speculative execution with detection and recovery.

:func:`speculative_run` is the quickstart entry point of the library:
it does, at the value level, exactly what the paper's runtime does —

1. back up the modifiable shared arrays,
2. execute the loop speculatively as a doall while the (simulated)
   hardware watches every access through the coherence protocol,
3. on a FAIL: restore the arrays and re-execute serially,
4. on a pass: commit the speculative results (privatized arrays get
   their last-written values copied out).

The returned arrays are guaranteed to equal serial execution — the
paper's correctness contract — and the attached :class:`RunResult`
carries the simulated timing.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..params import MachineParams, default_params
from ..runtime.driver import RunConfig, RunResult, run_hw
from ..runtime.schedule import (
    SchedulePolicy,
    ScheduleSpec,
    cyclic_blocks,
    plan_static,
)
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import compute
from ..types import ProtocolKind
from .arrays import ArrayProxy, TraceRecorder, make_proxies

Body = Callable[[int, Mapping[str, ArrayProxy]], None]


@dataclasses.dataclass
class ConcreteLoop:
    """A loop over real arrays: a Python body plus array declarations.

    Args:
        body: called as ``body(i, arrays)`` for 0-based iteration ``i``;
            must access arrays only through the provided proxies.
        iterations: trip count.
        arrays: name -> numpy array (modified in place by ``run``).
        protocols: name -> dependence-test protocol for arrays the
            compiler could not analyze (others default to ``PLAIN``).
        live_out: names of privatized arrays whose values are needed
            after the loop (forces copy-out).
        work_cycles: modeled compute cycles between consecutive accesses
            (the body's arithmetic).
    """

    body: Body
    iterations: int
    arrays: Dict[str, np.ndarray]
    protocols: Dict[str, ProtocolKind] = dataclasses.field(default_factory=dict)
    live_out: Tuple[str, ...] = ()
    work_cycles: int = 30

    def trace(self) -> Loop:
        """Record the access stream (on scratch copies of the arrays)."""
        scratch = {k: v.copy() for k, v in self.arrays.items()}
        recorder = TraceRecorder()
        proxies = make_proxies(scratch, recorder)
        body_ops: List[List[object]] = []
        written: Dict[str, bool] = {}
        for i in range(self.iterations):
            self.body(i, proxies)
            ops: List[object] = []
            for op in recorder.take():
                ops.append(op)
                ops.append(compute(self.work_cycles))
                if op.is_write:
                    written[op.array] = True
            body_ops.append(ops)
        specs = []
        for name, data in self.arrays.items():
            protocol = self.protocols.get(name, ProtocolKind.PLAIN)
            specs.append(
                ArraySpec(
                    name,
                    len(data),
                    int(data.dtype.itemsize),
                    protocol,
                    modified=written.get(name, False),
                    live_out=name in self.live_out,
                )
            )
        return Loop("concrete", specs, body_ops)


@dataclasses.dataclass
class ConcreteOutcome:
    """Result of a value-level speculative run."""

    passed: bool
    arrays: Dict[str, np.ndarray]
    #: simulated timing; None when the speculative attempt died on an
    #: exception before a simulation could complete
    simulation: Optional[RunResult]
    reexecuted_serially: bool
    #: exception raised during the speculative execution, if any — the
    #: paper's rule (§2.2): abort and restart serially.  The serial
    #: re-execution's own exception (if the bug is real) propagates.
    speculative_exception: Optional[BaseException] = None


def _assignment(
    schedule: ScheduleSpec, iterations: int, num_procs: int
) -> List[List[int]]:
    """Iterations (0-based) per processor, each list ascending.

    Fallback for callers without a simulated run: assumes the static
    plan (and deals dynamic blocks round-robin, which is only a guess —
    the simulation's realized assignment, when available, is the truth).
    """
    if schedule.policy is SchedulePolicy.DYNAMIC:
        blocks = cyclic_blocks(iterations, schedule.chunk_iterations)
        per_proc: List[List[int]] = [[] for _ in range(num_procs)]
        for i, block in enumerate(blocks):
            per_proc[i % num_procs].extend(b - 1 for b in block.iterations())
        return per_proc
    per_proc = [[] for _ in range(num_procs)]
    for p, blocks in enumerate(plan_static(schedule, iterations, num_procs)):
        for block in blocks:
            per_proc[p].extend(b - 1 for b in block.iterations())
    return per_proc


def _execute_parallel(
    loop: ConcreteLoop,
    traced: Loop,
    schedule: ScheduleSpec,
    num_procs: int,
    assignment: Optional[List[List[int]]] = None,
) -> None:
    """Commit the speculative execution's values to ``loop.arrays``.

    Privatized arrays are executed on per-processor private copies
    (read-in: initialized from the shared image); after all processors
    finish, each element's final value comes from the highest-numbered
    writing iteration (copy-out).  Non-privatized arrays are written in
    place — legal because the passed test guarantees each element is
    read-only or touched by a single processor.

    ``assignment`` is the realized 1-based per-processor iteration
    mapping from the simulation (``RunResult.assignment``).  The test
    verdict is only valid for the schedule the hardware actually
    observed, so the commit must replay exactly that mapping — with
    dynamic self-scheduling a guessed mapping can split an element's
    iterations across processors that the real schedule kept together.
    """
    privatized = {
        spec.name for spec in traced.arrays if spec.privatized
    }
    if assignment is not None:
        assignment = [[it - 1 for it in its] for its in assignment]
    else:
        assignment = _assignment(schedule, loop.iterations, num_procs)
    # Per-array write columns (index, iteration, value-at-iteration-end),
    # appended in program order and committed in one batch below.
    writes: Dict[str, Tuple[List[int], List[int], List[object]]] = {}
    for proc, iterations in enumerate(assignment):
        if not iterations:
            continue
        views: Dict[str, np.ndarray] = {}
        for name, data in loop.arrays.items():
            views[name] = data.copy() if name in privatized else data
        recorder = TraceRecorder()
        proxies = make_proxies(views, recorder)
        for i in iterations:
            loop.body(i, proxies)
            for op in recorder.take():
                if op.is_write and op.array in privatized:
                    idxs, iters, vals = writes.setdefault(op.array, ([], [], []))
                    idxs.append(op.index)
                    iters.append(i)
                    vals.append(views[op.array][op.index])
    # Copy-out: each element's final value comes from its highest-
    # numbered writing iteration.  One stable argsort by iteration plus
    # a fancy-index store per array — positions are assigned ascending
    # by iteration, so the last write wins; the stable sort keeps
    # program order for same-iteration writes (whose recorded values
    # are identical anyway: they are read at iteration end).
    for name, (idxs, iters, vals) in writes.items():
        target = loop.arrays[name]
        order = np.argsort(np.asarray(iters), kind="stable")
        values = np.asarray(vals, dtype=target.dtype)
        target[np.asarray(idxs)[order]] = values[order]


def speculative_run(
    loop: ConcreteLoop,
    params: Optional[MachineParams] = None,
    config: Optional[RunConfig] = None,
) -> ConcreteOutcome:
    """Run ``loop`` speculatively in parallel with hardware detection.

    Exceptions raised by the body during the *speculative* execution
    (tracing or the parallel commit) follow the paper's rule (§2.2):
    the speculation is abandoned, the arrays are restored, and the loop
    re-executes serially.  An exception that also occurs serially is a
    genuine program bug and propagates to the caller — with the arrays
    reflecting exactly the serial execution up to the faulting point.
    """
    params = params or default_params()
    config = config or RunConfig()
    backup = {k: v.copy() for k, v in loop.arrays.items()}
    speculative_exc: Optional[BaseException] = None
    try:
        traced = loop.trace()
        simulation = run_hw(traced, params, config)
        if simulation.passed:
            _execute_parallel(
                loop, traced, config.schedule, params.num_processors,
                assignment=simulation.assignment,
            )
            return ConcreteOutcome(
                passed=True,
                arrays=loop.arrays,
                simulation=simulation,
                reexecuted_serially=False,
            )
    except (ReproError,):
        raise  # simulator misconfiguration, not a speculation hazard
    except Exception as exc:  # noqa: BLE001 - the paper's abort rule
        speculative_exc = exc
        simulation = None
    # Restore and re-execute serially.
    for name, saved in backup.items():
        loop.arrays[name][:] = saved
    recorder = TraceRecorder()
    proxies = make_proxies(loop.arrays, recorder)
    for i in range(loop.iterations):
        loop.body(i, proxies)
        recorder.take()
    return ConcreteOutcome(
        passed=False,
        arrays=loop.arrays,
        simulation=simulation,
        reexecuted_serially=True,
        speculative_exception=speculative_exc,
    )
