"""Concrete (value-level) speculative loop execution.

The simulator proper works on address traces; this package closes the
loop on *semantics*: it takes real numpy arrays and a Python loop body,
traces the body's accesses, runs the traced loop through the simulated
hardware scheme, and then produces the actual result arrays — via the
speculative parallel execution when the test passes, or via restore +
serial re-execution when it fails.  Either way the results provably
equal serial execution, which is the correctness contract of the
paper's scheme (and is property-tested in the test suite).
"""

from .arrays import ArrayProxy, TraceRecorder
from .executor import ConcreteLoop, ConcreteOutcome, speculative_run

__all__ = [
    "ArrayProxy",
    "ConcreteLoop",
    "ConcreteOutcome",
    "TraceRecorder",
    "speculative_run",
]
