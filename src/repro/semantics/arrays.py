"""Access-recording array proxies for concrete loop bodies."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..trace.ops import AccessOp, read as read_op, write as write_op


class TraceRecorder:
    """Collects the access stream of one loop body invocation."""

    def __init__(self) -> None:
        self.ops: List[AccessOp] = []

    def record_read(self, array: str, index: int) -> None:
        self.ops.append(read_op(array, index))

    def record_write(self, array: str, index: int) -> None:
        self.ops.append(write_op(array, index))

    def take(self) -> List[AccessOp]:
        ops = self.ops
        self.ops = []
        return ops


class ArrayProxy:
    """Wraps a numpy array; element accesses are recorded and performed.

    Only scalar integer indexing is supported — the loop bodies under
    run-time parallelization are exactly the ``A(K(i))`` subscripted-
    subscript kind, which index one element at a time.
    """

    def __init__(self, name: str, data: np.ndarray, recorder: TraceRecorder):
        self.name = name
        self.data = data
        self._recorder = recorder

    def __len__(self) -> int:
        return len(self.data)

    def _index(self, index) -> int:
        i = int(index)
        if not 0 <= i < len(self.data):
            raise IndexError(f"{self.name}[{i}] out of range 0..{len(self.data) - 1}")
        return i

    def __getitem__(self, index):
        i = self._index(index)
        self._recorder.record_read(self.name, i)
        return self.data[i]

    def __setitem__(self, index, value) -> None:
        i = self._index(index)
        self._recorder.record_write(self.name, i)
        self.data[i] = value


def make_proxies(
    arrays: Dict[str, np.ndarray], recorder: TraceRecorder
) -> Dict[str, ArrayProxy]:
    return {name: ArrayProxy(name, data, recorder) for name, data in arrays.items()}
