"""Discrete-event multiprocessor simulation engine.

:class:`~repro.sim.engine.Engine` drives a set of
:class:`~repro.sim.processor.Processor` models through op streams in
global time order (a min-heap of events), which serializes all
directory transactions exactly as the paper's protocol argument
requires.  Deferred protocol messages from :mod:`repro.core` share the
same event heap.  :class:`~repro.sim.machine.Machine` wires the engine,
the memory system and an optional speculation engine together.
"""

from .stats import PerProcStats, PhaseResult, TimeBreakdown
from .processor import (
    BarrierOp,
    Barrier,
    IterBeginOp,
    Mutex,
    MutexOp,
    Processor,
    ProcState,
)
from .engine import Engine
from .machine import Machine

__all__ = [
    "Barrier",
    "BarrierOp",
    "Engine",
    "IterBeginOp",
    "Machine",
    "Mutex",
    "MutexOp",
    "PerProcStats",
    "PhaseResult",
    "ProcState",
    "Processor",
    "TimeBreakdown",
]
