"""Execution-time accounting (the Busy/Sync/Mem breakdown of Figure 12)."""

from __future__ import annotations

import dataclasses
from typing import Dict, List


@dataclasses.dataclass
class PerProcStats:
    """Cycle accounting for one processor.

    * ``busy`` — cycles executing instructions;
    * ``mem`` — cycles stalled waiting for the memory system;
    * ``sync`` — cycles waiting at locks/barriers (including end-of-phase
      load imbalance).
    """

    busy: float = 0.0
    mem: float = 0.0
    sync: float = 0.0

    @property
    def total(self) -> float:
        return self.busy + self.mem + self.sync

    def add(self, other: "PerProcStats") -> None:
        self.busy += other.busy
        self.mem += other.mem
        self.sync += other.sync

    def copy(self) -> "PerProcStats":
        return PerProcStats(self.busy, self.mem, self.sync)


@dataclasses.dataclass
class TimeBreakdown:
    """Wall-clock execution time split into the Figure-12 categories.

    The split is the per-processor average over the processors that
    participated, so ``busy + sync + mem == wall`` (idle tail time at
    phase ends is charged to ``sync``).
    """

    busy: float = 0.0
    sync: float = 0.0
    mem: float = 0.0

    @property
    def wall(self) -> float:
        return self.busy + self.sync + self.mem

    def add(self, other: "TimeBreakdown") -> None:
        self.busy += other.busy
        self.sync += other.sync
        self.mem += other.mem

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(self.busy * factor, self.sync * factor, self.mem * factor)

    def normalized_to(self, reference_wall: float) -> "TimeBreakdown":
        if reference_wall <= 0:
            return TimeBreakdown()
        return self.scaled(1.0 / reference_wall)

    @staticmethod
    def from_procs(per_proc: List[PerProcStats]) -> "TimeBreakdown":
        active = [p for p in per_proc if p.total > 0]
        if not active:
            return TimeBreakdown()
        n = len(active)
        return TimeBreakdown(
            busy=sum(p.busy for p in active) / n,
            sync=sum(p.sync for p in active) / n,
            mem=sum(p.mem for p in active) / n,
        )

    def as_dict(self) -> Dict[str, float]:
        return {"busy": self.busy, "sync": self.sync, "mem": self.mem}


@dataclasses.dataclass
class PhaseResult:
    """Outcome of running one phase on the engine."""

    start_time: float
    finish_times: List[float]
    per_proc: List[PerProcStats]
    aborted: bool = False

    @property
    def finish(self) -> float:
        active = [t for t in self.finish_times if t >= 0]
        return max(active) if active else self.start_time

    def participants(self) -> List[int]:
        return [i for i, t in enumerate(self.finish_times) if t >= 0]
