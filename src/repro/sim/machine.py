"""Machine: params + address space + memory system + engine, assembled."""

from __future__ import annotations

from typing import Optional

from ..address import AddressSpace
from ..core.engine import SpeculationEngine
from ..memsys.system import MemorySystem
from ..params import MachineParams
from .engine import Engine
from .processor import Barrier, Mutex


class Machine:
    """A fully wired simulated CC-NUMA multiprocessor.

    Example:
        >>> from repro.params import default_params
        >>> m = Machine(default_params(4))
        >>> a = m.space.allocate("A", 1024, elem_bytes=8)
        >>> # ... build op streams and run phases on m.engine
    """

    def __init__(
        self,
        params: MachineParams,
        space: Optional[AddressSpace] = None,
        with_speculation: bool = True,
        engine: str = "scalar",
    ) -> None:
        if engine not in ("scalar", "batch", "vector"):
            raise ValueError(
                f"unknown engine {engine!r}: use 'scalar', 'batch' or 'vector'"
            )
        self.params = params
        self.engine_mode = engine
        self.space = space or AddressSpace(
            params.num_nodes, params.page_bytes, params.line_bytes
        )
        self.memsys = MemorySystem(params, self.space)
        self.spec: Optional[SpeculationEngine] = None
        self.engine = Engine(self.memsys, self.space, spec=None)
        #: telemetry bus (repro.obs.EventBus), wired by attach_bus()
        self.bus = None
        # The vector tier runs every phase it executes op-by-op (backup,
        # copy-out, aggregate segments) through the batch fast path; the
        # whole-phase kernels live above the machine, in runtime/vector.
        if engine in ("batch", "vector"):
            for proc in self.engine.processors:
                proc.fast = True
        if with_speculation:
            self.spec = SpeculationEngine(
                params,
                self.space,
                scheduler=self.engine.message_scheduler,
                batch=(engine in ("batch", "vector")),
            )
            self.spec.attach(self.memsys)
            self.spec.ctx.clock = self.engine
            self.engine.spec = self.spec

    # ------------------------------------------------------------------
    def attach_bus(self, bus) -> None:
        """Wire a telemetry bus (``repro.obs.EventBus``) into every
        component that emits events.  Idempotent; pass None to detach."""
        self.bus = bus
        self.memsys.bus = bus
        self.engine.bus = bus
        if self.spec is not None:
            self.spec.ctx.bus = bus
            self.spec.controller.bus = bus

    # ------------------------------------------------------------------
    def new_barrier(self, participants: Optional[int] = None) -> Barrier:
        n = participants or self.params.num_processors
        cost = self.params.cost
        return Barrier(n, cost.barrier_base, cost.barrier_per_proc)

    def new_mutex(self) -> Mutex:
        return Mutex()

    def flush_caches(self) -> None:
        """Cold-start the memory system (between loop executions, §5.2)."""
        self.memsys.flush_caches()
