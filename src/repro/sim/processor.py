"""Processor model plus the synchronization ops (barriers, mutexes).

A processor executes an *op stream* (a Python iterator produced by the
runtime's executor).  Pure compute and private accesses are batched;
every shared-memory access, barrier or mutex acquisition is a separate
engine event, so accesses from different processors interleave in
global time order.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Iterator, List, Optional, TYPE_CHECKING

from ..trace.ops import AccessOp, ComputeOp, LocalOp
from ..types import AccessKind
from .stats import PerProcStats

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Engine


class ProcState(enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    BLOCKED = "blocked"  # waiting at a barrier or mutex
    DONE = "done"
    ABORTED = "aborted"


# ----------------------------------------------------------------------
# Synchronization objects and control ops
# ----------------------------------------------------------------------
class Barrier:
    """An N-participant barrier with a linear-cost release."""

    def __init__(self, participants: int, base_cycles: int, per_proc_cycles: int):
        self.participants = participants
        self.cost = base_cycles + per_proc_cycles * participants
        self._waiting: List["Processor"] = []
        self._arrivals: List[float] = []

    def arrive(
        self, proc: "Processor", now: float, bus=None
    ) -> Optional[float]:
        """Returns the release time when this arrival completes the
        barrier, else None (the processor blocks).  ``bus`` (a
        ``repro.obs.EventBus``) receives one ``BarrierWaitEvent`` per
        participant at release time."""
        self._waiting.append(proc)
        self._arrivals.append(now)
        if len(self._waiting) < self.participants:
            return None
        release = now + self.cost
        for p, arrived in zip(self._waiting, self._arrivals):
            p.stats.sync += release - arrived
        if bus is not None and bus.active:
            from ..obs.events import BarrierWaitEvent

            for p, arrived in zip(self._waiting, self._arrivals):
                bus.emit(BarrierWaitEvent(release, p.id, release - arrived))
        waiting = self._waiting
        self._waiting = []
        self._arrivals = []
        for p in waiting:
            if p is not proc:
                p.unblock(release)
        return release

    def release_waiters(self, now: float, aborted: bool = True) -> List["Processor"]:
        """Abort path: free everyone stuck here (speculation failed)."""
        released = self._waiting
        for p, arrived in zip(released, self._arrivals):
            p.stats.sync += max(0.0, now - arrived)
        self._waiting = []
        self._arrivals = []
        return released


class Mutex:
    """A lock serializing short critical sections (e.g. the fetch&add of
    dynamic self-scheduling).  Waiting time is Sync; the hold is Busy."""

    def __init__(self) -> None:
        self._busy_until: float = 0.0

    def acquire(self, now: float, hold_cycles: int) -> float:
        """Returns the wait time; the caller then holds for hold_cycles."""
        start = max(now, self._busy_until)
        self._busy_until = start + hold_cycles
        return start - now


@dataclasses.dataclass(frozen=True)
class BarrierOp:
    barrier: Barrier


@dataclasses.dataclass(frozen=True)
class MutexOp:
    mutex: Mutex
    hold_cycles: int


@dataclasses.dataclass(frozen=True)
class IterBeginOp:
    """Marks the start of a loop iteration.

    ``virtual`` is the iteration number the speculation protocols see
    (the chunk/super-iteration number under block scheduling, §4.1).
    ``overhead_cycles`` covers induction-variable/branch work plus, for
    the hardware privatization scheme, the address-qualified tag reset.
    """

    iteration: int
    virtual: int
    overhead_cycles: int = 0


@dataclasses.dataclass(frozen=True)
class SyncCostOp:
    """Charge fixed cycles to the Sync bucket (e.g. barrier entry fee)."""

    cycles: int


@dataclasses.dataclass(frozen=True)
class EpochSyncOp:
    """Time-stamp epoch boundary (§3.3): after the epoch barrier, reset
    the privatization time stamps so the effective iteration numbers can
    restart from zero.  Every processor issues one; the engine performs
    the reset on the first.  ``cycles`` models the reset system call."""

    epoch: int
    cycles: int = 40


@dataclasses.dataclass(frozen=True)
class BusyCostOp:
    """Charge fixed cycles to the Busy bucket (fixed overheads such as
    the §4.1 loop-entry system calls)."""

    cycles: int


@dataclasses.dataclass(frozen=True)
class AggregateCostOp:
    """Precomputed cost of a whole run of ops (the vector engine).

    The vector tier replays an entire epoch segment of a processor's
    loop work as one op carrying the Busy and Mem cycles its ops would
    have charged.  No shared side effects: memory-system and protocol
    state for the segment are installed in bulk by the vector kernels,
    so the op only advances the clock and the stat buckets."""

    busy: float
    mem: float


class Processor:
    """One simulated processor: pulls ops, issues memory accesses."""

    #: Maximum cycles of pure compute batched into one engine event.
    BATCH_CYCLES = 256

    def __init__(self, proc_id: int, engine: "Engine") -> None:
        self.id = proc_id
        self.engine = engine
        self.state = ProcState.IDLE
        self.stats = PerProcStats()
        self.finish_time: float = -1.0
        self.current_iteration: int = 0
        #: batch-engine fast path: skip the post-and-resume round trip
        #: through the event heap whenever no other pending work could
        #: legally run first (an exact transformation; see _run_fast).
        self.fast = False
        self._ops: Optional[Iterator[object]] = None
        self._blocked_on: Optional[Barrier] = None
        self._pending_op: Optional[object] = None
        self._addr_map: dict = {}

    # ------------------------------------------------------------------
    def start(self, ops: Iterator[object], time: float) -> None:
        self._ops = ops
        self.state = ProcState.RUNNING
        self.finish_time = -1.0
        if self.fast:
            # Addresses of non-redirected arrays are static for the
            # whole phase (registration and arming happen between
            # phases), so resolve() collapses to one dict probe.
            spec = self.engine.spec
            if spec is not None:
                self._addr_map = spec.static_address_map()
            else:
                self._addr_map = {
                    d.name: (d.base, d.elem_bytes, d.length)
                    for d in self.engine.space.decls()
                }
            self.engine.post(time, self._run_fast)
            return
        self.engine.post(time, self._resume)

    def unblock(self, time: float) -> None:
        self.state = ProcState.RUNNING
        self._blocked_on = None
        self.engine.post(time, self._run_fast if self.fast else self._resume)

    def abort(self, time: float) -> None:
        self.state = ProcState.ABORTED
        self.finish_time = time
        self._ops = None
        # A stale pending op (e.g. an epoch BarrierOp deferred by the
        # yield gate) must not leak into the next phase: the processor
        # would re-arrive at a barrier of the aborted phase that can
        # never complete again.
        self._pending_op = None
        self._blocked_on = None
        self.engine.proc_finished(self)

    # ------------------------------------------------------------------
    def _finish(self, time: float) -> None:
        # Release-consistency fence: retire outstanding writes.
        drain = self.engine.memsys.drain_write_buffer(self.id, time)
        self.stats.mem += drain
        self.state = ProcState.DONE
        self.finish_time = time + drain
        self._ops = None
        self.engine.proc_finished(self)

    def _resume(self, now: float) -> None:
        if self.state in (ProcState.DONE, ProcState.ABORTED):
            return
        if self.engine.should_abort():
            self.abort(max(now, self.engine.abort_time()))
            return
        assert self._ops is not None
        if self.fast:  # stale post from before the mode switch
            self._run_fast(now)
            return
        memsys = self.engine.memsys
        t = now
        while True:
            if self._pending_op is not None:
                op = self._pending_op
                self._pending_op = None
            else:
                try:
                    op = next(self._ops)
                except StopIteration:
                    self._finish(t)
                    return
            # Ops with shared side effects (memory accesses, barriers,
            # mutexes) must execute at their true global time: if locally
            # batched compute advanced our clock past the event time,
            # yield to the engine so other processors' earlier work runs
            # first — otherwise protocol state would mutate out of order.
            # Pure compute also yields past BATCH_CYCLES so aborts are
            # noticed promptly (hardware squashes within a few cycles).
            if t > now and (
                isinstance(op, (AccessOp, BarrierOp, MutexOp))
                or t - now >= self.BATCH_CYCLES
            ):
                self._pending_op = op
                self.engine.post(t, self._resume)
                return
            if isinstance(op, AccessOp):
                # Resolve through the speculation engine's comparator
                # (identity when speculation is off).
                addr = self.engine.resolve(self.id, op.array, op.index, op.kind)
                if op.kind is AccessKind.READ:
                    res = memsys.read(self.id, addr, t)
                else:
                    res = memsys.write(self.id, addr, t)
                self.stats.busy += res.issue_cycles
                self.stats.mem += res.stall_cycles
                t += res.total
                # Yield the engine after every shared access so accesses
                # interleave across processors in global time order.
                self.engine.post(t, self._resume)
                return
            if isinstance(op, ComputeOp):
                self.stats.busy += op.cycles
                t += op.cycles
                continue
            if isinstance(op, LocalOp):
                self.stats.busy += 1
                t += 1
                continue
            if isinstance(op, IterBeginOp):
                self.current_iteration = op.iteration
                self.engine.set_iteration(self.id, op.virtual)
                if op.overhead_cycles:
                    self.stats.busy += op.overhead_cycles
                    t += op.overhead_cycles
                continue
            if isinstance(op, BusyCostOp):
                self.stats.busy += op.cycles
                t += op.cycles
                continue
            if isinstance(op, AggregateCostOp):
                self.stats.busy += op.busy
                self.stats.mem += op.mem
                t += op.busy + op.mem
                continue
            if isinstance(op, SyncCostOp):
                self.stats.sync += op.cycles
                t += op.cycles
                continue
            if isinstance(op, EpochSyncOp):
                self.engine.epoch_sync(op.epoch)
                self.stats.sync += op.cycles
                t += op.cycles
                continue
            if isinstance(op, MutexOp):
                wait = op.mutex.acquire(t, op.hold_cycles)
                self.stats.sync += wait
                self.stats.busy += op.hold_cycles
                t += wait + op.hold_cycles
                self.engine.post(t, self._resume)
                return
            if isinstance(op, BarrierOp):
                # Fence before synchronizing.
                drain = memsys.drain_write_buffer(self.id, t)
                self.stats.mem += drain
                t += drain
                release = op.barrier.arrive(self, t, self.engine.bus)
                if release is None:
                    self.state = ProcState.BLOCKED
                    self._blocked_on = op.barrier
                    return
                self.engine.post(release, self._resume)
                return
            raise TypeError(f"unknown op {op!r}")

    def _run_fast(self, now: float) -> None:
        """Batch-engine resume callback: profiling shim over the real
        loop in :meth:`_run_fast_inner`.

        With no ambient profiler (the null path) this is one attribute
        read and an ``is None`` test per burst.  With a coarse profiler
        each burst bumps a counter on the enclosing epoch span; a
        ``fine`` profiler records one wall-clock span per burst.
        """
        prof = self.engine.profiler
        if prof is None:
            self._run_fast_inner(now)
        elif prof.fine:
            handle = prof.begin(
                "fast-burst", cat="batch", tid=self.id + 1, proc=self.id
            )
            try:
                self._run_fast_inner(now)
            finally:
                prof.end(handle)
        else:
            prof.count("batch.fast_bursts")
            self._run_fast_inner(now)

    def _run_fast_inner(self, now: float) -> None:
        """Batch-engine op loop: an exact transformation of the scalar
        loop in :meth:`_resume`.

        The scalar loop posts-and-returns after every shared access so
        accesses interleave across processors in global time order.
        When no pending event is timestamped at or before the local
        clock, that round trip through the event heap is a no-op: the
        engine would pop our own freshly posted resume right back.  This
        loop keeps executing inline in exactly that case.  ``anchor``
        tracks the time the scalar loop would have last resumed at
        (reset after every shared op, where the scalar loop always
        yields), so the BATCH_CYCLES compute-batching boundaries — and
        therefore abort timing — land on the same cycles in both modes.

        Posted directly as the resume callback in fast mode, so it
        repeats :meth:`_resume`'s entry checks (done/aborted state,
        pending abort) instead of paying the trampoline per event.
        """
        state = self.state
        if state is ProcState.DONE or state is ProcState.ABORTED:
            return
        engine = self.engine
        if engine._abort_on_failure:
            spec_ = engine.spec
            if spec_ is not None and spec_.controller.failure is not None:
                self.abort(max(now, engine.abort_time()))
                return
        memsys = engine.memsys
        # Everything below is bound to locals: this loop executes a few
        # thousand ops per phase and attribute chases dominate it.
        pid = self.id
        stats = self.stats
        ops_next = self._ops.__next__
        post = engine.post
        resume = self._run_fast
        amap_get = self._addr_map.get
        heap = engine._heap
        msg_heap = engine._msg_heap
        mem_read = memsys.read
        mem_write = memsys.write
        batch_cycles = self.BATCH_CYCLES
        inf = float("inf")
        spec = engine.spec
        ctrl = spec.controller if spec is not None else None
        # Constant for the duration of a phase (set in run_phase before
        # any processor starts, cleared after quiescence).
        abort_armed = engine._abort_on_failure and ctrl is not None
        t = now
        anchor = now
        while True:
            op = self._pending_op
            if op is not None:
                self._pending_op = None
            else:
                try:
                    op = ops_next()
                except StopIteration:
                    self._finish(t)
                    return
            cls = op.__class__
            if t > anchor:
                # Same condition as the scalar loop's yield gate, with
                # next_pending_time() inlined (ops are never subclassed,
                # so class identity substitutes for isinstance).
                if t - anchor >= batch_cycles:
                    self._pending_op = op
                    post(t, resume)
                    return
                if cls is AccessOp or cls is BarrierOp or cls is MutexOp:
                    if msg_heap:
                        npt = msg_heap[0][0]
                        if heap and heap[0][0] < npt:
                            npt = heap[0][0]
                    elif heap:
                        npt = heap[0][0]
                    else:
                        npt = inf
                    if t >= npt:
                        self._pending_op = op
                        post(t, resume)
                        return
            if cls is AccessOp:
                kind = op.kind
                ent = amap_get(op.array)
                index = op.index
                if ent is not None and 0 <= index < ent[2]:
                    addr = ent[0] + index * ent[1]
                elif ctrl is not None and ctrl.armed:
                    addr = spec.resolve(pid, op.array, index, kind)
                else:
                    addr = engine.space.array(op.array).addr_of(index)
                if kind is AccessKind.READ:
                    res = mem_read(pid, addr, t)
                else:
                    res = mem_write(pid, addr, t)
                stats.busy += res.issue_cycles
                stats.mem += res.stall_cycles
                t += res.total
                anchor = t
                # The access may have queued protocol messages due at or
                # before t, or detected a FAIL: both require the scalar
                # post-and-return behavior.
                if msg_heap:
                    npt = msg_heap[0][0]
                    if heap and heap[0][0] < npt:
                        npt = heap[0][0]
                elif heap:
                    npt = heap[0][0]
                else:
                    npt = inf
                if t >= npt or (abort_armed and ctrl.failure is not None):
                    post(t, resume)
                    return
                continue
            if cls is ComputeOp:
                stats.busy += op.cycles
                t += op.cycles
                continue
            if cls is LocalOp:
                stats.busy += 1
                t += 1
                continue
            if cls is IterBeginOp:
                self.current_iteration = op.iteration
                if spec is not None:
                    spec.set_iteration(pid, op.virtual)
                if op.overhead_cycles:
                    stats.busy += op.overhead_cycles
                    t += op.overhead_cycles
                continue
            if cls is BusyCostOp:
                stats.busy += op.cycles
                t += op.cycles
                continue
            if cls is AggregateCostOp:
                stats.busy += op.busy
                stats.mem += op.mem
                t += op.busy + op.mem
                continue
            if cls is SyncCostOp:
                stats.sync += op.cycles
                t += op.cycles
                continue
            if cls is EpochSyncOp:
                engine.epoch_sync(op.epoch)
                stats.sync += op.cycles
                t += op.cycles
                continue
            if cls is MutexOp:
                wait = op.mutex.acquire(t, op.hold_cycles)
                stats.sync += wait
                stats.busy += op.hold_cycles
                t += wait + op.hold_cycles
                post(t, resume)
                return
            if cls is BarrierOp:
                drain = memsys.drain_write_buffer(pid, t)
                stats.mem += drain
                t += drain
                release = op.barrier.arrive(self, t, engine.bus)
                if release is None:
                    self.state = ProcState.BLOCKED
                    self._blocked_on = op.barrier
                    return
                post(release, resume)
                return
            raise TypeError(f"unknown op {op!r}")
