"""Global-time discrete-event engine driving processors and messages."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, Iterator, List, Optional

from ..address import AddressSpace
from ..core.controller import SpeculationController
from ..core.engine import SpeculationEngine
from ..core.messages import Scheduler
from ..errors import ConfigurationError
from ..memsys.system import MemorySystem
from ..obs import spans as obs_spans
from ..obs.events import EpochSyncEvent, QuiesceEvent
from ..types import AccessKind
from .processor import Processor, ProcState
from .stats import PerProcStats, PhaseResult


class _MessageScheduler(Scheduler):
    """Routes the speculation protocols' deferred messages to the
    engine's dedicated message heap (so they can be drained at
    synchronization points independently of processor events)."""

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    def post(self, time: float, callback: Callable[[float], None]) -> None:
        self._engine.post_message(time, callback)


class Engine(Scheduler):
    """Event heap + processors.  Also the protocols' message scheduler."""

    #: Safety valve against runaway simulations.
    MAX_EVENTS_DEFAULT = 200_000_000

    def __init__(
        self,
        memsys: MemorySystem,
        space: AddressSpace,
        spec: Optional[SpeculationEngine] = None,
        max_events: int = MAX_EVENTS_DEFAULT,
    ) -> None:
        self.memsys = memsys
        self.space = space
        self.spec = spec
        self.max_events = max_events
        self.now: float = 0.0
        self._heap: List = []
        self._msg_heap: List = []
        self._seq = itertools.count()
        self.message_scheduler = _MessageScheduler(self)
        self.processors: List[Processor] = [
            Processor(i, self) for i in range(memsys.params.num_processors)
        ]
        self._remaining = 0
        self._abort_on_failure = False
        self._abort_handled = False
        self._epochs_done = 0
        self.events_processed = 0
        #: telemetry bus (repro.obs.EventBus); None keeps emission free
        self.bus = None
        #: ambient span profiler for the current phase (repro.obs.spans);
        #: None keeps the hot paths free of profiling work
        self.profiler = None
        self._epoch_span = None

    # ------------------------------------------------------------------
    # Scheduler interface (used by the speculation protocols)
    # ------------------------------------------------------------------
    def post(self, time: float, callback: Callable[[float], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def post_message(self, time: float, callback: Callable[[float], None]) -> None:
        heapq.heappush(self._msg_heap, (time, next(self._seq), callback))

    def _pop_next(self):
        """Pop the earliest event across both heaps (messages win ties:
        they were usually issued earlier)."""
        if self._msg_heap and (
            not self._heap or self._msg_heap[0][:2] <= self._heap[0][:2]
        ):
            return heapq.heappop(self._msg_heap)
        if self._heap:
            return heapq.heappop(self._heap)
        return None

    def next_pending_time(self) -> float:
        """Earliest pending event time across both heaps (inf if idle).

        The batch-engine processor fast path keeps executing ops inline
        while its local clock stays strictly below this time: a freshly
        posted resume always has a larger sequence number than anything
        already pending, so strictly-earlier local work is exactly the
        work the scalar engine would have run first anyway.
        """
        if self._msg_heap:
            if self._heap and self._heap[0][0] < self._msg_heap[0][0]:
                return self._heap[0][0]
            return self._msg_heap[0][0]
        if self._heap:
            return self._heap[0][0]
        return float("inf")

    def flush_messages(self) -> int:
        """Deliver every in-flight protocol message immediately (in time
        order).  Used at epoch synchronization points (§3.3), where the
        hardware waits for outstanding transactions to complete."""
        count = 0
        while self._msg_heap:
            time, _, callback = heapq.heappop(self._msg_heap)
            if time > self.now:
                self.now = time
            callback(time)
            count += 1
        return count

    def epoch_sync(self, epoch: int) -> None:
        """Reset the privatization time stamps for a new epoch (§3.3).

        Called by every processor right after the epoch barrier; only
        the first call per epoch performs the reset."""
        if epoch <= self._epochs_done:
            return
        flushed = self.flush_messages()
        if self.spec is not None:
            self.spec.epoch_sync()
        self._epochs_done = epoch
        prof = self.profiler
        if prof is not None and self._epoch_span is not None:
            prof.end(self._epoch_span, flushed_messages=flushed)
            self._epoch_span = prof.begin(f"epoch#{epoch}", cat="epoch", epoch=epoch)
        if self.bus is not None and self.bus.active:
            self.bus.emit(EpochSyncEvent(self.now, epoch, flushed))

    # ------------------------------------------------------------------
    # Speculation integration
    # ------------------------------------------------------------------
    @property
    def controller(self) -> Optional[SpeculationController]:
        return self.spec.controller if self.spec is not None else None

    def resolve(self, proc: int, array: str, index: int, kind: AccessKind) -> int:
        if self.spec is not None and self.spec.controller.armed:
            return self.spec.resolve(proc, array, index, kind)
        return self.space.array(array).addr_of(index)

    def set_iteration(self, proc: int, virtual_iteration: int) -> None:
        if self.spec is not None:
            self.spec.set_iteration(proc, virtual_iteration)

    def should_abort(self) -> bool:
        return (
            self._abort_on_failure
            and self.spec is not None
            and self.spec.controller.failed
        )

    def abort_time(self) -> float:
        controller = self.controller
        if controller is None or controller.failure is None:
            return self.now
        detected = controller.failure.detected_at
        return float(detected) if detected is not None else self.now

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------
    def proc_finished(self, proc: Processor) -> None:
        self._remaining -= 1

    def run_phase(
        self,
        op_sources: Dict[int, Iterator[object]],
        start_time: Optional[float] = None,
        abort_on_failure: bool = False,
    ) -> PhaseResult:
        """Run every participating processor's op stream to completion,
        then drain all in-flight protocol messages.

        Args:
            op_sources: processor id -> op iterator.  Processors absent
                from the mapping sit out the phase.
            start_time: simulated time at which all participants begin
                (defaults to the engine's current time).
            abort_on_failure: whether a speculation FAIL aborts the
                phase (true during the speculative doall execution).
        """
        if not op_sources:
            raise ConfigurationError("run_phase needs at least one processor")
        start = self.now if start_time is None else start_time
        before = [p.stats.copy() for p in self.processors]
        self._abort_on_failure = abort_on_failure
        self._abort_handled = False
        self._epochs_done = 0
        self._remaining = len(op_sources)
        prof = self.profiler = obs_spans.current()
        if prof is not None:
            events0 = self.events_processed
            self._epoch_span = prof.begin("epoch#0", cat="epoch", epoch=0)
        for proc_id, ops in op_sources.items():
            self.processors[proc_id].start(iter(ops), start)
        self._run_to_quiescence()
        self._abort_on_failure = False
        if prof is not None and self._epoch_span is not None:
            prof.end(
                self._epoch_span,
                **{"engine.events": self.events_processed - events0},
            )
            self._epoch_span = None

        finish = [-1.0] * len(self.processors)
        deltas: List[PerProcStats] = []
        for i, proc in enumerate(self.processors):
            delta = proc.stats.copy()
            delta.busy -= before[i].busy
            delta.mem -= before[i].mem
            delta.sync -= before[i].sync
            deltas.append(delta)
            if i in op_sources:
                finish[i] = proc.finish_time
        aborted = self.spec is not None and self.spec.controller.failed
        result = PhaseResult(
            start_time=start, finish_times=finish, per_proc=deltas, aborted=aborted
        )
        self.now = max(self.now, result.finish)
        if self.bus is not None and self.bus.active:
            self.bus.emit(QuiesceEvent(self.now, self.events_processed, aborted))
        return result

    def drain(self) -> None:
        """Process every pending event (in-flight protocol messages).

        Intended for direct protocol-level tests that bypass
        :meth:`run_phase`; phases drain automatically.
        """
        while True:
            item = self._pop_next()
            if item is None:
                return
            time, _, callback = item
            if time > self.now:
                self.now = time
            callback(time)

    def _run_to_quiescence(self) -> None:
        # _abort_on_failure and spec are fixed for the phase; inline
        # should_abort() to one attribute test per event.
        ctrl = (
            self.spec.controller
            if self._abort_on_failure and self.spec is not None
            else None
        )
        pop = self._pop_next
        max_events = self.max_events
        while True:
            item = pop()
            if item is None:
                break
            self.events_processed += 1
            if self.events_processed > max_events:
                raise ConfigurationError(
                    f"simulation exceeded {self.max_events} events; "
                    "suspected livelock"
                )
            time, _, callback = item
            if time > self.now:
                self.now = time
            callback(time)
            if ctrl is not None and ctrl.failure is not None and not self._abort_handled:
                self._handle_abort()
        if self._remaining > 0 and not self._abort_handled:
            stuck = [
                p.id for p in self.processors if p.state is ProcState.BLOCKED
            ]
            raise ConfigurationError(
                f"phase deadlocked: processors {stuck} blocked at a barrier "
                "that can never complete"
            )

    def _handle_abort(self) -> None:
        """First notice of a FAIL: release barrier waiters as aborted.

        Running processors abort at their next event (hardware squashes
        at the next cycle boundary); blocked ones are freed here so the
        phase can end.
        """
        self._abort_handled = True
        t = max(self.now, self.abort_time())
        barriers = []
        for proc in self.processors:
            if proc.state is ProcState.BLOCKED and proc._blocked_on is not None:
                if proc._blocked_on not in barriers:
                    barriers.append(proc._blocked_on)
        for barrier in barriers:
            for proc in barrier.release_waiters(t):
                proc.abort(t)
