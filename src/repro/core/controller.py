"""Speculation controller: arming, failure recording, and abort.

The controller is the single point where a FAIL from any protocol check
lands.  The first failure wins; it is recorded with its detection time
so the evaluation can show how quickly the hardware scheme catches a
serial loop (paper §6.2).  The simulation engine polls
:attr:`SpeculationController.failed` before every processor event, which
models "execution stops [...] as soon as a cross-iteration data
dependence occurs" — each processor aborts at its next cycle.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SpeculationFailure


class SpeculationController:
    """Tracks whether speculation is armed and whether it has failed."""

    def __init__(self) -> None:
        self.armed = False
        self.failure: Optional[SpeculationFailure] = None
        self.history: List[SpeculationFailure] = []
        #: telemetry bus (repro.obs.EventBus); None keeps emission free
        self.bus = None

    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        return self.failure is not None

    def arm(self) -> None:
        """Start a speculative loop execution (clears any old failure)."""
        self.armed = True
        self.failure = None

    def disarm(self) -> None:
        self.armed = False

    def fail(
        self,
        reason: str,
        element: "tuple[str, int] | None" = None,
        detected_at: "float | None" = None,
        iteration: "int | None" = None,
        processor: "int | None" = None,
    ) -> None:
        """Record a FAIL.  Only the first failure is kept as *the* failure
        (later ones from in-flight messages are appended to history)."""
        if not self.armed:
            return
        failure = SpeculationFailure(
            reason,
            element=element,
            detected_at=int(detected_at) if detected_at is not None else None,
            iteration=iteration,
            processor=processor,
        )
        self.history.append(failure)
        if self.failure is None:
            self.failure = failure
        if self.bus is not None and self.bus.active:
            from ..obs.events import FailureEvent

            self.bus.emit(
                FailureEvent(
                    detected_at if detected_at is not None else 0.0,
                    reason,
                    element=element,
                    proc=processor,
                    iteration=iteration,
                )
            )

    def check(self) -> None:
        """Raise the recorded failure, if any."""
        if self.failure is not None:
            raise self.failure
