"""The non-privatization algorithm (paper §3.2, Figures 4, 6 and 7).

Every element of an array under this test must end the loop either
*read-only* or *accessed by a single processor*; any other pattern FAILs
the parallelization.  State per element:

* directory: ``First`` (ID of the first processor to access the
  element), ``Priv``/NoShr, ``ROnly`` — kept in the dedicated access-bit
  memory (:class:`~repro.core.accessbits.NonPrivDirTable`);
* cache tags: a 2-bit First summary (OWN/OTHER/NONE) plus the
  ``Priv``/``ROnly`` bits
  (:class:`~repro.core.accessbits.NonPrivTagBits`).

The lettered methods below correspond one-to-one to the lettered
algorithms of Figures 6 and 7:

========================  ============================================
paper                     here
========================  ============================================
(a) processor read hit    :meth:`on_cache_hit` (READ)
(b) home gets read req    :meth:`on_dir_access` (READ)
(c) processor write hit   :meth:`on_cache_hit` (WRITE)
(d) home gets write req   :meth:`on_dir_access` (WRITE)
(e) home gets dirty line  :meth:`merge_writeback`
(f) home gets First_update    :meth:`_dir_first_update`
(g) cache gets First_update_fail  :meth:`_cache_first_update_fail`
(h) home gets ROnly_update    :meth:`_dir_ronly_update`
========================  ============================================
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.events import NonPrivDirUpdateEvent
from ..types import AccessKind, FirstState, LineState
from .accessbits import (
    BLOCK_KEY,
    NO_PROC,
    OTHER_PROC,
    NonPrivDirTable,
    NonPrivTagBits,
    NonPrivTagBlock,
)
from .context import ProtocolContext
from .translation import RangeEntry


class NonPrivProtocol:
    """Implements the non-privatization coherence extensions."""

    def __init__(self, ctx: ProtocolContext) -> None:
        self.ctx = ctx
        self._tables: Dict[str, NonPrivDirTable] = {}
        self._entries: Dict[str, RangeEntry] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register(self, entry: RangeEntry) -> None:
        name = entry.decl.name
        self._tables[name] = NonPrivDirTable(entry.decl.length)
        self._entries[name] = entry

    def clear(self) -> None:
        """Clear all directory access bits (loop-entry system call, §4.1)."""
        for table in self._tables.values():
            table.clear()

    def table(self, name: str) -> NonPrivDirTable:
        return self._tables[name]

    # ------------------------------------------------------------------
    # Directory-update telemetry (guarded by bus.wants_spec: the null
    # path never snapshots table state)
    # ------------------------------------------------------------------
    def _dir_snapshot(self, name: str, index: int):
        table = self._tables[name]
        return (
            int(table.first[index]),
            bool(table.priv[index]),
            bool(table.ronly[index]),
        )

    def _emit_dir_update(
        self, bus, now: float, name: str, index: int, proc: int, cause: str,
        snap,
    ) -> None:
        after = self._dir_snapshot(name, index)
        if after != snap:
            bus.emit(
                NonPrivDirUpdateEvent(
                    now, name, index, proc, cause,
                    snap[0], snap[1], snap[2], after[0], after[1], after[2],
                )
            )

    # ------------------------------------------------------------------
    # Tag-side logic (Fig 6-(a) and 6-(c))
    # ------------------------------------------------------------------
    def on_cache_hit(
        self,
        proc: int,
        line,  # memsys CacheLine
        entry: RangeEntry,
        index: int,
        offset: int,
        kind: AccessKind,
        now: float,
    ) -> None:
        self.ctx.stats.tag_checks += 1
        bits = line.get_bits(offset)
        if not isinstance(bits, NonPrivTagBits):
            bits = NonPrivTagBits()
            line.set_bits(offset, bits)
        name = entry.decl.name
        if kind is AccessKind.READ:
            # (a): FAIL on reading data written by another processor.
            if bits.first is FirstState.OTHER and bits.priv:
                self._fail(
                    "read of element written by another processor (tag)",
                    name, index, now, proc,
                )
                return
            if bits.first is FirstState.NONE:
                bits.first = FirstState.OWN
                if line.state is not LineState.DIRTY:
                    self._send_first_update(proc, entry, index, now)
            elif bits.first is FirstState.OTHER and not bits.ronly:
                bits.ronly = True
                if line.state is not LineState.DIRTY:
                    self._send_ronly_update(proc, entry, index, now)
        else:
            # (c): FAIL on writing data read or written by another proc.
            if bits.first is FirstState.OTHER or bits.ronly:
                self._fail(
                    "write to element read/written by another processor (tag)",
                    name, index, now, proc,
                )
                return
            # Clean lines additionally go through the home (the memsys
            # upgrade path calls on_dir_access); tag update is local in
            # either case: "no need to tell the directory".
            bits.first = FirstState.OWN
            bits.priv = True

    # ------------------------------------------------------------------
    # Directory-side logic on data requests (Fig 6-(b) and 6-(d))
    # ------------------------------------------------------------------
    def on_dir_access(
        self, proc: int, entry: RangeEntry, index: int, kind: AccessKind, now: float
    ) -> int:
        """Run the home-side check; any dirty-owner merge has already
        been applied by the memory system.  Returns extra latency (0)."""
        self.ctx.stats.dir_checks += 1
        table = self._tables[entry.decl.name]
        first = int(table.first[index])
        name = entry.decl.name
        bus = self.ctx.spec_bus()
        snap = self._dir_snapshot(name, index) if bus is not None else None
        if kind is AccessKind.READ:
            # (b)
            if first != proc and table.priv[index]:
                self._fail(
                    "read of element written by another processor (dir)",
                    name, index, now, proc,
                )
            elif first == NO_PROC:
                table.first[index] = proc
            elif first != proc and not table.ronly[index]:
                table.ronly[index] = True
        else:
            # (d)
            if (first != proc and first != NO_PROC) or table.ronly[index]:
                self._fail(
                    "write to element read/written by another processor (dir)",
                    name, index, now, proc,
                )
            else:
                table.first[index] = proc
                table.priv[index] = True
        if bus is not None:
            cause = "read-req" if kind is AccessKind.READ else "write-req"
            self._emit_dir_update(bus, now, name, index, proc, cause, snap)
        return 0

    # ------------------------------------------------------------------
    # Writeback merge (Fig 6-(e))
    # ------------------------------------------------------------------
    def merge_writeback(
        self, proc: int, entry: RangeEntry, index: int, bits: NonPrivTagBits, now: float
    ) -> None:
        """Fold one word's tag state into the directory when a dirty line
        is displaced or recalled."""
        self._merge_word(
            proc, entry, index,
            bits.first is FirstState.OWN, bits.priv, bits.ronly, now,
        )

    def _merge_word(
        self,
        proc: int,
        entry: RangeEntry,
        index: int,
        own: bool,
        priv: bool,
        ronly: bool,
        now: float,
    ) -> None:
        table = self._tables[entry.decl.name]
        name = entry.decl.name
        first = int(table.first[index])
        bus = self.ctx.spec_bus()
        snap = self._dir_snapshot(name, index) if bus is not None else None
        # Only state the *local* processor could have produced is merged:
        # tag bits with First == OTHER were inherited from the directory
        # on the fill and carry no new information.
        if own:
            if priv:
                if table.ronly[index]:
                    self._fail(
                        "writeback reveals write to read-only element",
                        name, index, now, proc,
                    )
                    return
                if first not in (NO_PROC, proc):
                    self._fail(
                        "writeback reveals write to element first accessed "
                        "by another processor",
                        name, index, now, proc,
                    )
                    return
                table.first[index] = proc
                table.priv[index] = True
            else:
                if first == NO_PROC:
                    table.first[index] = proc
                elif first != proc:
                    # Two processors believed they were first readers.
                    table.ronly[index] = True
        # ROnly can be set locally while the line is dirty (Fig 6-(a)
        # with no message sent), so it is merged regardless of First;
        # re-merging an inherited ROnly is idempotent.
        if ronly:
            table.ronly[index] = True
        if bus is not None:
            self._emit_dir_update(bus, now, name, index, proc, "writeback", snap)

    def merge_line(
        self,
        proc: int,
        line,  # memsys CacheLine
        entry: RangeEntry,
        first: int,
        count: int,
        now: float,
    ) -> None:
        """Fold a whole dirty line's tag state into the directory."""
        decl = entry.decl
        for offset, bits in list(line.spec_bits.items()):
            index = (line.line_addr + offset - decl.base) // decl.elem_bytes
            if first <= index < first + count:
                self.merge_writeback(proc, entry, index, bits, now)

    # ------------------------------------------------------------------
    # Tag fill (directory -> cache copy on a fetch)
    # ------------------------------------------------------------------
    def tag_fill(self, proc: int, entry: RangeEntry, index: int) -> NonPrivTagBits:
        return self._tables[entry.decl.name].tag_view(index, proc)

    def fill_line(
        self, proc: int, line, entry: RangeEntry, first: int, count: int
    ) -> None:
        """Copy directory state into a line's tags on a fetch/upgrade."""
        decl = entry.decl
        base = decl.base
        elem_bytes = decl.elem_bytes
        line_addr = line.line_addr
        spec_bits = line.spec_bits
        table = self._tables[decl.name]
        for index in range(first, first + count):
            offset = base + index * elem_bytes - line_addr
            spec_bits[offset] = table.tag_view(index, proc)

    # ------------------------------------------------------------------
    # Deferred update messages (Figs 6-(f), 6-(g), 7-(h))
    # ------------------------------------------------------------------
    def _send_first_update(
        self, proc: int, entry: RangeEntry, index: int, now: float
    ) -> None:
        self.ctx.stats.first_updates += 1
        self.ctx.log_message(now, "First_update", proc, entry.decl.name, index)
        elem_addr = entry.decl.addr_of(index)
        node = self.ctx.params.node_of_processor(proc)
        self.ctx.send_to_directory(
            elem_addr,
            node,
            now,
            lambda t: self._dir_first_update(proc, entry, index, t),
        )

    def _send_ronly_update(
        self, proc: int, entry: RangeEntry, index: int, now: float
    ) -> None:
        self.ctx.stats.ronly_updates += 1
        self.ctx.log_message(now, "ROnly_update", proc, entry.decl.name, index)
        elem_addr = entry.decl.addr_of(index)
        node = self.ctx.params.node_of_processor(proc)
        self.ctx.send_to_directory(
            elem_addr,
            node,
            now,
            lambda t: self._dir_ronly_update(proc, entry, index, t),
        )

    def _dir_first_update(
        self, proc: int, entry: RangeEntry, index: int, now: float
    ) -> None:
        """(f): home receives a First_update."""
        table = self._tables[entry.decl.name]
        bus = self.ctx.spec_bus()
        snap = (
            self._dir_snapshot(entry.decl.name, index)
            if bus is not None
            else None
        )
        if table.priv[index]:
            # A First_update racing a write FAILs — unless both came from
            # the same processor, in which case the update is stale
            # information the directory already has (the paper assumes
            # in-order delivery from one cache to one home; the timing
            # model can reorder an update behind the sender's own
            # write-request, which must stay benign).
            if int(table.first[index]) != proc:
                self._fail(
                    "race between a First_update and a write",
                    entry.decl.name, index, now, proc,
                )
            return
        first = int(table.first[index])
        if first == NO_PROC:
            table.first[index] = proc
            if bus is not None:
                self._emit_dir_update(
                    bus, now, entry.decl.name, index, proc, "first-update", snap
                )
        elif first != proc:
            # Race between two First_updates: mark read-shared and bounce.
            table.ronly[index] = True
            if bus is not None:
                self._emit_dir_update(
                    bus, now, entry.decl.name, index, proc, "first-update", snap
                )
            self.ctx.stats.first_update_fails += 1
            self.ctx.log_message(
                now, "First_update_fail", proc, entry.decl.name, index
            )
            home = self.ctx.space.home_node(entry.decl.addr_of(index))
            self.ctx.send_to_cache(
                proc,
                home,
                now,
                lambda t: self._cache_first_update_fail(proc, entry, index, t),
            )

    def _cache_first_update_fail(
        self, proc: int, entry: RangeEntry, index: int, now: float
    ) -> None:
        """(g): cache receives a First_update_fail."""
        memsys = self.ctx.memsys
        if memsys is None:
            return
        elem_addr = entry.decl.addr_of(index)
        line_addr = self.ctx.space.line_addr(elem_addr)
        _, line = memsys.caches[proc].probe(line_addr)
        if line is None:
            # Line displaced meanwhile; its state already reached the
            # directory (clean lines propagate eagerly, dirty lines merge
            # on writeback), so the correction is moot.
            return
        offset = elem_addr - line_addr
        bits = line.get_bits(offset)
        if not isinstance(bits, NonPrivTagBits):
            bits = NonPrivTagBits()
            line.set_bits(offset, bits)
        if bits.first is FirstState.OWN and bits.priv:
            # The slower processor not only read but also wrote the
            # element before learning it was not First.
            self._fail(
                "race between two First_updates: processor read and "
                "then wrote before losing the race",
                entry.decl.name, index, now, proc,
            )
            return
        bits.first = FirstState.OTHER
        bits.ronly = True

    def _dir_ronly_update(
        self, proc: int, entry: RangeEntry, index: int, now: float
    ) -> None:
        """(h): home receives a ROnly_update."""
        table = self._tables[entry.decl.name]
        if table.priv[index]:
            self._fail(
                "race between a ROnly_update and a write",
                entry.decl.name, index, now, proc,
            )
            return
        bus = self.ctx.spec_bus()
        snap = (
            self._dir_snapshot(entry.decl.name, index)
            if bus is not None
            else None
        )
        # Race between two ROnly_updates needs no bounce: the second
        # message is plainly ignored (the sender's tag is already right).
        table.ronly[index] = True
        if bus is not None:
            self._emit_dir_update(
                bus, now, entry.decl.name, index, proc, "ronly-update", snap
            )

    # ------------------------------------------------------------------
    def _fail(
        self, reason: str, array: str, index: int, now: float, proc: int
    ) -> None:
        self.ctx.controller.fail(
            f"non-privatization: {reason}",
            element=(array, index),
            detected_at=now,
            processor=proc,
        )


class BatchNonPrivProtocol(NonPrivProtocol):
    """Batch-engine variant: one whole-line tag block per cache line
    instead of one tag object per word.

    Only the tag-side *representation* changes; every directory-side
    method (and therefore every failure condition, message, counter and
    telemetry event) is inherited unchanged, so scalar and batch runs
    stay observably identical.  The block stores the directory's raw
    First ids; a processor reads its 2-bit summary out of them (NONE iff
    ``NO_PROC``, OWN iff its own id, OTHER otherwise), exactly matching
    what :meth:`NonPrivProtocol.tag_fill` would have materialized.
    """

    def _default_block(self, entry: RangeEntry, line_addr: int) -> NonPrivTagBlock:
        """All-clear tags for a line filled while speculation was off
        (the scalar path lazily creates default ``NonPrivTagBits``)."""
        decl = entry.decl
        first = max(0, (line_addr - decl.base) // decl.elem_bytes)
        span = self.ctx.params.elems_per_line(decl.elem_bytes)
        count = max(0, min(span, decl.length - first))
        return NonPrivTagBlock(
            first, [NO_PROC] * count, [False] * count, [False] * count
        )

    def _block_of(self, line, entry: RangeEntry) -> NonPrivTagBlock:
        block = line.spec_bits.get(BLOCK_KEY)
        if block is None:
            block = self._default_block(entry, line.line_addr)
            line.spec_bits[BLOCK_KEY] = block
        return block

    def fill_line(
        self, proc: int, line, entry: RangeEntry, first: int, count: int
    ) -> None:
        table = self._tables[entry.decl.name]
        end = first + count
        line.spec_bits[BLOCK_KEY] = NonPrivTagBlock(
            first,
            table.first[first:end].tolist(),
            table.priv[first:end].tolist(),
            table.ronly[first:end].tolist(),
        )

    def on_cache_hit(
        self,
        proc: int,
        line,
        entry: RangeEntry,
        index: int,
        offset: int,
        kind: AccessKind,
        now: float,
    ) -> None:
        self.ctx.stats.tag_checks += 1
        block = self._block_of(line, entry)
        k = index - block.first_index
        owner = block.owners[k]
        name = entry.decl.name
        if kind is AccessKind.READ:
            if owner != NO_PROC and owner != proc:  # OTHER
                if block.privs[k]:
                    self._fail(
                        "read of element written by another processor (tag)",
                        name, index, now, proc,
                    )
                    return
                if not block.ronlys[k]:
                    block.ronlys[k] = True
                    block.touched = True
                    if line.state is not LineState.DIRTY:
                        self._send_ronly_update(proc, entry, index, now)
            elif owner == NO_PROC:
                block.owners[k] = proc
                block.touched = True
                if line.state is not LineState.DIRTY:
                    self._send_first_update(proc, entry, index, now)
        else:
            if (owner != NO_PROC and owner != proc) or block.ronlys[k]:
                self._fail(
                    "write to element read/written by another processor (tag)",
                    name, index, now, proc,
                )
                return
            block.owners[k] = proc
            block.privs[k] = True
            block.touched = True

    def _cache_first_update_fail(
        self, proc: int, entry: RangeEntry, index: int, now: float
    ) -> None:
        """(g) against the block representation."""
        memsys = self.ctx.memsys
        if memsys is None:
            return
        elem_addr = entry.decl.addr_of(index)
        line_addr = self.ctx.space.line_addr(elem_addr)
        _, line = memsys.caches[proc].probe(line_addr)
        if line is None:
            return
        block = self._block_of(line, entry)
        k = index - block.first_index
        if block.owners[k] == proc and block.privs[k]:
            self._fail(
                "race between two First_updates: processor read and "
                "then wrote before losing the race",
                entry.decl.name, index, now, proc,
            )
            return
        block.owners[k] = OTHER_PROC
        block.ronlys[k] = True
        block.touched = True

    def merge_line(
        self,
        proc: int,
        line,
        entry: RangeEntry,
        first: int,
        count: int,
        now: float,
    ) -> None:
        block = line.spec_bits.get(BLOCK_KEY)
        if block is None or not block.touched:
            # An untouched block holds only directory-inherited state:
            # First == OTHER carries no information, re-merging an
            # inherited OWN or ROnly is idempotent, and the directory's
            # First field is write-once (NO_PROC -> p, then immutable),
            # so an inherited OWN cannot conflict later.  Skipping the
            # per-word walk wholesale is the batch engine's main
            # writeback saving.
            return
        owners = block.owners
        privs = block.privs
        ronlys = block.ronlys
        base_index = block.first_index
        for k in range(len(owners)):
            own = owners[k] == proc
            ronly = ronlys[k]
            if not own and not ronly:
                continue  # scalar merge of such a word is a no-op
            self._merge_word(
                proc, entry, base_index + k, own, privs[k], ronly, now
            )


# ----------------------------------------------------------------------
# Whole-phase kernel (the vector engine)
# ----------------------------------------------------------------------
def nonpriv_vector_verdict(
    procs, elems, writes, length: int
) -> "Tuple[bool, object, object, object]":
    """Fold the whole loop's non-privatization test into reductions.

    ``procs``/``elems``/``writes`` are one row per access to the array
    (meta-element indexes in the per-line-bit mode), in per-processor
    program order.  The element-wise FAIL condition of §3.2 — neither
    read-only nor accessed by a single processor — reduces to *touched
    by two or more distinct processors and written at least once*; the
    scalar protocol detects exactly those elements, through whichever of
    the Fig 6/7 paths the interleaving takes (tag check, directory
    check, First_update race or writeback merge at the loop-end commit).

    Returns ``(passed, first, priv, ronly)`` where the three arrays are
    the directory-table end state for a passing run: ``first`` is the
    processor of each element's earliest access in row order, ``priv``
    marks written elements and ``ronly`` elements read by two or more
    processors.  (On FAIL the vector tier re-runs the case op-by-op for
    exact attribution, so the fill arrays are unused.)
    """
    import numpy as np

    from .accessbits import distinct_procs, scatter_or

    nproc = distinct_procs(procs, elems, length)
    written = scatter_or(elems[writes], length)
    passed = not bool(((nproc >= 2) & written).any())
    first = np.full(length, NO_PROC, dtype=np.int32)
    if len(elems):
        n = len(elems)
        order = np.lexsort((np.arange(n), elems))
        e = elems[order]
        head = np.empty(n, dtype=bool)
        head[0] = True
        head[1:] = e[1:] != e[:-1]
        first[e[head]] = procs[order[head]]
    ronly = (nproc >= 2) & ~written
    return passed, first, written, ronly


def nonpriv_vector_fail_candidates(procs, elems, writes, length: int):
    """Element indexes (meta-element indexes in the per-line-bit mode)
    that fail the non-privatization test: touched by two or more
    distinct processors and written at least once.  The scalar
    protocol's FAIL is always attributed to one of these, so the vector
    tier's exact-attribution replay cross-checks against this set."""
    import numpy as np

    from .accessbits import distinct_procs, scatter_or

    nproc = distinct_procs(procs, elems, length)
    written = scatter_or(elems[writes], length)
    return np.nonzero((nproc >= 2) & written)[0]
