"""The privatization algorithms (paper §3.3, Figures 8 and 9, plus the
reduced-state variant of §4.1 / Figure 5-(b)).

Under privatization, each processor works on a private copy of the
array under test.  The shared array's home directory keeps two time
stamps per element — ``MaxR1st`` (highest read-first iteration executed
so far by any processor) and ``MinW`` (lowest iteration executed so far
that wrote the element) — and the parallelization FAILs whenever
``MaxR1st > MinW`` would become true.  The private copies' directories
keep ``PMaxR1st``/``PMaxW`` per processor, and the cache tags keep two
bits, ``Read1st`` and ``Write``, cleared at the start of each iteration
(modeled with epoch numbers; see
:class:`~repro.core.accessbits.PrivTagBits`).

Full variant (read-in / copy-out supported) method map:

========================================  ==============================
paper                                     here
========================================  ==============================
(a) processor read (hit)                  :meth:`on_cache_hit` (READ)
(b) private dir gets read-first signal    :meth:`_private_read_first`
(c) private dir gets read request         :meth:`on_dir_access` (READ)
(d) shared dir gets read-first signal     :meth:`_shared_read_first`
(e) shared dir gets read-in request       inline in :meth:`_read_in`
(f) processor write (hit)                 :meth:`on_cache_hit` (WRITE)
(g) private dir gets first-write signal   :meth:`_private_first_write`
(h) private dir gets write request        :meth:`on_dir_access` (WRITE)
(i) shared dir gets first-write signal    :meth:`_shared_first_write`
(j) shared dir gets read-in-req for write inline in :meth:`_read_in`
========================================  ==============================

The simple variant (:class:`PrivSimpleProtocol`) drops the time stamps:
the private directory keeps per-iteration ``Read1st``/``Write`` bits
plus a sticky ``WriteAny``; the shared directory keeps sticky
``AnyR1st``/``AnyW`` bits and FAILs when both would be set for an
element.  Without read-in hardware, a read of an element this processor
never wrote is served from the *shared* copy (which stays read-only for
the whole loop if the test is to pass).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..address import ArrayDecl
from ..obs.events import PrivDirUpdateEvent, PrivSimpleDirUpdateEvent
from ..types import AccessKind
from .accessbits import (
    BLOCK_KEY,
    NO_ITER,
    PrivPrivateDirTable,
    PrivSharedDirTable,
    PrivSimplePrivateTable,
    PrivSimpleSharedTable,
    PrivTagBits,
    PrivTagBlock,
)
from .context import ProtocolContext
from .translation import RangeEntry


class PrivProtocol:
    """Full privatization protocol with read-in and copy-out support."""

    def __init__(self, ctx: ProtocolContext) -> None:
        self.ctx = ctx
        self._shared: Dict[str, PrivSharedDirTable] = {}
        self._private: Dict[Tuple[str, int], PrivPrivateDirTable] = {}
        self._shared_decls: Dict[str, ArrayDecl] = {}
        #: current time-stamp epoch (§3.3); bumped at every epoch sync
        self.epoch = 0

    # ------------------------------------------------------------------
    def register(self, shared_decl: ArrayDecl, num_processors: int) -> None:
        name = shared_decl.name
        self._shared[name] = PrivSharedDirTable(shared_decl.length)
        self._shared_decls[name] = shared_decl
        for proc in range(num_processors):
            self._private[(name, proc)] = PrivPrivateDirTable(shared_decl.length)

    def clear(self) -> None:
        self.epoch = 0
        for table in self._shared.values():
            table.clear()
        for table in self._private.values():
            table.clear()

    def epoch_sync(self) -> None:
        """§3.3: time stamps would overflow — reset them.  Writes from
        completed epochs survive as the ``written_past`` bit; private
        per-processor stamps restart from zero."""
        self.epoch += 1
        for table in self._shared.values():
            table.epoch_reset()
        for table in self._private.values():
            table.clear()

    def shared_table(self, name: str) -> PrivSharedDirTable:
        return self._shared[name]

    def private_table(self, name: str, proc: int) -> PrivPrivateDirTable:
        return self._private[(name, proc)]

    # ------------------------------------------------------------------
    # Shared-directory telemetry (guarded by bus.wants_spec)
    # ------------------------------------------------------------------
    def _shared_snapshot(self, name: str, index: int):
        table = self._shared[name]
        return int(table.max_r1st[index]), table.min_w_of(index)

    def _emit_shared_update(
        self, bus, now: float, name: str, index: int, proc: int,
        iteration: int, cause: str, snap,
    ) -> None:
        after = self._shared_snapshot(name, index)
        if after != snap:
            bus.emit(
                PrivDirUpdateEvent(
                    now, name, index, proc, iteration, cause,
                    snap[0], snap[1], after[0], after[1],
                )
            )

    # ------------------------------------------------------------------
    # Tag-side logic (Fig 8-(a), Fig 9-(f))
    # ------------------------------------------------------------------
    def on_cache_hit(
        self,
        proc: int,
        line,
        entry: RangeEntry,
        index: int,
        offset: int,
        kind: AccessKind,
        iteration: int,
        now: float,
    ) -> None:
        self.ctx.stats.tag_checks += 1
        bits = line.get_bits(offset)
        if not isinstance(bits, PrivTagBits):
            bits = PrivTagBits()
            line.set_bits(offset, bits)
        name = entry.shared_name or entry.decl.name
        read1st, wrote = bits.get(iteration)
        if kind is AccessKind.READ:
            if not read1st and not wrote:
                bits.set_for(iteration, read1st=True)
                self._send_read_first_signal(proc, name, index, iteration, now)
        else:
            if not wrote:
                bits.set_for(iteration, write=True)
                self._send_first_write_signal(proc, name, index, iteration, now)

    # ------------------------------------------------------------------
    # Private-directory logic on data requests (Fig 8-(c), Fig 9-(h))
    # ------------------------------------------------------------------
    def on_dir_access(
        self,
        proc: int,
        entry: RangeEntry,
        index: int,
        kind: AccessKind,
        iteration: int,
        line_first: int,
        line_count: int,
        now: float,
    ) -> int:
        self.ctx.stats.dir_checks += 1
        name = entry.shared_name or entry.decl.name
        table = self._private[(name, proc)]
        extra = 0
        if kind is AccessKind.READ:
            if table.line_untouched(line_first, line_count):
                # Read-in: populate the private line from the shared copy.
                extra = self._read_in(proc, name, index, iteration, now, for_write=False)
                table.pmax_r1st[index] = iteration
            elif (
                int(table.pmax_r1st[index]) < iteration
                and int(table.pmax_w[index]) < iteration
            ):
                # Read-first for this element in this iteration.
                self._forward_read_first(proc, name, index, iteration, now)
                table.pmax_r1st[index] = iteration
            # else: plain refetch of already-tracked data.
        else:
            pmax_w = int(table.pmax_w[index])
            if pmax_w == NO_ITER:
                # Very first write by this processor to this element.
                if table.line_untouched(line_first, line_count):
                    extra = self._read_in(proc, name, index, iteration, now, for_write=True)
                else:
                    self._forward_first_write(proc, name, index, iteration, now)
                table.pmax_w[index] = iteration
            elif pmax_w < iteration:
                table.pmax_w[index] = iteration
        return extra

    # ------------------------------------------------------------------
    # Tag fill: derive Read1st/Write from the private directory state
    # ------------------------------------------------------------------
    def tag_fill(
        self, proc: int, entry: RangeEntry, index: int, iteration: int
    ) -> PrivTagBits:
        name = entry.shared_name or entry.decl.name
        table = self._private[(name, proc)]
        read1st = int(table.pmax_r1st[index]) == iteration
        wrote = int(table.pmax_w[index]) == iteration
        if read1st or wrote:
            return PrivTagBits(read1st, wrote, iteration)
        return PrivTagBits()

    def fill_line(
        self, proc: int, line, entry: RangeEntry, first: int, count: int,
        iteration: int,
    ) -> None:
        """Copy directory state into a line's tags on a fetch/upgrade."""
        decl = entry.decl
        base = decl.base
        elem_bytes = decl.elem_bytes
        line_addr = line.line_addr
        spec_bits = line.spec_bits
        for index in range(first, first + count):
            offset = base + index * elem_bytes - line_addr
            spec_bits[offset] = self.tag_fill(proc, entry, index, iteration)

    # ------------------------------------------------------------------
    # Signals: cache -> private directory (Figs 8-(b), 9-(g))
    # ------------------------------------------------------------------
    def _send_read_first_signal(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        self.ctx.stats.read_first_signals += 1
        self.ctx.log_message(now, "read-first", proc, name, index, iteration)
        node = self.ctx.params.node_of_processor(proc)
        # The private copy is homed at the processor's node: local hop.
        self.ctx.scheduler.post(
            now + self.ctx.local_msg_delay(),
            lambda t: self._private_read_first(proc, name, index, iteration, t),
        )

    def _private_read_first(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        """(b): the private directory learns of a read-first iteration."""
        if self.ctx.controller.failed:
            return
        table = self._private[(name, proc)]
        table.pmax_r1st[index] = max(int(table.pmax_r1st[index]), iteration)
        self._forward_read_first(proc, name, index, iteration, now)

    def _send_first_write_signal(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        self.ctx.stats.first_write_signals += 1
        self.ctx.log_message(now, "first-write", proc, name, index, iteration)
        self.ctx.scheduler.post(
            now + self.ctx.local_msg_delay(),
            lambda t: self._private_first_write(proc, name, index, iteration, t),
        )

    def _private_first_write(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        """(g): the private directory learns of a first write in an
        iteration; forwards to the shared directory only for the first
        write in the whole loop (later iterations can only raise MinW)."""
        if self.ctx.controller.failed:
            return
        table = self._private[(name, proc)]
        pmax_w = int(table.pmax_w[index])
        if pmax_w == NO_ITER:
            table.pmax_w[index] = iteration
            self._forward_first_write(proc, name, index, iteration, now)
        elif pmax_w < iteration:
            table.pmax_w[index] = iteration

    # ------------------------------------------------------------------
    # Signals: private directory -> shared directory (Figs 8-(d), 9-(i))
    # ------------------------------------------------------------------
    def _forward_read_first(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        self.ctx.stats.shared_signals += 1
        decl = self._shared_decls[name]
        node = self.ctx.params.node_of_processor(proc)
        self.ctx.send_to_directory(
            decl.addr_of(index),
            node,
            now,
            lambda t: self._shared_read_first(proc, name, index, iteration, t),
        )

    def _shared_read_first(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        """(d): FAIL if a lower-numbered iteration already wrote."""
        table = self._shared[name]
        if bool(table.written_past[index]):
            self._fail(
                "read-first of element written in an earlier time-stamp epoch",
                name, index, now, proc, iteration,
            )
            return
        min_w = table.min_w_of(index)
        if min_w is not None and iteration > min_w:
            self._fail(
                f"read-first in iteration {iteration} of element written "
                f"in earlier iteration {min_w}",
                name, index, now, proc, iteration,
            )
            return
        bus = self.ctx.spec_bus()
        snap = self._shared_snapshot(name, index) if bus is not None else None
        table.note_read_first(index, iteration)
        if bus is not None:
            self._emit_shared_update(
                bus, now, name, index, proc, iteration, "read-first", snap
            )

    def _forward_first_write(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        self.ctx.stats.shared_signals += 1
        decl = self._shared_decls[name]
        node = self.ctx.params.node_of_processor(proc)
        self.ctx.send_to_directory(
            decl.addr_of(index),
            node,
            now,
            lambda t: self._shared_first_write(proc, name, index, iteration, t),
        )

    def _shared_first_write(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        """(i): FAIL if a higher-numbered iteration already read-first."""
        table = self._shared[name]
        max_r1st = int(table.max_r1st[index])
        if iteration < max_r1st:
            self._fail(
                f"write in iteration {iteration} of element read-first "
                f"in later iteration {max_r1st}",
                name, index, now, proc, iteration,
            )
            return
        bus = self.ctx.spec_bus()
        snap = self._shared_snapshot(name, index) if bus is not None else None
        table.note_write(index, iteration, proc, self.epoch)
        if bus is not None:
            self._emit_shared_update(
                bus, now, name, index, proc, iteration, "first-write", snap
            )

    # ------------------------------------------------------------------
    # Read-in (Figs 8-(e), 9-(j)): blocking fetch from the shared copy
    # ------------------------------------------------------------------
    def _read_in(
        self, proc: int, name: str, index: int, iteration: int, now: float,
        for_write: bool,
    ) -> int:
        self.ctx.stats.read_ins += 1
        self.ctx.log_message(
            now, "read-in-for-write" if for_write else "read-in", proc, name,
            index, iteration,
        )
        decl = self._shared_decls[name]
        elem_addr = decl.addr_of(index)
        shared_home = self.ctx.space.home_node(elem_addr)
        my_node = self.ctx.params.node_of_processor(proc)
        lat = self.ctx.params.latency
        if shared_home == my_node:
            latency = lat.local_mem
        else:
            latency = lat.remote_2hop
        queue = 0
        if self.ctx.memsys is not None:
            arrival = now + self.ctx.dir_to_dir_delay(my_node, shared_home)
            queue = self.ctx.memsys.directories[shared_home].occupy(arrival)

        table = self._shared[name]
        check_time = now + self.ctx.dir_to_dir_delay(my_node, shared_home) + queue
        bus = self.ctx.spec_bus()
        snap = self._shared_snapshot(name, index) if bus is not None else None
        if for_write:
            # (j): read-in-req for write.
            max_r1st = int(table.max_r1st[index])
            if iteration < max_r1st:
                self._fail(
                    f"write in iteration {iteration} of element read-first "
                    f"in later iteration {max_r1st} (read-in for write)",
                    name, index, check_time, proc, iteration,
                )
            else:
                table.note_write(index, iteration, proc, self.epoch)
                if bus is not None:
                    self._emit_shared_update(
                        bus, check_time, name, index, proc, iteration,
                        "read-in-for-write", snap,
                    )
        else:
            # (e): plain read-in request.
            min_w = table.min_w_of(index)
            if bool(table.written_past[index]):
                self._fail(
                    "read-first of element written in an earlier time-stamp "
                    "epoch (read-in)",
                    name, index, check_time, proc, iteration,
                )
            elif min_w is not None and iteration > min_w:
                self._fail(
                    f"read-first in iteration {iteration} of element written "
                    f"in earlier iteration {min_w} (read-in)",
                    name, index, check_time, proc, iteration,
                )
            else:
                table.note_read_first(index, iteration)
                if bus is not None:
                    self._emit_shared_update(
                        bus, check_time, name, index, proc, iteration,
                        "read-in", snap,
                    )
        return latency + queue

    # ------------------------------------------------------------------
    def copy_out_elements(self, name: str) -> int:
        """Number of elements holding a last-written value that must be
        copied from private to shared storage after the loop (§2.2.3)."""
        table = self._shared[name]
        return int((table.last_w_proc >= 0).sum())

    def _fail(
        self, reason: str, array: str, index: int, now: float, proc: int,
        iteration: int,
    ) -> None:
        self.ctx.controller.fail(
            f"privatization: {reason}",
            element=(array, index),
            detected_at=now,
            processor=proc,
            iteration=iteration,
        )


class PrivSimpleProtocol:
    """Reduced-state privatization (no read-in/copy-out; §4.1, Fig 5-(b)).

    The private directory keeps per-iteration ``Read1st``/``Write`` bits
    and a sticky ``WriteAny`` bit per element; the shared directory
    keeps sticky ``AnyR1st``/``AnyW`` bits.  The test FAILs as soon as
    any element has both a read-first iteration and a write anywhere in
    the loop — the on-the-fly analogue of the software test's
    ``any(Aw & Anp)`` condition.
    """

    def __init__(self, ctx: ProtocolContext) -> None:
        self.ctx = ctx
        self._shared: Dict[str, PrivSimpleSharedTable] = {}
        self._private: Dict[Tuple[str, int], PrivSimplePrivateTable] = {}
        self._shared_decls: Dict[str, ArrayDecl] = {}

    # ------------------------------------------------------------------
    def register(self, shared_decl: ArrayDecl, num_processors: int) -> None:
        name = shared_decl.name
        self._shared[name] = PrivSimpleSharedTable(shared_decl.length)
        self._shared_decls[name] = shared_decl
        for proc in range(num_processors):
            self._private[(name, proc)] = PrivSimplePrivateTable(shared_decl.length)

    def clear(self) -> None:
        for table in self._shared.values():
            table.clear()
        for table in self._private.values():
            table.clear()

    def shared_table(self, name: str) -> PrivSimpleSharedTable:
        return self._shared[name]

    def private_table(self, name: str, proc: int) -> PrivSimplePrivateTable:
        return self._private[(name, proc)]

    def written_by(self, name: str, proc: int, index: int) -> bool:
        """Whether ``proc`` ever wrote element ``index`` (routes reads to
        the private or the shared copy; see module docstring)."""
        return bool(self._private[(name, proc)].write_any[index])

    # ------------------------------------------------------------------
    def on_cache_hit(
        self,
        proc: int,
        line,
        entry: RangeEntry,
        index: int,
        offset: int,
        kind: AccessKind,
        iteration: int,
        now: float,
    ) -> None:
        self.ctx.stats.tag_checks += 1
        bits = line.get_bits(offset)
        if not isinstance(bits, PrivTagBits):
            bits = PrivTagBits()
            line.set_bits(offset, bits)
        name = entry.shared_name or entry.decl.name
        read1st, wrote = bits.get(iteration)
        if kind is AccessKind.READ:
            if not read1st and not wrote:
                bits.set_for(iteration, read1st=True)
                self._send_read_signal(proc, name, index, iteration, now)
        else:
            if not wrote:
                bits.set_for(iteration, write=True)
                self._send_write_signal(proc, name, index, iteration, now)

    def on_dir_access(
        self,
        proc: int,
        entry: RangeEntry,
        index: int,
        kind: AccessKind,
        iteration: int,
        line_first: int,
        line_count: int,
        now: float,
    ) -> int:
        """A miss behaves like a hit whose signal originates at the
        directory; there is no read-in in this variant."""
        self.ctx.stats.dir_checks += 1
        name = entry.shared_name or entry.decl.name
        table = self._private[(name, proc)]
        read1st, wrote = table.get(index, iteration)
        if kind is AccessKind.READ:
            if not read1st and not wrote:
                self._send_read_signal(proc, name, index, iteration, now)
        else:
            if not wrote:
                self._send_write_signal(proc, name, index, iteration, now)
        return 0

    def tag_fill(
        self, proc: int, entry: RangeEntry, index: int, iteration: int
    ) -> PrivTagBits:
        name = entry.shared_name or entry.decl.name
        read1st, wrote = self._private[(name, proc)].get(index, iteration)
        if read1st or wrote:
            return PrivTagBits(read1st, wrote, iteration)
        return PrivTagBits()

    def fill_line(
        self, proc: int, line, entry: RangeEntry, first: int, count: int,
        iteration: int,
    ) -> None:
        """Copy directory state into a line's tags on a fetch/upgrade."""
        decl = entry.decl
        base = decl.base
        elem_bytes = decl.elem_bytes
        line_addr = line.line_addr
        spec_bits = line.spec_bits
        for index in range(first, first + count):
            offset = base + index * elem_bytes - line_addr
            spec_bits[offset] = self.tag_fill(proc, entry, index, iteration)

    # ------------------------------------------------------------------
    def _send_read_signal(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        self.ctx.stats.read_first_signals += 1
        self.ctx.log_message(now, "read-first", proc, name, index, iteration)
        self.ctx.scheduler.post(
            now + self.ctx.local_msg_delay(),
            lambda t: self._private_read(proc, name, index, iteration, t),
        )

    def _private_read(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        if self.ctx.controller.failed:
            return
        table = self._private[(name, proc)]
        read1st, wrote = table.get(index, iteration)
        if wrote or read1st:
            return  # covered or already signaled this iteration
        if bool(table.write_any[index]):
            # Read-first of an element this processor wrote in an earlier
            # iteration: detectable locally, no shared transaction needed.
            self._fail(
                "read-first of element written in an earlier iteration "
                "(local WriteAny)",
                name, index, now, proc, iteration,
            )
            return
        table.set_for(index, iteration, read1st=True)
        self._forward(proc, name, index, iteration, now, is_write=False)

    def _send_write_signal(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        self.ctx.stats.first_write_signals += 1
        self.ctx.log_message(now, "first-write", proc, name, index, iteration)
        self.ctx.scheduler.post(
            now + self.ctx.local_msg_delay(),
            lambda t: self._private_write(proc, name, index, iteration, t),
        )

    def _private_write(
        self, proc: int, name: str, index: int, iteration: int, now: float
    ) -> None:
        if self.ctx.controller.failed:
            return
        table = self._private[(name, proc)]
        _, wrote = table.get(index, iteration)
        if wrote:
            return
        was_any = bool(table.write_any[index])
        table.set_for(index, iteration, write=True)
        if not was_any:
            self._forward(proc, name, index, iteration, now, is_write=True)

    def _forward(
        self, proc: int, name: str, index: int, iteration: int, now: float,
        is_write: bool,
    ) -> None:
        self.ctx.stats.shared_signals += 1
        decl = self._shared_decls[name]
        node = self.ctx.params.node_of_processor(proc)
        self.ctx.send_to_directory(
            decl.addr_of(index),
            node,
            now,
            lambda t: self._shared_update(proc, name, index, iteration, t, is_write),
        )

    def _shared_update(
        self, proc: int, name: str, index: int, iteration: int, now: float,
        is_write: bool,
    ) -> None:
        table = self._shared[name]
        bus = self.ctx.spec_bus()
        snap = (
            (bool(table.any_r1st[index]), bool(table.any_w[index]))
            if bus is not None
            else None
        )
        if is_write:
            table.any_w[index] = True
            if table.any_r1st[index]:
                self._fail(
                    "element both read-first and written (AnyW after AnyR1st)",
                    name, index, now, proc, iteration,
                )
        else:
            table.any_r1st[index] = True
            if table.any_w[index]:
                self._fail(
                    "element both read-first and written (AnyR1st after AnyW)",
                    name, index, now, proc, iteration,
                )
        if bus is not None:
            after = (bool(table.any_r1st[index]), bool(table.any_w[index]))
            if after != snap:
                bus.emit(
                    PrivSimpleDirUpdateEvent(
                        now, name, index, proc, iteration,
                        "write" if is_write else "read-first",
                        snap[0], snap[1], after[0], after[1],
                    )
                )

    def _fail(
        self, reason: str, array: str, index: int, now: float, proc: int,
        iteration: int,
    ) -> None:
        self.ctx.controller.fail(
            f"privatization-simple: {reason}",
            element=(array, index),
            detected_at=now,
            processor=proc,
            iteration=iteration,
        )


# ----------------------------------------------------------------------
# Batch-engine variants: whole-line tag blocks instead of per-word
# objects.  Only the tag representation changes — the signal chains,
# directory updates and failure conditions are inherited unchanged.
# ----------------------------------------------------------------------
class _BatchPrivTagMixin:
    """Tag-side block logic shared by both privatization variants."""

    def _default_block(self, entry: RangeEntry, line_addr: int) -> PrivTagBlock:
        decl = entry.decl
        first = max(0, (line_addr - decl.base) // decl.elem_bytes)
        span = self.ctx.params.elems_per_line(decl.elem_bytes)
        count = max(0, min(span, decl.length - first))
        return PrivTagBlock(
            first, [False] * count, [False] * count, [-1] * count
        )

    def on_cache_hit(
        self,
        proc: int,
        line,
        entry: RangeEntry,
        index: int,
        offset: int,
        kind: AccessKind,
        iteration: int,
        now: float,
    ) -> None:
        self.ctx.stats.tag_checks += 1
        block = line.spec_bits.get(BLOCK_KEY)
        if block is None:
            block = self._default_block(entry, line.line_addr)
            line.spec_bits[BLOCK_KEY] = block
        k = index - block.first_index
        if block.epochs[k] == iteration:
            read1st = block.read1sts[k]
            wrote = block.writes[k]
        else:
            read1st = wrote = False
        name = entry.shared_name or entry.decl.name
        if kind is AccessKind.READ:
            if not read1st and not wrote:
                if block.epochs[k] != iteration:
                    block.writes[k] = False
                    block.epochs[k] = iteration
                block.read1sts[k] = True
                self._hit_read_signal(proc, name, index, iteration, now)
        else:
            if not wrote:
                if block.epochs[k] != iteration:
                    block.read1sts[k] = False
                    block.epochs[k] = iteration
                block.writes[k] = True
                self._hit_write_signal(proc, name, index, iteration, now)


class BatchPrivProtocol(_BatchPrivTagMixin, PrivProtocol):
    def fill_line(
        self, proc: int, line, entry: RangeEntry, first: int, count: int,
        iteration: int,
    ) -> None:
        name = entry.shared_name or entry.decl.name
        table = self._private[(name, proc)]
        end = first + count
        read1sts = (table.pmax_r1st[first:end] == iteration).tolist()
        writes = (table.pmax_w[first:end] == iteration).tolist()
        epochs = [
            iteration if (r or w) else -1 for r, w in zip(read1sts, writes)
        ]
        line.spec_bits[BLOCK_KEY] = PrivTagBlock(first, read1sts, writes, epochs)

    def _hit_read_signal(self, proc, name, index, iteration, now):
        self._send_read_first_signal(proc, name, index, iteration, now)

    def _hit_write_signal(self, proc, name, index, iteration, now):
        self._send_first_write_signal(proc, name, index, iteration, now)


class BatchPrivSimpleProtocol(_BatchPrivTagMixin, PrivSimpleProtocol):
    def fill_line(
        self, proc: int, line, entry: RangeEntry, first: int, count: int,
        iteration: int,
    ) -> None:
        name = entry.shared_name or entry.decl.name
        table = self._private[(name, proc)]
        end = first + count
        valid = table.epoch[first:end] == iteration
        read1sts = (table.read1st[first:end] & valid).tolist()
        writes = (table.write[first:end] & valid).tolist()
        epochs = [
            iteration if (r or w) else -1 for r, w in zip(read1sts, writes)
        ]
        line.spec_bits[BLOCK_KEY] = PrivTagBlock(first, read1sts, writes, epochs)

    def _hit_read_signal(self, proc, name, index, iteration, now):
        self._send_read_signal(proc, name, index, iteration, now)

    def _hit_write_signal(self, proc, name, index, iteration, now):
        self._send_write_signal(proc, name, index, iteration, now)


# ----------------------------------------------------------------------
# Whole-phase kernels (the vector engine)
#
# One row per access (per-processor program order).  ``virts`` are *raw*
# chunk ordinals spanning the whole loop; with ``timestamp_bits`` the
# scalar engine numbers each epoch's iterations effectively
# (``eff = ((virt-1) % capacity) + 1``) and resets ``MaxR1st``/``MinW``
# at every epoch barrier, carrying earlier writes as the sticky
# ``written_past`` bit.  Comparing raw ordinals is equivalent: within an
# epoch both orderings agree, and a read-first in a later epoch than any
# write has a strictly greater raw ordinal — exactly the
# ``written_past`` FAIL.
# ----------------------------------------------------------------------
def priv_vector_verdict(rf_rows, virts, elems, writes, length: int) -> bool:
    """One ``MaxR1st > MinW`` mask for the whole phase (§3.3)."""
    import numpy as np

    from .accessbits import scatter_max, scatter_min

    big = np.int64(2**62)
    max_r1st = scatter_max(virts[rf_rows], elems[rf_rows], length)
    min_w = scatter_min(virts[writes], elems[writes], length, fill=int(big))
    return not bool((max_r1st > min_w).any())


def priv_vector_fail_candidates(rf_rows, virts, elems, writes, length: int):
    """Element indexes whose ``MaxR1st > MinW`` mask is set — the set
    the scalar privatization FAIL is always attributed to."""
    import numpy as np

    from .accessbits import scatter_max, scatter_min

    big = np.int64(2**62)
    max_r1st = scatter_max(virts[rf_rows], elems[rf_rows], length)
    min_w = scatter_min(virts[writes], elems[writes], length, fill=int(big))
    return np.nonzero(max_r1st > min_w)[0]


def priv_vector_fill_tables(
    shared, privates, procs, rf_rows, virts, elems, writes, epochs, effs,
) -> None:
    """Fill one array's :class:`PrivSharedDirTable` and per-processor
    :class:`PrivPrivateDirTable` list with the end state of a passing
    run (see :func:`priv_vector_verdict` for the row conventions)."""
    import numpy as np

    from .accessbits import last_row_per_group, scatter_max, scatter_min

    length = shared.length
    final = int(epochs.max()) if len(epochs) else 0
    in_final = epochs == final
    rf_final = rf_rows & in_final
    w_final = writes & in_final
    big = np.int64(2**62)
    shared.max_r1st[:] = scatter_max(effs[rf_final], elems[rf_final], length)
    min_w = scatter_min(effs[w_final], elems[w_final], length, fill=int(big))
    min_w[min_w == big] = NO_ITER
    shared.min_w[:] = min_w
    shared.written_past[:] = False
    past_w = writes & ~in_final
    shared.written_past[elems[past_w]] = True

    shared.last_w_iter[:] = 0
    shared.last_w_epoch[:] = 0
    shared.last_w_proc[:] = -1
    if writes.any():
        we, wp = elems[writes], procs[writes]
        # Last write per element under the scalar ordering key
        # (epoch, effective iteration): ties on the key keep the row
        # encountered first, matching ``note_write``'s >= update rule
        # applied in per-processor program order only for the
        # *attribution* fields (timing is out of the relaxed contract).
        stamp = epochs[writes] * np.int64(2**32) + effs[writes]
        pick = last_row_per_group(we.astype(np.int64), stamp)
        shared.last_w_epoch[we[pick]] = epochs[writes][pick]
        shared.last_w_iter[we[pick]] = effs[writes][pick]
        shared.last_w_proc[we[pick]] = wp[pick]

    for proc, table in enumerate(privates):
        mine = (procs == proc) & in_final
        table.pmax_r1st[:] = scatter_max(
            effs[rf_rows & mine], elems[rf_rows & mine], length
        )
        table.pmax_w[:] = scatter_max(
            effs[writes & mine], elems[writes & mine], length
        )


def priv_simple_vector_verdict(rf_rows, elems, writes, length: int) -> bool:
    """Reduced-state variant (§4.1): FAIL iff any element has both a
    read-first event and a write anywhere in the loop."""
    from .accessbits import scatter_or

    any_r1st = scatter_or(elems[rf_rows], length)
    any_w = scatter_or(elems[writes], length)
    return not bool((any_r1st & any_w).any())


def priv_simple_vector_fail_candidates(rf_rows, elems, writes, length: int):
    """Element indexes with both a read-first event and a write — the
    reduced-state FAIL set the scalar attribution always lands in."""
    import numpy as np

    from .accessbits import scatter_or

    any_r1st = scatter_or(elems[rf_rows], length)
    any_w = scatter_or(elems[writes], length)
    return np.nonzero(any_r1st & any_w)[0]


def priv_simple_vector_fill_tables(
    shared, privates, procs, rf_rows, virts, elems, writes
) -> None:
    """Fill one array's :class:`PrivSimpleSharedTable` and per-processor
    :class:`PrivSimplePrivateTable` list for a passing run."""
    import numpy as np

    from .accessbits import last_row_per_group, scatter_or

    length = shared.length
    shared.any_r1st[:] = scatter_or(elems[rf_rows], length)
    shared.any_w[:] = scatter_or(elems[writes], length)
    for proc, table in enumerate(privates):
        mine = procs == proc
        table.write_any[:] = scatter_or(elems[writes & mine], length)
        table.read1st[:] = False
        table.write[:] = False
        table.epoch[:] = -1
        # Per-iteration bits: the last (element, iteration) group of this
        # processor that sent a signal (a read-first or a write) leaves
        # its bits valid for that iteration.
        ev = mine & (rf_rows | writes)
        if not ev.any():
            continue
        e, v = elems[ev], virts[ev]
        pick = last_row_per_group(e.astype(np.int64), v)
        last_virt = np.zeros(length, dtype=np.int64)
        last_virt[e[pick]] = v[pick]
        table.epoch[e[pick]] = v[pick]
        # Within that group: read1st iff the group's first access was a
        # read, write iff the group wrote at all.
        grp = np.zeros(length, dtype=bool)
        grp[elems[mine & rf_rows & (virts == last_virt[elems])]] = True
        table.read1st[:] = grp & (table.epoch >= 0)
        wg = np.zeros(length, dtype=bool)
        wg[elems[mine & writes & (virts == last_virt[elems])]] = True
        table.write[:] = wg & (table.epoch >= 0)
