"""Hardware speculative run-time parallelization (the paper's §3 and §4).

This package implements the paper's contribution: extensions to the
cache coherence protocol that detect cross-iteration dependences on the
fly during a speculative doall execution.

* :mod:`repro.core.accessbits` — the per-element state of Figure 5
  (cache-tag side and directory side, for both algorithms).
* :mod:`repro.core.translation` — the translation table + dedicated
  access-bit memory of Figure 10-(c).
* :mod:`repro.core.nonpriv` — the non-privatization algorithm
  (Figures 4, 6, 7) including the race-resolution transactions.
* :mod:`repro.core.privatization` — the privatization algorithm with
  read-in/copy-out (Figures 8, 9) and the reduced-state variant
  (Figure 5-(b)).
* :mod:`repro.core.engine` — :class:`SpeculationEngine`, which plugs the
  protocols into :class:`repro.memsys.MemorySystem` and dispatches per
  array under test.
* :mod:`repro.core.controller` — arms/disarms speculation and records
  the first FAIL, aborting the parallel execution.
"""

from .context import ProtocolContext, SpecStats
from .controller import SpeculationController
from .engine import SpeculationEngine
from .messages import ImmediateScheduler, ManualScheduler, Scheduler
from .translation import RangeEntry, TranslationTable

__all__ = [
    "ImmediateScheduler",
    "ManualScheduler",
    "ProtocolContext",
    "RangeEntry",
    "Scheduler",
    "SpecStats",
    "SpeculationController",
    "SpeculationEngine",
    "TranslationTable",
]
