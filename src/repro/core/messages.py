"""Deferred protocol messages and the scheduler interface.

The paper's speculative extensions add a handful of transactions that
do *not* stall the processor: ``First_update``, ``ROnly_update`` and
``First_update_fail`` for the non-privatization algorithm (Figs 6/7),
and the read-first / first-write signals of the privatization algorithm
(Figs 8/9).  These travel with real network latency and are serialized
at the target directory, which is exactly what makes the documented
races possible.  The protocols post them through a tiny scheduler
interface; the simulation engine implements it with its event heap, and
unit tests can use :class:`ImmediateScheduler` or
:class:`ManualScheduler` to control delivery order explicitly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple


class Scheduler:
    """Interface for posting deferred work.  See module docstring."""

    def post(self, time: float, callback: Callable[[float], None]) -> None:
        """Arrange for ``callback(time)`` to run at simulated ``time``."""
        raise NotImplementedError


class ImmediateScheduler(Scheduler):
    """Delivers every message synchronously (no race window).

    Useful for unit tests that check protocol end-state without caring
    about message interleavings.
    """

    def post(self, time: float, callback: Callable[[float], None]) -> None:
        callback(time)


class ManualScheduler(Scheduler):
    """Queues messages for explicit, test-controlled delivery."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[float], None]]] = []
        self._seq = itertools.count()

    def post(self, time: float, callback: Callable[[float], None]) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), callback))

    def pending(self) -> int:
        return len(self._heap)

    def deliver_next(self) -> bool:
        """Deliver the earliest pending message; False when empty."""
        if not self._heap:
            return False
        time, _, callback = heapq.heappop(self._heap)
        callback(time)
        return True

    def deliver_all(self) -> int:
        count = 0
        while self.deliver_next():
            count += 1
        return count
