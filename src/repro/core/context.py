"""Shared context threaded through the protocol implementations."""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional

from ..address import AddressSpace
from ..obs.events import ProtocolMessageEvent
from ..params import MachineParams
from .controller import SpeculationController
from .messages import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..memsys.system import MemorySystem


@dataclasses.dataclass
class SpecStats:
    """Message/transaction counters for the speculative extensions."""

    first_updates: int = 0
    ronly_updates: int = 0
    first_update_fails: int = 0
    read_first_signals: int = 0
    first_write_signals: int = 0
    read_ins: int = 0
    shared_signals: int = 0
    tag_checks: int = 0
    dir_checks: int = 0

    @property
    def messages(self) -> int:
        return (
            self.first_updates
            + self.ronly_updates
            + self.first_update_fails
            + self.read_first_signals
            + self.first_write_signals
            + self.read_ins
            + self.shared_signals
        )


class ProtocolContext:
    """Everything a protocol needs: controller, clock, network, machine."""

    def __init__(
        self,
        controller: SpeculationController,
        scheduler: Scheduler,
        params: MachineParams,
        space: AddressSpace,
    ) -> None:
        self.controller = controller
        self.scheduler = scheduler
        self.params = params
        self.space = space
        self.stats = SpecStats()
        self.memsys: "Optional[MemorySystem]" = None
        #: optional protocol message log (repro.analysis.tracing.MessageLog)
        self.message_log = None
        #: telemetry bus (repro.obs.EventBus); None keeps emission free
        self.bus = None
        #: the sim engine, when attached to one — used as the clock for
        #: events emitted outside a timed transaction (arm/disarm)
        self.clock = None

    # ------------------------------------------------------------------
    def local_msg_delay(self) -> int:
        """Cache-to-local-directory message latency (no network hop)."""
        return max(1, self.params.latency.local_mem // 4)

    def dir_to_dir_delay(self, src_node: int, dst_node: int) -> int:
        if src_node == dst_node:
            return self.local_msg_delay()
        return self.params.latency.network_one_way

    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def log_message(
        self,
        time: float,
        label: str,
        proc: int,
        array: str,
        index: int,
        iteration: Optional[int] = None,
    ) -> None:
        log = self.message_log
        bus = self.bus
        if bus is not None and not bus.active:
            bus = None
        if log is None and bus is None:
            return
        event = ProtocolMessageEvent(time, label, proc, array, index, iteration)
        if log is not None:
            log.append(event)
        if bus is not None:
            bus.emit(event)

    def spec_bus(self):
        """The bus, when some subscriber wants per-update speculation
        directory events (``NonPrivDirUpdateEvent`` and friends) — else
        None, so protocol hot paths skip the state snapshots entirely."""
        bus = self.bus
        if bus is not None and bus.wants_spec:
            return bus
        return None

    def send_to_directory(
        self,
        elem_addr: int,
        from_node: int,
        issue_time: float,
        handler: Callable[[float], None],
    ) -> None:
        """Deliver a protocol message to the home directory of
        ``elem_addr``: network delay, then directory occupancy, then the
        handler runs at the serialized processing time."""
        home = self.space.home_node(elem_addr)
        delay = self.dir_to_dir_delay(from_node, home)

        def deliver(t: float) -> None:
            if self.controller.failed:
                return  # execution already aborted; drop in-flight traffic
            queue = 0
            if self.memsys is not None:
                contention = self.params.contention
                hold = int(
                    contention.directory_occupancy
                    * contention.spec_occupancy_factor
                )
                queue = self.memsys.directories[home].occupy(t, hold)
            handler(t + queue)

        self.scheduler.post(issue_time + delay, deliver)

    def send_to_cache(
        self,
        proc: int,
        from_node: int,
        issue_time: float,
        handler: Callable[[float], None],
    ) -> None:
        """Deliver a directory-to-cache message (e.g. First_update_fail)."""
        dst_node = self.params.node_of_processor(proc)
        delay = self.dir_to_dir_delay(from_node, dst_node)

        def deliver(t: float) -> None:
            if self.controller.failed:
                return
            handler(t)

        self.scheduler.post(issue_time + delay, deliver)
