"""SpeculationEngine: plugs the protocols into the memory system.

One engine is built per speculative loop attempt.  The runtime
registers every array under test (creating the translation-table
entries and the directory-side access-bit tables), attaches the engine
to the :class:`~repro.memsys.MemorySystem`, and arms it.  From then on
every cache hit, directory transaction and writeback of a line holding
elements under test is routed to the right protocol.

The engine also owns the *address resolution* step of §4.1: the
address-range comparator decides, per access, which protocol applies
and — for privatized arrays — which physical copy (private or shared)
the access targets.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..address import AddressSpace, ArrayDecl
from ..errors import ConfigurationError
from ..params import MachineParams
from ..types import AccessKind, ProtocolKind
from .context import ProtocolContext, SpecStats
from .controller import SpeculationController
from .messages import ImmediateScheduler, Scheduler
from .nonpriv import BatchNonPrivProtocol, NonPrivProtocol
from .privatization import (
    BatchPrivProtocol,
    BatchPrivSimpleProtocol,
    PrivProtocol,
    PrivSimpleProtocol,
)
from .translation import RangeEntry, TranslationTable

try:  # only needed for isinstance checks in hooks
    from ..memsys.system import MemorySystem, SpeculationHooks
except ImportError:  # pragma: no cover - circular import guard
    MemorySystem = None  # type: ignore
    SpeculationHooks = object  # type: ignore


#: Sentinel distinguishing "memo has no entry" from a memoized None.
_UNSET = object()


class SpeculationEngine(SpeculationHooks):
    """Per-loop-attempt speculation state and protocol dispatch."""

    def __init__(
        self,
        params: MachineParams,
        space: AddressSpace,
        scheduler: Optional[Scheduler] = None,
        controller: Optional[SpeculationController] = None,
        batch: bool = False,
    ) -> None:
        self.params = params
        self.space = space
        self.batch = batch
        self.controller = controller or SpeculationController()
        self.scheduler = scheduler or ImmediateScheduler()
        self.ctx = ProtocolContext(self.controller, self.scheduler, params, space)
        self.table = TranslationTable()
        self._line_bytes = params.line_bytes
        if batch:
            self.nonpriv: NonPrivProtocol = BatchNonPrivProtocol(self.ctx)
            self.priv: PrivProtocol = BatchPrivProtocol(self.ctx)
            self.priv_simple: PrivSimpleProtocol = BatchPrivSimpleProtocol(self.ctx)
        else:
            self.nonpriv = NonPrivProtocol(self.ctx)
            self.priv = PrivProtocol(self.ctx)
            self.priv_simple = PrivSimpleProtocol(self.ctx)
        self._iteration: List[int] = [1] * params.num_processors
        self._protocol_of: Dict[str, ProtocolKind] = {}
        self._shared_decl: Dict[str, ArrayDecl] = {}
        self._priv_copies: Dict[str, List[ArrayDecl]] = {}
        #: arrays using the per-line access-bit mode (§4.1 ablation)
        self._line_bits_arrays: Set[str] = set()
        #: synchronous written-element knowledge per (array, proc) for
        #: PRIV_SIMPLE read routing: the hardware's local WriteAny view
        #: is available at access time, while the directory tables are
        #: updated by (deferred) messages.
        self._sync_written: Dict[Tuple[str, int], Set[int]] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def stats(self) -> SpecStats:
        return self.ctx.stats

    def attach(self, memsys: "MemorySystem") -> None:
        self.ctx.memsys = memsys
        memsys.set_hooks(self)

    def register_nonpriv(self, decl: ArrayDecl, per_line_bits: bool = False) -> None:
        """Register an array under the non-privatization test.

        ``per_line_bits`` keeps one set of access bits per cache *line*
        instead of per element — the space optimization §4.1 calls
        "unrealistic" because false sharing then fails the test
        spuriously.  Provided so the trade-off can be measured.
        """
        self._check_not_armed()
        entry = RangeEntry(decl, ProtocolKind.NONPRIV)
        self.table.load(entry)
        if per_line_bits:
            self._line_bits_arrays.add(decl.name)
            # The protocol-side table has one entry per cache line; its
            # "elements" are whole lines, so addr_of(meta_index) is the
            # actual line address.
            epl = self.params.elems_per_line(decl.elem_bytes)
            meta_len = -(-decl.length // epl)
            meta_decl = dataclasses.replace(
                decl, length=meta_len, elem_bytes=self.params.line_bytes
            )
            self.nonpriv.register(RangeEntry(meta_decl, ProtocolKind.NONPRIV))
        else:
            self.nonpriv.register(entry)
        self._protocol_of[decl.name] = ProtocolKind.NONPRIV
        self._shared_decl[decl.name] = decl

    def register_priv(
        self,
        shared_decl: ArrayDecl,
        private_decls: Sequence[ArrayDecl],
        simple: bool = False,
    ) -> None:
        self._check_not_armed()
        if len(private_decls) != self.params.num_processors:
            raise ConfigurationError(
                "need exactly one private copy per processor "
                f"({len(private_decls)} given, {self.params.num_processors} procs)"
            )
        kind = ProtocolKind.PRIV_SIMPLE if simple else ProtocolKind.PRIV
        self.table.load(RangeEntry(shared_decl, kind))
        for proc, decl in enumerate(private_decls):
            if decl.length != shared_decl.length:
                raise ConfigurationError(
                    f"private copy {decl.name!r} length differs from shared"
                )
            self.table.load(
                RangeEntry(decl, kind, owner_proc=proc, shared_name=shared_decl.name)
            )
        protocol = self.priv_simple if simple else self.priv
        protocol.register(shared_decl, self.params.num_processors)
        self._protocol_of[shared_decl.name] = kind
        self._shared_decl[shared_decl.name] = shared_decl
        self._priv_copies[shared_decl.name] = list(private_decls)

    def _check_not_armed(self) -> None:
        if self.controller.armed:
            raise ConfigurationError(
                "cannot register arrays while speculation is armed — the "
                "§4.1 comparator is loaded by a system call before the "
                "loop starts (disarm first)"
            )

    def arm(self) -> None:
        """Clear all access-bit state and start speculating (the §4.1
        loop-entry system calls: load comparator, reset cache tags,
        clear directory tables)."""
        self.nonpriv.clear()
        self.priv.clear()
        self.priv_simple.clear()
        self.clear_cache_tags()
        self._iteration = [1] * self.params.num_processors
        self._sync_written.clear()
        self.controller.arm()
        self._emit_arm(True)

    def disarm(self) -> None:
        self.controller.disarm()
        self._emit_arm(False)

    def _emit_arm(self, armed: bool) -> None:
        bus = self.ctx.bus
        if bus is not None and bus.active:
            from ..obs.events import SpeculationArmEvent

            bus.emit(SpeculationArmEvent(self.ctx.now(), armed))

    def epoch_sync(self) -> None:
        """Time-stamp overflow synchronization (§3.3): reset the
        privatization protocol's effective iteration numbering.  The
        non-privatization and simple-privatization protocols keep no
        time stamps and are unaffected."""
        self.priv.epoch_sync()
        self.clear_cache_tags()

    def clear_cache_tags(self) -> None:
        """The 'general reset signal' for the cache access-bit arrays."""
        if self.ctx.memsys is None:
            return
        for hierarchy in self.ctx.memsys.caches:
            for line in hierarchy.l2.resident_lines():
                line.spec_bits.clear()
            for line in hierarchy.l1.resident_lines():
                line.spec_bits.clear()

    # ------------------------------------------------------------------
    # Iteration tracking (virtual iteration numbers; §3.3, §4.1)
    # ------------------------------------------------------------------
    def set_iteration(self, proc: int, iteration: int) -> None:
        self._iteration[proc] = iteration

    def iteration_of(self, proc: int) -> int:
        return self._iteration[proc]

    # ------------------------------------------------------------------
    # Address resolution (the §4.1 address-range comparator)
    # ------------------------------------------------------------------
    def resolve(self, proc: int, name: str, index: int, kind: AccessKind) -> int:
        """Physical address a processor's access to ``name[index]`` targets."""
        protocol = self._protocol_of.get(name)
        if protocol is None or protocol is ProtocolKind.NONPRIV:
            return self._shared_or_plain(name, index)
        if protocol is ProtocolKind.PRIV:
            return self._priv_copies[name][proc].addr_of(index)
        # PRIV_SIMPLE: without read-in hardware, reads of elements this
        # processor never wrote are served from the shared copy.
        written = self._sync_written.setdefault((name, proc), set())
        if kind is AccessKind.WRITE:
            written.add(index)
            return self._priv_copies[name][proc].addr_of(index)
        if index in written or self.priv_simple.written_by(name, proc, index):
            return self._priv_copies[name][proc].addr_of(index)
        return self._shared_decl[name].addr_of(index)

    def static_address_map(self) -> Dict[str, tuple]:
        """``name -> (base, elem_bytes, length)`` for every array whose
        address resolution never depends on speculation state.

        The privatization protocols redirect accesses (to per-processor
        copies, tracking written elements), so their arrays are
        excluded; everything else resolves to ``base + index *
        elem_bytes`` whether or not speculation is armed.  The batch
        engine's processor loop uses this to collapse the per-access
        :meth:`resolve` call into one dict probe (it falls back to
        resolve/addr_of for excluded names and out-of-range indexes, so
        error behavior is unchanged).
        """
        out: Dict[str, tuple] = {}
        for decl in self.space.decls():
            kind = self._protocol_of.get(decl.name)
            if kind is None or kind is ProtocolKind.NONPRIV:
                out[decl.name] = (decl.base, decl.elem_bytes, decl.length)
        return out

    def _shared_or_plain(self, name: str, index: int) -> int:
        decl = self._shared_decl.get(name)
        if decl is None:
            # Cache plain arrays alongside the registered ones: decls
            # are immutable and resolve() is on the per-access hot path.
            decl = self.space.array(name)
            self._shared_decl[name] = decl
        return decl.addr_of(index)

    # ------------------------------------------------------------------
    # SpeculationHooks implementation (called by the memory system)
    # ------------------------------------------------------------------
    def _line_mode(self, entry) -> bool:
        return entry.decl.name in self._line_bits_arrays

    def _meta_index(self, entry, index: int) -> int:
        """Element index -> access-bit index (identity, or line number
        in the per-line-bit mode)."""
        if self._line_mode(entry):
            return index // self.params.elems_per_line(entry.decl.elem_bytes)
        return index

    def on_cache_hit(self, proc, line, addr, kind, now):
        if not self.controller.armed:
            return
        # Inline probe of the translation memo (repeated below in the
        # other hooks): these four dispatchers sit on the per-access hot
        # path, so the common warm-cache case must stay a dict get.
        found = self.table._lookup_cache.get(addr, _UNSET)
        if found is _UNSET:
            found = self.table.lookup(addr)
        if found is None:
            return
        entry, index = found
        if entry.protocol is ProtocolKind.NONPRIV:
            if self._line_bits_arrays and self._line_mode(entry):
                index = self._meta_index(entry, index)
                # The per-line-bit ablation always uses the scalar
                # per-word object path (one bits object per line at
                # offset 0), even under the batch engine.
                NonPrivProtocol.on_cache_hit(
                    self.nonpriv, proc, line, entry, index, 0, kind, now
                )
                return
            self.nonpriv.on_cache_hit(
                proc, line, entry, index, addr - line.line_addr, kind, now
            )
        elif entry.protocol is ProtocolKind.PRIV:
            self.priv.on_cache_hit(
                proc, line, entry, index, addr - line.line_addr, kind,
                self._iteration[proc], now,
            )
        else:
            self.priv_simple.on_cache_hit(
                proc, line, entry, index, addr - line.line_addr, kind,
                self._iteration[proc], now,
            )

    def on_dir_access(self, proc, line_addr, addr, kind, now):
        if not self.controller.armed:
            return 0
        found = self.table._lookup_cache.get(addr, _UNSET)
        if found is _UNSET:
            found = self.table.lookup(addr)
        if found is None:
            return 0
        entry, index = found
        if entry.protocol is ProtocolKind.NONPRIV:
            if self._line_bits_arrays and self._line_mode(entry):
                index = self._meta_index(entry, index)
            return self.nonpriv.on_dir_access(proc, entry, index, kind, now)
        line_first, line_count = self._line_span(entry, line_addr)
        if entry.protocol is ProtocolKind.PRIV:
            return self.priv.on_dir_access(
                proc, entry, index, kind, self._iteration[proc],
                line_first, line_count, now,
            )
        return self.priv_simple.on_dir_access(
            proc, entry, index, kind, self._iteration[proc],
            line_first, line_count, now,
        )

    def fill_line_bits(self, proc, line, now):
        if not self.controller.armed:
            return
        found = self.table._line_cache.get(line.line_addr, _UNSET)
        if found is _UNSET:
            found = self.table.lookup_line(line.line_addr, self._line_bytes)
        if found is None:
            return
        entry, first, count = found
        if entry.protocol is ProtocolKind.NONPRIV:
            if self._line_bits_arrays and self._line_mode(entry):
                meta = self._meta_index(entry, first)
                line.set_bits(0, self.nonpriv.tag_fill(proc, entry, meta))
                return
            self.nonpriv.fill_line(proc, line, entry, first, count)
        elif entry.protocol is ProtocolKind.PRIV:
            self.priv.fill_line(
                proc, line, entry, first, count, self._iteration[proc]
            )
        else:
            self.priv_simple.fill_line(
                proc, line, entry, first, count, self._iteration[proc]
            )

    def on_writeback(self, proc, line, now):
        if not self.controller.armed:
            return
        found = self.table._line_cache.get(line.line_addr, _UNSET)
        if found is _UNSET:
            found = self.table.lookup_line(line.line_addr, self._line_bytes)
        if found is None:
            return
        entry, first, count = found
        if entry.protocol is not ProtocolKind.NONPRIV:
            # Privatization state is authoritative in the directories;
            # tag bits are a per-iteration summary and need no merge.
            return
        if self._line_mode(entry):
            bits = line.get_bits(0)
            if bits is not None:
                meta = self._meta_index(entry, first)
                self.nonpriv.merge_writeback(proc, entry, meta, bits, now)
            return
        self.nonpriv.merge_line(proc, line, entry, first, count, now)

    def commit(self, now: float) -> None:
        """Loop-end commit: merge the access-bit state of every dirty
        cached line into its home directory (Fig 6-(e) applied at the
        final barrier).

        During the loop, a tag update on a dirty line is legal without
        telling the home ("no need to tell the directory" in 6-(c)) —
        the information reaches the directory when the line is written
        back.  A line still dirty when the loop ends therefore holds
        access state the home never saw, and the final pass/FAIL verdict
        must not be issued before that state is merged: it can reveal a
        dependence (e.g. a write to an element another processor
        read first while its First_update was still in flight).

        Idempotent; the lines stay cached.  Call after the in-flight
        protocol messages have drained.
        """
        if not self.controller.armed or self.controller.failed:
            return
        memsys = self.ctx.memsys
        if memsys is None:
            return
        for proc, hierarchy in enumerate(memsys.caches):
            # The same line object lives in both levels; the L2 is
            # inclusive, so walking it covers everything.
            for line in hierarchy.l2.resident_lines():
                if line.dirty:
                    self.on_writeback(proc, line, now)
                    if self.controller.failed:
                        return

    # ------------------------------------------------------------------
    def _line_span(self, entry: RangeEntry, line_addr: int) -> Tuple[int, int]:
        decl = entry.decl
        first = max(0, (line_addr - decl.base) // decl.elem_bytes)
        span = self.params.elems_per_line(decl.elem_bytes)
        count = max(0, min(span, decl.length - first))
        return first, count

    # ------------------------------------------------------------------
    def copy_out_elements(self, name: str) -> int:
        """Elements needing copy-out for a privatized, live-out array."""
        if self._protocol_of.get(name) is ProtocolKind.PRIV:
            return self.priv.copy_out_elements(name)
        return 0
