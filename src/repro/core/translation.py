"""Translation table: address ranges -> access-bit state (Fig 10-(c)).

The hardware keeps the access bits in a dedicated memory next to each
directory; a translation table, loaded at loop entry by a system call,
maps a physical address to the corresponding bits.  Each entry holds an
array's physical boundaries, its data type (element size) and a pointer
to its access bits.  This module models that structure: it is also the
address-range comparator of §4.1 that decides which protocol (plain,
non-privatization, privatization) governs each access.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import List, Optional, Tuple

from ..address import ArrayDecl
from ..errors import ConfigurationError
from ..params import elems_per_line
from ..types import ProtocolKind


@dataclasses.dataclass(frozen=True)
class RangeEntry:
    """One translation-table entry (one array under test)."""

    decl: ArrayDecl
    protocol: ProtocolKind
    #: For privatization private copies: the owning processor.
    owner_proc: Optional[int] = None
    #: For private copies: the shared array they mirror.
    shared_name: Optional[str] = None

    @property
    def base(self) -> int:
        return self.decl.base

    @property
    def end(self) -> int:
        return self.decl.end


class TranslationTable:
    """Sorted address-range comparator for the arrays under test.

    Lookups are memoized per address: the entry set only changes through
    :meth:`load`/:meth:`unload_all` (which invalidate the memo), and the
    number of distinct addresses is bounded by the arrays' footprints, so
    the cache replaces the bisect/branch work of the hot path with one
    dict probe after warm-up.
    """

    def __init__(self) -> None:
        self._entries: List[RangeEntry] = []
        self._bases: List[int] = []
        self._lookup_cache: dict = {}
        self._line_cache: dict = {}

    def load(self, entry: RangeEntry) -> None:
        """Register an array under test (the §4.1 'load the comparator'
        system call).  Ranges must not overlap."""
        pos = bisect.bisect_left(self._bases, entry.base)
        if pos > 0 and self._entries[pos - 1].end > entry.base:
            raise ConfigurationError(
                f"range for {entry.decl.name!r} overlaps {self._entries[pos - 1].decl.name!r}"
            )
        if pos < len(self._entries) and entry.end > self._entries[pos].base:
            raise ConfigurationError(
                f"range for {entry.decl.name!r} overlaps {self._entries[pos].decl.name!r}"
            )
        self._entries.insert(pos, entry)
        self._bases.insert(pos, entry.base)
        self._lookup_cache.clear()
        self._line_cache.clear()

    def unload_all(self) -> None:
        """The §4.1 'unload the comparator' system call."""
        self._entries.clear()
        self._bases.clear()
        self._lookup_cache.clear()
        self._line_cache.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[RangeEntry]:
        return list(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, addr: int) -> Optional[Tuple[RangeEntry, int]]:
        """Map an address to its (entry, element index), or None."""
        cache = self._lookup_cache
        try:
            return cache[addr]
        except KeyError:
            pass
        pos = bisect.bisect_right(self._bases, addr) - 1
        if pos < 0 or addr >= self._entries[pos].end:
            cache[addr] = None
            return None
        entry = self._entries[pos]
        found = (entry, (addr - entry.base) // entry.decl.elem_bytes)
        cache[addr] = found
        return found

    def lookup_line(
        self, line_addr: int, line_bytes: int
    ) -> Optional[Tuple[RangeEntry, int, int]]:
        """Map a cache line to (entry, first element index, element count).

        Arrays are page-aligned and pages are line-multiples, so a line
        belongs to at most one array.  The first/last line of an array
        may only partially overlap it; the returned range is clipped.
        """
        # An element could start before line_addr and extend into the
        # line only if elem_bytes > alignment; our elements are
        # power-of-two sized and arrays are page aligned, so elements
        # never straddle lines and the first element of the line starts
        # at or after line_addr.
        cache = self._line_cache
        try:
            return cache[line_addr]
        except KeyError:
            pass
        result = self._lookup_line_slow(line_addr, line_bytes)
        cache[line_addr] = result
        return result

    def _lookup_line_slow(
        self, line_addr: int, line_bytes: int
    ) -> Optional[Tuple[RangeEntry, int, int]]:
        found = self.lookup(line_addr)
        if found is None:
            # The line may begin in the padding before an array that
            # starts mid... arrays are page-aligned, so if line_addr is
            # not inside an array, no later part of the line is either.
            return None
        entry, first = found
        decl = entry.decl
        span = elems_per_line(line_bytes, decl.elem_bytes)
        count = min(span, decl.length - first)
        if count <= 0:
            return None
        return entry, first, count
