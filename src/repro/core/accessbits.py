"""Per-element speculation state (the "access bits" of Figure 5).

Two physical homes exist for this state:

* **cache-tag side** — small objects attached to cache lines (one per
  word belonging to an array under test); see Figure 10-(a).  These are
  ``NonPrivTagBits`` for the non-privatization algorithm and
  ``PrivTagBits`` for both privatization variants.
* **directory side** — dense tables in a dedicated memory next to each
  directory (Figure 10-(c)); see :class:`NonPrivDirTable`,
  :class:`PrivSharedDirTable`, :class:`PrivPrivateDirTable` and
  :class:`PrivSimpleSharedTable`.

The paper stresses (Fig 5 caption) that a *single* set of hardware bits
is used differently depending on the algorithm; we keep the structures
separate for clarity but report their hardware widths so the state-cost
comparison of §3.4 can be reproduced (see :func:`state_bits_per_element`).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..types import FirstState

#: Directory-side encoding of "no processor has touched this element".
NO_PROC = -1

#: Batch-engine tag encoding of "some other processor, identity unknown"
#: (the anonymized OTHER a cache learns from a First_update_fail).  Never
#: a valid processor id, never NO_PROC.
OTHER_PROC = -2

#: Privatization time-stamp value meaning "no write seen yet" (MinW = +inf).
NO_ITER = 0

#: ``CacheLine.spec_bits`` key under which the batch engine stores the
#: whole-line tag block.  A string cannot collide with the integer word
#: offsets the scalar engine uses.
BLOCK_KEY = "#block"


# ----------------------------------------------------------------------
# Cache-tag side
# ----------------------------------------------------------------------
class NonPrivTagBits:
    """Tag state for one element under the non-privatization algorithm.

    ``first`` is the 2-bit summary of the directory's First field
    (OWN / OTHER / NONE); ``priv`` is the paper's NoShr/Priv bit;
    ``ronly`` the ROnly bit.  4 bits of hardware per element.
    """

    __slots__ = ("first", "priv", "ronly")

    def __init__(
        self,
        first: FirstState = FirstState.NONE,
        priv: bool = False,
        ronly: bool = False,
    ) -> None:
        self.first = first
        self.priv = priv
        self.ronly = ronly

    def copy(self) -> "NonPrivTagBits":
        return NonPrivTagBits(self.first, self.priv, self.ronly)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NonPrivTagBits(first={self.first.value}, priv={self.priv}, ronly={self.ronly})"


class PrivTagBits:
    """Tag state for one element under the privatization algorithms.

    ``read1st`` / ``write`` are the two per-iteration bits of §3.3.
    They must be cleared at the start of every iteration; rather than
    walking the cache, the hardware uses an address-qualified reset line
    (§4.1).  We model that with ``epoch``: the bits are valid only when
    ``epoch`` equals the processor's current (virtual) iteration number,
    otherwise they read as zero.
    """

    __slots__ = ("read1st", "write", "epoch")

    def __init__(self, read1st: bool = False, write: bool = False, epoch: int = -1):
        self.read1st = read1st
        self.write = write
        self.epoch = epoch

    def valid_for(self, iteration: int) -> bool:
        return self.epoch == iteration

    def get(self, iteration: int) -> "tuple[bool, bool]":
        """Return (read1st, write) as seen in iteration ``iteration``."""
        if self.epoch == iteration:
            return self.read1st, self.write
        return False, False

    def set_for(self, iteration: int, read1st: bool = False, write: bool = False):
        """Set bits, implicitly clearing stale state from older iterations."""
        if self.epoch != iteration:
            self.read1st = False
            self.write = False
            self.epoch = iteration
        self.read1st = self.read1st or read1st
        self.write = self.write or write

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrivTagBits(r1st={self.read1st}, w={self.write}, epoch={self.epoch})"


# ----------------------------------------------------------------------
# Cache-tag side — batch-engine whole-line blocks
# ----------------------------------------------------------------------
class NonPrivTagBlock:
    """Batch-engine tag state for every element of one cache line under
    the non-privatization test (replaces one object per word).

    ``owners[k]`` holds the directory's full First field as copied at
    fill time: :data:`NO_PROC` for untouched, a processor id, or
    :data:`OTHER_PROC` when only "somebody else" is known (learned from a
    First_update_fail).  The owning cache interprets it as the 2-bit
    summary: NONE iff ``NO_PROC``, OWN iff equal to its own processor id,
    OTHER otherwise — so filling the raw ids is equivalent to filling the
    scalar per-word summaries.

    ``touched`` is set whenever a local access or protocol message
    mutates the block; an untouched block holds only directory-inherited
    state whose writeback merge is a no-op, which lets the batch engine
    skip the per-word merge wholesale.
    """

    __slots__ = ("first_index", "owners", "privs", "ronlys", "touched")

    def __init__(self, first_index, owners, privs, ronlys):
        self.first_index = first_index
        self.owners = owners
        self.privs = privs
        self.ronlys = ronlys
        self.touched = False


class PrivTagBlock:
    """Batch-engine tag state for one cache line under either
    privatization variant: the per-word ``Read1st``/``Write`` bits with
    their validity epoch (see :class:`PrivTagBits`), as parallel lists.
    """

    __slots__ = ("first_index", "read1sts", "writes", "epochs")

    def __init__(self, first_index, read1sts, writes, epochs):
        self.first_index = first_index
        self.read1sts = read1sts
        self.writes = writes
        self.epochs = epochs


# ----------------------------------------------------------------------
# Directory side — dense per-array tables (the dedicated access-bit
# memory of Figure 10-(c))
# ----------------------------------------------------------------------
class NonPrivDirTable:
    """Directory state for one array under the non-privatization test.

    Per element: ``first`` (full processor ID, NO_PROC when unset),
    ``priv`` (NoShr) and ``ronly`` bits.
    """

    def __init__(self, length: int) -> None:
        self.length = length
        self.first = np.full(length, NO_PROC, dtype=np.int32)
        self.priv = np.zeros(length, dtype=bool)
        self.ronly = np.zeros(length, dtype=bool)

    def clear(self) -> None:
        self.first.fill(NO_PROC)
        self.priv.fill(False)
        self.ronly.fill(False)

    def tag_view(self, index: int, proc: int) -> NonPrivTagBits:
        """The 2-bit First summary a cache of ``proc`` receives on a fill."""
        owner = int(self.first[index])
        if owner == NO_PROC:
            first = FirstState.NONE
        elif owner == proc:
            first = FirstState.OWN
        else:
            first = FirstState.OTHER
        return NonPrivTagBits(first, bool(self.priv[index]), bool(self.ronly[index]))


class PrivSharedDirTable:
    """Shared-array directory state for the full privatization test.

    Per element: ``max_r1st`` — highest read-first iteration executed so
    far by any processor; ``min_w`` — lowest iteration that wrote the
    element so far (NO_ITER meaning "none yet", compared as +infinity).
    Also tracks the latest write (iteration, processor) for copy-out.
    """

    def __init__(self, length: int) -> None:
        self.length = length
        self.max_r1st = np.zeros(length, dtype=np.int64)
        self.min_w = np.zeros(length, dtype=np.int64)  # NO_ITER == none
        self.last_w_iter = np.zeros(length, dtype=np.int64)
        self.last_w_epoch = np.zeros(length, dtype=np.int64)
        self.last_w_proc = np.full(length, NO_PROC, dtype=np.int32)
        #: §3.3 time-stamp overflow: set at an epoch synchronization for
        #: elements written in an earlier epoch; any later read-first of
        #: such an element FAILs conservatively.
        self.written_past = np.zeros(length, dtype=bool)

    def clear(self) -> None:
        self.max_r1st.fill(0)
        self.min_w.fill(NO_ITER)
        self.last_w_iter.fill(0)
        self.last_w_epoch.fill(0)
        self.last_w_proc.fill(NO_PROC)
        self.written_past.fill(False)

    def epoch_reset(self) -> None:
        """Start a new time-stamp epoch: effective iteration numbers
        restart from zero; writes from the past stay visible only
        through the sticky ``written_past`` bit."""
        np.logical_or(self.written_past, self.min_w != NO_ITER,
                      out=self.written_past)
        self.max_r1st.fill(0)
        self.min_w.fill(NO_ITER)

    def min_w_of(self, index: int) -> Optional[int]:
        value = int(self.min_w[index])
        return None if value == NO_ITER else value

    def note_write(self, index: int, iteration: int, proc: int,
                   epoch: int = 0) -> None:
        current = int(self.min_w[index])
        if current == NO_ITER or iteration < current:
            self.min_w[index] = iteration
        key = (epoch, iteration)
        if key >= (int(self.last_w_epoch[index]), int(self.last_w_iter[index])):
            self.last_w_epoch[index] = epoch
            self.last_w_iter[index] = iteration
            self.last_w_proc[index] = proc

    def note_read_first(self, index: int, iteration: int) -> None:
        if iteration > int(self.max_r1st[index]):
            self.max_r1st[index] = iteration


class PrivPrivateDirTable:
    """Private-copy directory state for one (array, processor) pair.

    Per element: ``pmax_r1st`` — highest read-first iteration executed
    so far by this processor; ``pmax_w`` — highest iteration executed so
    far by this processor that wrote the element (0 = never written,
    which doubles as the "very first write in the whole loop" test of
    Fig 9-(g)/(h)).
    """

    def __init__(self, length: int) -> None:
        self.length = length
        self.pmax_r1st = np.zeros(length, dtype=np.int64)
        self.pmax_w = np.zeros(length, dtype=np.int64)

    def clear(self) -> None:
        self.pmax_r1st.fill(0)
        self.pmax_w.fill(0)

    def line_untouched(self, first: int, count: int) -> bool:
        """True when no element of the line was ever accessed (read-in
        trigger of Fig 8-(c): ``PMaxR1st == PMaxW == 0`` for the whole
        memory line)."""
        sl = slice(first, min(first + count, self.length))
        return not (self.pmax_r1st[sl].any() or self.pmax_w[sl].any())


class PrivSimplePrivateTable:
    """Private-side state for the reduced privatization variant (§4.1).

    One ``Read1st`` and one ``Write`` bit per element, cleared each
    iteration (epoch-encoded like the tags), plus a sticky ``WriteAny``
    bit that is never cleared during the loop.
    """

    def __init__(self, length: int) -> None:
        self.length = length
        self.read1st = np.zeros(length, dtype=bool)
        self.write = np.zeros(length, dtype=bool)
        self.epoch = np.full(length, -1, dtype=np.int64)
        self.write_any = np.zeros(length, dtype=bool)

    def clear(self) -> None:
        self.read1st.fill(False)
        self.write.fill(False)
        self.epoch.fill(-1)
        self.write_any.fill(False)

    def get(self, index: int, iteration: int) -> "tuple[bool, bool]":
        if int(self.epoch[index]) == iteration:
            return bool(self.read1st[index]), bool(self.write[index])
        return False, False

    def set_for(self, index: int, iteration: int, read1st: bool = False, write: bool = False) -> None:
        if int(self.epoch[index]) != iteration:
            self.read1st[index] = False
            self.write[index] = False
            self.epoch[index] = iteration
        if read1st:
            self.read1st[index] = True
        if write:
            self.write[index] = True
            self.write_any[index] = True


class PrivSimpleSharedTable:
    """Shared-side state for the reduced privatization variant.

    Two sticky bits per element: ``any_r1st`` (some iteration read the
    element before writing it) and ``any_w`` (some iteration wrote it).
    The test fails as soon as both would be set — without read-in, a
    read-first of an ever-written element cannot be given privatized
    semantics.
    """

    def __init__(self, length: int) -> None:
        self.length = length
        self.any_r1st = np.zeros(length, dtype=bool)
        self.any_w = np.zeros(length, dtype=bool)

    def clear(self) -> None:
        self.any_r1st.fill(False)
        self.any_w.fill(False)


# ----------------------------------------------------------------------
# State-cost accounting (paper §3.4)
# ----------------------------------------------------------------------
def state_bits_per_element(
    num_processors: int,
    max_iterations: int,
    read_in_supported: bool,
) -> "dict[str, int]":
    """Hardware/software state per array element, in bits (§3.4).

    The hardware needs the maximum of what the non-privatization test
    requires (2 + log2(P) bits in the directory: First + NoShr + ROnly)
    and what the privatization test requires (2 time stamps if read-in
    is supported, 2 bits otherwise).  The software scheme needs 3 shadow
    time stamps per element (Ar/Aw/Anp), or 4 with ``Awmin`` when
    read-in is supported.
    """
    log_p = max(1, math.ceil(math.log2(max(2, num_processors))))
    ts = max(1, math.ceil(math.log2(max(2, max_iterations))))
    nonpriv_bits = 2 + log_p
    priv_bits = 2 * ts if read_in_supported else 2
    hw = max(nonpriv_bits, priv_bits)
    sw = (4 if read_in_supported else 3) * ts
    return {
        "hardware": hw,
        "software": sw,
        "nonpriv_dir_bits": nonpriv_bits,
        "priv_dir_bits": priv_bits,
        "timestamp_bits": ts,
    }


def tag_bits_per_element() -> "dict[str, int]":
    """Cache-tag state per element: 2 (First) + 1 (Priv) + 1 (ROnly)
    for the non-privatization test; 2 (Read1st/Write) for privatization."""
    return {"nonpriv": 4, "priv": 2}


# ----------------------------------------------------------------------
# Whole-phase kernels (the vector engine)
#
# The vector tier replays an entire quiescent loop phase as numpy
# reductions over the flat access record (one row per access, in
# per-processor program order).  These helpers fold the per-access bit
# updates of the protocols above into group-wise boolean reductions; the
# protocol-specific verdict/fill kernels live next to their scalar
# counterparts in ``nonpriv.py`` / ``privatization.py``.
# ----------------------------------------------------------------------
def read_first_rows(
    procs: np.ndarray, virts: np.ndarray, elems: np.ndarray, writes: np.ndarray
) -> np.ndarray:
    """Boolean mask of the rows that are *read-first* events.

    A row is a read-first when it is the first access of its
    ``(processor, virtual iteration, element)`` group — the condition
    under which the scalar protocols' per-iteration ``Read1st`` tag bit
    is set and a read-first signal travels to the directories — and that
    first access is a read.  Rows must be in per-processor program
    order; groups never span processors, so concatenation order across
    processors does not matter.
    """
    n = len(procs)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.lexsort((np.arange(n), virts, elems, procs))
    p, v, e = procs[order], virts[order], elems[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = (p[1:] != p[:-1]) | (v[1:] != v[:-1]) | (e[1:] != e[:-1])
    mask = np.zeros(n, dtype=bool)
    mask[order[first]] = True
    return mask & ~writes


def scatter_max(values: np.ndarray, index: np.ndarray, length: int,
                fill: int = 0) -> np.ndarray:
    """Per-element maximum of ``values`` grouped by ``index``."""
    out = np.full(length, fill, dtype=np.int64)
    np.maximum.at(out, index, values)
    return out


def scatter_min(values: np.ndarray, index: np.ndarray, length: int,
                fill: int) -> np.ndarray:
    """Per-element minimum of ``values`` grouped by ``index``."""
    out = np.full(length, fill, dtype=np.int64)
    np.minimum.at(out, index, values)
    return out


def scatter_or(index: np.ndarray, length: int) -> np.ndarray:
    """Boolean mask of the elements that appear in ``index``."""
    out = np.zeros(length, dtype=bool)
    out[index] = True
    return out


def distinct_procs(procs: np.ndarray, elems: np.ndarray,
                   length: int) -> np.ndarray:
    """Number of distinct processors touching each element."""
    out = np.zeros(length, dtype=np.int64)
    if len(procs) == 0:
        return out
    pairs = np.unique(elems.astype(np.int64) * 2**32 + procs)
    np.add.at(out, (pairs >> 32).astype(np.intp), 1)
    return out


def last_row_per_group(keys: np.ndarray, order_within: np.ndarray) -> np.ndarray:
    """Row index of the greatest ``order_within`` per ``keys`` group.

    Used for the "last writer wins" folds of the loop-end commit: the
    directory/copy-out state an element ends the loop with is the state
    its greatest-ordinal write would have installed.  Returns the
    selected row indices, one per distinct key, keys ascending.
    """
    n = len(keys)
    order = np.lexsort((order_within, keys))
    k = keys[order]
    last = np.empty(n, dtype=bool)
    last[-1] = True
    last[:-1] = k[1:] != k[:-1]
    return order[last]
