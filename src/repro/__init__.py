"""repro — Hardware for Speculative Run-Time Parallelization in DSMs.

A reproduction of Zhang, Rauchwerger & Torrellas (HPCA 1998): execute
possibly-parallel loops speculatively as doalls on a simulated CC-NUMA
multiprocessor, and let extensions to the cache coherence protocol flag
any cross-iteration dependence on the fly.

Typical entry points:

* :func:`repro.semantics.speculative_run` — run a real (numpy-backed)
  loop speculatively, with detection, recovery and value checking.
* :mod:`repro.runtime` — the Serial / Ideal / SW / HW scenario drivers
  over address-trace loops.
* :mod:`repro.experiments` — regenerate the paper's tables and figures
  (also ``python -m repro.experiments``).

See README.md for a tour and DESIGN.md for the system inventory.
"""

from .address import AddressSpace, ArrayDecl
from .errors import (
    AddressError,
    ConfigurationError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SpeculationFailure,
)
from .params import (
    CacheGeometry,
    ContentionModel,
    CostModel,
    LatencyTable,
    MachineParams,
    default_params,
    small_test_params,
)
from .types import AccessKind, ProtocolKind, Scenario

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "AddressError",
    "AddressSpace",
    "ArrayDecl",
    "CacheGeometry",
    "ConfigurationError",
    "ContentionModel",
    "CostModel",
    "LatencyTable",
    "MachineParams",
    "ProtocolError",
    "ProtocolKind",
    "ReproError",
    "Scenario",
    "SchedulingError",
    "SpeculationFailure",
    "default_params",
    "small_test_params",
    "__version__",
]
