"""Per-array access-pattern heuristics for protocol selection.

Given one profiled execution of the loop, classify each modifiable
array by its observed access pattern:

* never accessed or never written → ``PLAIN`` (no test needed for
  read-only data);
* every read covered by a same-iteration write → the array behaves as a
  temporary: speculatively privatize with the cheap reduced protocol
  (``PRIV_SIMPLE``);
* read-first iterations all precede the writes (Figure 3 patterns) →
  privatize with read-in/copy-out (``PRIV``);
* element sharing across iterations looks absent → the
  non-privatization test (``NONPRIV``);
* anything else → the most general test, ``PRIV`` (§4.1's fallback).

The profile is a *heuristic input*, not a proof: the chosen protocol is
still verified at run time — that is the whole point of the paper.  A
misleading profile costs a failed speculation, never a wrong result.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..trace.loop import Loop
from ..trace.oracle import DependenceOracle
from ..types import ProtocolKind
from ..trace.ops import AccessOp


@dataclasses.dataclass
class ArrayProfile:
    """Observed access behaviour of one array in a profiled execution."""

    name: str
    reads: int = 0
    writes: int = 0
    covered_reads: int = 0       # read after same-iteration write
    read_first_reads: int = 0    # read before any same-iteration write
    multi_iteration_elements: int = 0  # elements touched by >1 iteration
    elements_touched: int = 0

    @property
    def written(self) -> bool:
        return self.writes > 0

    @property
    def always_covered(self) -> bool:
        return self.reads > 0 and self.read_first_reads == 0

    @property
    def write_only(self) -> bool:
        return self.written and self.reads == 0


@dataclasses.dataclass
class ProtocolChoice:
    """The selected protocol plus the reasoning, for explainability."""

    name: str
    protocol: ProtocolKind
    reason: str
    profile: Optional[ArrayProfile] = None


def profile_loop(loop: Loop, arrays: Optional[List[str]] = None) -> Dict[str, ArrayProfile]:
    """Gather per-array access facts from one execution's trace."""
    selected = set(arrays) if arrays is not None else {a.name for a in loop.arrays}
    profiles: Dict[str, ArrayProfile] = {
        name: ArrayProfile(name) for name in selected
    }
    touched_by: Dict[str, Dict[int, set]] = {name: {} for name in selected}
    for it_no, ops in enumerate(loop.iterations, start=1):
        written_this_iter = set()
        for op in ops:
            if not isinstance(op, AccessOp) or op.array not in selected:
                continue
            profile = profiles[op.array]
            key = (op.array, op.index)
            touched_by[op.array].setdefault(op.index, set()).add(it_no)
            if op.is_write:
                profile.writes += 1
                written_this_iter.add(key)
            else:
                profile.reads += 1
                if key in written_this_iter:
                    profile.covered_reads += 1
                else:
                    profile.read_first_reads += 1
    for name, elements in touched_by.items():
        profiles[name].elements_touched = len(elements)
        profiles[name].multi_iteration_elements = sum(
            1 for its in elements.values() if len(its) > 1
        )
    return profiles


def choose_protocols(
    loop: Loop, candidates: Optional[List[str]] = None
) -> Dict[str, ProtocolChoice]:
    """Pick a protocol for each candidate array (default: all modified
    arrays the loop declares)."""
    if candidates is None:
        candidates = [a.name for a in loop.arrays if a.modified]
    profiles = profile_loop(loop, candidates)
    oracle = _rico_hints(loop, candidates)
    choices: Dict[str, ProtocolChoice] = {}
    for name in candidates:
        profile = profiles[name]
        if not profile.written:
            choices[name] = ProtocolChoice(
                name, ProtocolKind.PLAIN,
                "never written in the profile: read-only data needs no test",
                profile,
            )
        elif profile.multi_iteration_elements == 0:
            # Cheapest test first: no private copies, data in place.
            choices[name] = ProtocolChoice(
                name, ProtocolKind.NONPRIV,
                "no element shared across iterations in the profile: "
                "use the non-privatization test",
                profile,
            )
        elif profile.always_covered or profile.write_only:
            choices[name] = ProtocolChoice(
                name, ProtocolKind.PRIV_SIMPLE,
                "every profiled read is covered by a same-iteration write: "
                "temporary-like, privatize with the reduced protocol",
                profile,
            )
        elif oracle.get(name, False):
            choices[name] = ProtocolChoice(
                name, ProtocolKind.PRIV,
                "read-first iterations precede the writes (Figure 3 "
                "pattern): privatize with read-in/copy-out",
                profile,
            )
        else:
            choices[name] = ProtocolChoice(
                name, ProtocolKind.PRIV,
                "pattern unclear: apply the most general test "
                "(privatization with read-in and copy-out, §4.1)",
                profile,
            )
    return choices


def _rico_hints(loop: Loop, candidates: List[str]) -> Dict[str, bool]:
    """Whether each array's profiled pattern is rico-parallel."""
    # Reuse the oracle on a copy of the loop with candidates marked
    # under test so per-array verdicts are produced.
    probe_arrays = [
        dataclasses.replace(a, protocol=ProtocolKind.PRIV)
        if a.name in candidates
        else a
        for a in loop.arrays
    ]
    probe = Loop(loop.name + "#probe", probe_arrays, loop.iterations)
    report = DependenceOracle(probe).analyze()
    return {
        name: verdict.is_priv_rico or verdict.is_privatizable or verdict.is_doall
        for name, verdict in report.arrays.items()
    }
