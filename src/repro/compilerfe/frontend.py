"""Front-end glue: automatic protocol selection for concrete loops."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..params import MachineParams
from ..runtime.driver import RunConfig
from ..semantics.executor import Body, ConcreteLoop, ConcreteOutcome, speculative_run
from ..types import ProtocolKind
from .heuristics import ProtocolChoice, choose_protocols


def auto_protocols(loop: ConcreteLoop) -> Dict[str, ProtocolChoice]:
    """Profile one (scratch) execution and choose protocols per array.

    Only arrays not already assigned a protocol by the caller are
    decided, mirroring a compiler that respects user directives.
    """
    probe = ConcreteLoop(
        body=loop.body,
        iterations=loop.iterations,
        arrays={k: v.copy() for k, v in loop.arrays.items()},
        protocols=dict(loop.protocols),
        live_out=loop.live_out,
        work_cycles=loop.work_cycles,
    )
    traced = probe.trace()
    undecided = [
        spec.name for spec in traced.arrays
        if spec.modified and spec.name not in loop.protocols
    ]
    return choose_protocols(traced, undecided)


def auto_speculative_run(
    loop: ConcreteLoop,
    params: Optional[MachineParams] = None,
    config: Optional[RunConfig] = None,
) -> Tuple[Dict[str, ProtocolChoice], ConcreteOutcome]:
    """Choose protocols automatically, then run speculatively.

    Returns the (explainable) choices together with the outcome.  The
    heuristics only pick *which* run-time test to apply — correctness is
    still enforced by the test itself, so a profile that mispredicts the
    real execution merely costs a failed speculation.
    """
    choices = auto_protocols(loop)
    merged = dict(loop.protocols)
    live_out = set(loop.live_out)
    for name, choice in choices.items():
        if choice.protocol is not ProtocolKind.PLAIN:
            merged[name] = choice.protocol
    decided = ConcreteLoop(
        body=loop.body,
        iterations=loop.iterations,
        arrays=loop.arrays,
        protocols=merged,
        live_out=tuple(live_out),
        work_cycles=loop.work_cycles,
    )
    outcome = speculative_run(decided, params, config)
    return choices, outcome
