"""Compiler front-end: automatic protocol selection per array.

The paper assumes a parallelizing compiler (Polaris) decides, per
non-analyzable array, whether to apply the non-privatization test or to
speculatively privatize it (§2.2.2: "The compiler or the programmer can
use heuristics to decide whether or not the arrays should be
privatized"), falling back to "the most general test, namely
privatization with read-in and copy-out" when unsure (§4.1).

:func:`choose_protocols` implements those heuristics over a *profiling
trace* of the loop (one recorded execution — e.g. a previous serial
run), and :func:`auto_concrete_loop` applies them to a
:class:`~repro.semantics.ConcreteLoop` so users need not pick protocols
by hand.
"""

from .heuristics import ArrayProfile, ProtocolChoice, choose_protocols, profile_loop
from .frontend import auto_protocols, auto_speculative_run

__all__ = [
    "ArrayProfile",
    "ProtocolChoice",
    "auto_protocols",
    "auto_speculative_run",
    "choose_protocols",
    "profile_loop",
]
