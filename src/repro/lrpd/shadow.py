"""Logical shadow-array state for the software LRPD test.

Each element of a shadow array conceptually holds the iteration number
in which the mark was made (paper §2.2.2: "each element of the shadow
arrays holds the iteration number where the read or write occurred...
if we want to support loops of up to 2^16 iterations we need 2 bytes
per element").  The processor-wise variant only needs one bit per
element, packed 64 to a word (§2.2.3).

The marking rules:

* ``markwrite(i, t)``: set ``Aw[i]``; if ``Ar[i]`` was marked earlier in
  the *same* iteration ``t``, clear it (the element turned out to be
  written in the iteration after all, so condition (b)'s "neither
  before nor after" no longer holds).  Count distinct elements written
  per iteration into ``Atw``.
* ``markread(i, t)``: if the element was not written earlier in
  iteration ``t``: tentatively set ``Ar[i]`` and set ``Anp[i]``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np


class ArrayShadow:
    """Private shadow state of one (array, processor) pair.

    Timestamps are 1-based iteration numbers; 0 means unmarked.
    """

    def __init__(self, length: int, with_awmin: bool = False) -> None:
        self.length = length
        self.aw = np.zeros(length, dtype=np.int64)
        self.ar = np.zeros(length, dtype=np.int64)
        self.anp = np.zeros(length, dtype=np.int64)
        #: §2.2.3: the extra shadow array needed to support read-in and
        #: copy-out — the lowest iteration that wrote each element
        #: (0 = never written).
        self.with_awmin = with_awmin
        self.awmin = np.zeros(length, dtype=np.int64) if with_awmin else None
        #: total writes counted iteration-by-iteration (the Atw scalar)
        self.atw = 0

    def clear(self) -> None:
        self.aw.fill(0)
        self.ar.fill(0)
        self.anp.fill(0)
        if self.awmin is not None:
            self.awmin.fill(0)
        self.atw = 0

    # ------------------------------------------------------------------
    def markwrite(self, index: int, iteration: int) -> None:
        if int(self.aw[index]) != iteration:
            # First write to this element in this iteration.
            self.atw += 1
            self.aw[index] = iteration
            if self.awmin is not None and (
                int(self.awmin[index]) == 0 or iteration < int(self.awmin[index])
            ):
                self.awmin[index] = iteration
        if int(self.ar[index]) == iteration:
            # A read earlier in this same iteration is now covered
            # "after": Ar must reflect "not written in this iteration
            # neither before nor after".
            self.ar[index] = 0

    def markread(self, index: int, iteration: int) -> None:
        if int(self.aw[index]) != iteration:
            # Not written earlier in this iteration.  Ar is only set when
            # currently unmarked: an older iteration's (final) mark must
            # not be overwritten by this iteration's *tentative* mark,
            # which a later same-iteration write would clear.
            if int(self.ar[index]) == 0:
                self.ar[index] = iteration
            self.anp[index] = iteration

    def written_in(self, index: int, iteration: int) -> bool:
        return int(self.aw[index]) == iteration

    def ever_written(self, index: int) -> bool:
        return bool(self.aw[index])


@dataclasses.dataclass
class ShadowMergeResult:
    """Merged (global) shadow marks for one array.

    ``anp`` carries per-element *maximum* read-before-write iteration
    numbers and ``awmin`` (when the §2.2.3 extension is enabled) the
    per-element *minimum* writing iteration — together they answer the
    read-in/copy-out question ``max(Anp) <= Awmin``.
    """

    aw: np.ndarray
    ar: np.ndarray
    anp: np.ndarray
    atw: int
    awmin: "np.ndarray | None" = None

    @property
    def atm(self) -> int:
        """Number of distinct elements written anywhere (Atm)."""
        return int(np.count_nonzero(self.aw))


class LRPDState:
    """All shadow state of one speculative software execution.

    One :class:`ArrayShadow` exists per (array under test, processor).
    The same structure implements the iteration-wise test (marks carry
    iteration numbers) and the processor-wise test (marks carry the
    processor's super-iteration number, i.e. its chunk rank).
    """

    def __init__(self, num_processors: int, with_awmin: bool = False) -> None:
        self.num_processors = num_processors
        self.with_awmin = with_awmin
        self._shadows: Dict[str, List[ArrayShadow]] = {}
        #: whether each array was speculatively privatized by the compiler
        self.privatized: Dict[str, bool] = {}

    def register(self, name: str, length: int, privatized: bool) -> None:
        self._shadows[name] = [
            ArrayShadow(length, with_awmin=self.with_awmin)
            for _ in range(self.num_processors)
        ]
        self.privatized[name] = privatized

    def arrays(self) -> List[str]:
        return list(self._shadows)

    def shadow(self, name: str, proc: int) -> ArrayShadow:
        return self._shadows[name][proc]

    def clear(self) -> None:
        for shadows in self._shadows.values():
            for shadow in shadows:
                shadow.clear()

    # ------------------------------------------------------------------
    def merge(self, name: str) -> ShadowMergeResult:
        """The merging phase: OR the private shadows into global ones.

        For timestamp shadows the merged mark only needs to be non-zero
        where any private mark is (the analysis tests are existential).
        """
        shadows = self._shadows[name]
        length = shadows[0].length
        aw = np.zeros(length, dtype=np.int64)
        ar = np.zeros(length, dtype=np.int64)
        anp = np.zeros(length, dtype=np.int64)
        awmin = np.zeros(length, dtype=np.int64) if self.with_awmin else None
        atw = 0
        for shadow in shadows:
            np.maximum(aw, shadow.aw, out=aw)
            np.maximum(ar, shadow.ar, out=ar)
            np.maximum(anp, shadow.anp, out=anp)
            if awmin is not None and shadow.awmin is not None:
                # Minimum over non-zero (marked) entries.
                mask = shadow.awmin != 0
                unset = awmin == 0
                np.copyto(awmin, shadow.awmin, where=mask & unset)
                np.minimum(
                    awmin,
                    np.where(mask, shadow.awmin, awmin),
                    out=awmin,
                )
            atw += shadow.atw
        return ShadowMergeResult(aw=aw, ar=ar, anp=anp, atw=atw, awmin=awmin)
