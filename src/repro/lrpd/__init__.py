"""The software LRPD test (paper §2, after Rauchwerger & Padua).

This is the baseline the hardware scheme is evaluated against: the loop
is executed speculatively as a doall while *marking* shadow arrays
(``Ar``/``Aw``/``Anp``), the per-processor private shadows are *merged*
after the loop, and an *analysis* phase decides pass/fail:

* FAIL if ``any(Aw & Ar)`` — an element was written in one iteration
  and read (without being written) in another;
* else PASS (doall) if ``Atw == Atm`` — no element written by two
  iterations;
* else FAIL if ``any(Aw & Anp)`` — an element was read before being
  written, and written somewhere (not privatizable);
* else PASS (doall after privatization).

Both the *iteration-wise* and the *processor-wise* variants (§2.2.3)
are implemented; the processor-wise test packs shadow entries into
bitmaps but requires static chunked scheduling.

The package has two halves: :class:`~repro.lrpd.shadow.LRPDState`
carries the logical marking state (the actual algorithm, testable
against the oracle), and the runtime's executor emits the corresponding
shadow-array memory accesses so the *cost* of marking, merging and
analysis is simulated through the same memory hierarchy as the data.
"""

from .shadow import LRPDState, ArrayShadow
from .analysis import LRPDOutcome, analyze

__all__ = ["ArrayShadow", "LRPDOutcome", "LRPDState", "analyze"]
