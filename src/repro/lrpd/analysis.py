"""The LRPD analysis phase (paper §2.2.2 steps (a)-(e))."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from .shadow import LRPDState, ShadowMergeResult


@dataclasses.dataclass
class ArrayAnalysis:
    """Per-array outcome of the analysis phase."""

    name: str
    passed: bool
    #: which test decided: "doall" (step c), "privatized" (step e),
    #: "aw-and-ar" (step b), "not-privatizable" (step d)
    decided_by: str
    atw: int
    atm: int


@dataclasses.dataclass
class LRPDOutcome:
    """Loop-level outcome of the software test."""

    passed: bool
    arrays: Dict[str, ArrayAnalysis]
    #: first failing array, if any
    failed_array: Optional[str] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def analyze_array(
    name: str, merged: ShadowMergeResult, privatized: bool
) -> ArrayAnalysis:
    """Steps (a)-(e) for one array, plus the §2.2.3 read-in extension.

    (a) ``Atm`` = number of non-zero write marks.
    (b) FAIL if ``any(Aw & Ar)``.
    (c) PASS (doall) if ``Atw == Atm``.
    (d) FAIL if ``any(Aw & Anp)`` (only meaningful when privatized).
    (e) PASS (privatized doall) otherwise.
    (f) With the ``Awmin`` shadow array (§2.2.3): a FAIL from (b) or (d)
        is excused when every read-first iteration of every element is
        no later than the element's first writing iteration — the loop
        is then parallel with read-in and copy-out.
    """
    atm = merged.atm
    atw = merged.atw

    def read_in_rescue(decided_by: str) -> ArrayAnalysis:
        if privatized and merged.awmin is not None:
            written = merged.aw != 0
            read_first = merged.anp != 0
            conflict = written & read_first & (merged.anp > merged.awmin)
            if not bool(np.any(conflict)):
                return ArrayAnalysis(name, True, "read-in-copy-out", atw, atm)
        return ArrayAnalysis(name, False, decided_by, atw, atm)

    if bool(np.any((merged.aw != 0) & (merged.ar != 0))):
        return read_in_rescue("aw-and-ar")
    if atw == atm:
        return ArrayAnalysis(name, True, "doall", atw, atm)
    if not privatized:
        # Without privatization, multiple writers to one element are an
        # output dependence the test cannot excuse.
        return ArrayAnalysis(name, False, "not-privatizable", atw, atm)
    if bool(np.any((merged.aw != 0) & (merged.anp != 0))):
        return read_in_rescue("not-privatizable")
    return ArrayAnalysis(name, True, "privatized", atw, atm)


def analyze(state: LRPDState) -> LRPDOutcome:
    """Merge every array's shadows and run the analysis tests."""
    results: Dict[str, ArrayAnalysis] = {}
    failed: Optional[str] = None
    for name in state.arrays():
        merged = state.merge(name)
        result = analyze_array(name, merged, state.privatized[name])
        results[name] = result
        if not result.passed and failed is None:
            failed = name
    return LRPDOutcome(passed=failed is None, arrays=results, failed_array=failed)
