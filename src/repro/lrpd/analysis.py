"""The LRPD analysis phase (paper §2.2.2 steps (a)-(e))."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..types import ProtocolKind
from .shadow import LRPDState, ShadowMergeResult


@dataclasses.dataclass
class ArrayAnalysis:
    """Per-array outcome of the analysis phase."""

    name: str
    passed: bool
    #: which test decided: "doall" (step c), "privatized" (step e),
    #: "aw-and-ar" (step b), "not-privatizable" (step d)
    decided_by: str
    atw: int
    atm: int


@dataclasses.dataclass
class LRPDOutcome:
    """Loop-level outcome of the software test."""

    passed: bool
    arrays: Dict[str, ArrayAnalysis]
    #: first failing array, if any
    failed_array: Optional[str] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def analyze_array(
    name: str, merged: ShadowMergeResult, privatized: bool
) -> ArrayAnalysis:
    """Steps (a)-(e) for one array, plus the §2.2.3 read-in extension.

    (a) ``Atm`` = number of non-zero write marks.
    (b) FAIL if ``any(Aw & Ar)``.
    (c) PASS (doall) if ``Atw == Atm``.
    (d) FAIL if ``any(Aw & Anp)`` (only meaningful when privatized).
    (e) PASS (privatized doall) otherwise.
    (f) With the ``Awmin`` shadow array (§2.2.3): a FAIL from (b) or (d)
        is excused when every read-first iteration of every element is
        no later than the element's first writing iteration — the loop
        is then parallel with read-in and copy-out.
    """
    atm = merged.atm
    atw = merged.atw

    def read_in_rescue(decided_by: str) -> ArrayAnalysis:
        if privatized and merged.awmin is not None:
            written = merged.aw != 0
            read_first = merged.anp != 0
            conflict = written & read_first & (merged.anp > merged.awmin)
            if not bool(np.any(conflict)):
                return ArrayAnalysis(name, True, "read-in-copy-out", atw, atm)
        return ArrayAnalysis(name, False, decided_by, atw, atm)

    if bool(np.any((merged.aw != 0) & (merged.ar != 0))):
        return read_in_rescue("aw-and-ar")
    if atw == atm:
        return ArrayAnalysis(name, True, "doall", atw, atm)
    if not privatized:
        # Without privatization, multiple writers to one element are an
        # output dependence the test cannot excuse.
        return ArrayAnalysis(name, False, "not-privatizable", atw, atm)
    if bool(np.any((merged.aw != 0) & (merged.anp != 0))):
        return read_in_rescue("not-privatizable")
    return ArrayAnalysis(name, True, "privatized", atw, atm)


def serial_access_verdict(
    protocol: ProtocolKind,
    rows: Iterable[Tuple[int, int, int, int]],
) -> bool:
    """The iteration-serial pass/fail verdict a protocol must reach.

    ``rows`` lists every access to one array as ``(proc, virt, elem,
    is_write)``, where ``virt`` is the virtual iteration number and
    rows of the same ``(proc, virt)`` appear in program order.  An
    access is *read-first* when it is the first access of its
    ``(proc, virt, elem)`` group and a read — the per-iteration tag/
    table bits make any later same-iteration access invisible to the
    protocols, so only these group-leading accesses matter:

    * NONPRIV fails iff some element is written and touched by two or
      more distinct processors (§3.1's privatization-free criterion);
    * PRIV fails iff some element has a read-first in a higher-numbered
      iteration than some write (max ``R1st`` > min ``W``, §3.2-§3.3 —
      exact for time-stamped runs too, since raw iteration order
      refines the per-epoch effective order plus ``WrittenPast``);
    * PRIV_SIMPLE fails iff some element has any read-first and any
      write at all (the §4.1 ``AnyR1st``/``AnyW`` reduction, which the
      per-processor ``WriteAny`` bit extends across iterations).

    Pure and interleaving-invariant: the model checker's ground truth
    for every terminal state, and what the minimizer re-tests against.
    """
    seen: set = set()
    read_first: Dict[int, List[int]] = {}
    writes: Dict[int, List[int]] = {}
    touched: Dict[int, set] = {}
    for proc, virt, elem, is_write in rows:
        touched.setdefault(elem, set()).add(proc)
        group = (proc, virt, elem)
        if is_write:
            writes.setdefault(elem, []).append(virt)
        elif group not in seen:
            read_first.setdefault(elem, []).append(virt)
        seen.add(group)
    if protocol is ProtocolKind.NONPRIV:
        return not any(len(touched[e]) > 1 for e in writes)
    if protocol is ProtocolKind.PRIV:
        return not any(
            e in read_first and max(read_first[e]) > min(writes[e])
            for e in writes
        )
    if protocol is ProtocolKind.PRIV_SIMPLE:
        return not any(e in read_first for e in writes)
    raise ValueError(f"no serial verdict defined for protocol {protocol}")


def analyze(state: LRPDState) -> LRPDOutcome:
    """Merge every array's shadows and run the analysis tests."""
    results: Dict[str, ArrayAnalysis] = {}
    failed: Optional[str] = None
    for name in state.arrays():
        merged = state.merge(name)
        result = analyze_array(name, merged, state.privatized[name])
        results[name] = result
        if not result.passed and failed is None:
            failed = name
    return LRPDOutcome(passed=failed is None, arrays=results, failed_array=failed)
