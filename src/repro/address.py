"""Address space management: arrays, layout, and NUMA home assignment.

The simulator works on physical addresses.  An :class:`AddressSpace`
allocates :class:`ArrayDecl` regions page-aligned, and assigns each page
a home node.  Shared workload data uses round-robin page placement
(paper §5.2: "the pages of workload data are allocated round-robin
across the different memory modules"); private per-processor structures
(privatized copies, software shadow arrays) are placed entirely in the
owning processor's local node.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, Iterator, List, Optional

from .errors import AddressError, ConfigurationError
from .types import ProtocolKind


@dataclasses.dataclass(frozen=True)
class ArrayDecl:
    """One allocated array region.

    Attributes:
        name: unique identifier (e.g. ``"A"`` or ``"A.priv.3"``).
        base: physical base address, page aligned.
        length: number of elements.
        elem_bytes: bytes per element (the paper's workloads use 4, 8 or
            16-byte elements).
        protocol: which dependence-test protocol the array is under, or
            ``PLAIN`` for ordinary data.
        home_policy: ``"round_robin"`` or ``"local"``.
        local_node: home node for every page when ``home_policy`` is
            ``"local"``.
    """

    name: str
    base: int
    length: int
    elem_bytes: int
    protocol: ProtocolKind = ProtocolKind.PLAIN
    home_policy: str = "round_robin"
    local_node: int = 0

    @property
    def size_bytes(self) -> int:
        return self.length * self.elem_bytes

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def addr_of(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise AddressError(f"{self.name}[{index}] out of range 0..{self.length - 1}")
        return self.base + index * self.elem_bytes

    def index_of(self, addr: int) -> int:
        if not self.contains(addr):
            raise AddressError(f"address {addr:#x} outside array {self.name}")
        return (addr - self.base) // self.elem_bytes

    def element_addresses(self) -> Iterator[int]:
        for i in range(self.length):
            yield self.base + i * self.elem_bytes


class AddressSpace:
    """Allocates arrays and resolves addresses to arrays and home nodes."""

    def __init__(self, num_nodes: int, page_bytes: int = 4096, line_bytes: int = 64):
        if num_nodes < 1:
            raise ConfigurationError("need at least one node")
        self.num_nodes = num_nodes
        self.page_bytes = page_bytes
        self.line_bytes = line_bytes
        self._next_base = page_bytes  # keep address 0 unused
        self._arrays: Dict[str, ArrayDecl] = {}
        self._sorted: List[ArrayDecl] = []
        self._bases: List[int] = []
        # page number -> home node; pages are immutable once allocated,
        # so entries never go stale.
        self._home_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        name: str,
        length: int,
        elem_bytes: int = 8,
        protocol: ProtocolKind = ProtocolKind.PLAIN,
        home_policy: str = "round_robin",
        local_node: int = 0,
    ) -> ArrayDecl:
        """Allocate a new page-aligned array region."""
        if name in self._arrays:
            raise ConfigurationError(f"array {name!r} already allocated")
        if length < 1:
            raise ConfigurationError(f"array {name!r} needs length >= 1")
        if elem_bytes < 1:
            raise ConfigurationError(
                f"element size {elem_bytes} must be >= 1"
            )
        if elem_bytes > self.line_bytes and elem_bytes % self.line_bytes:
            # A wide element spans whole lines; a partial tail line
            # would break every line-granular walker's geometry.
            raise ConfigurationError(
                f"element size {elem_bytes} wider than a line must be a "
                f"multiple of the line size {self.line_bytes}"
            )
        if home_policy not in ("round_robin", "local"):
            raise ConfigurationError(f"unknown home policy {home_policy!r}")
        if not 0 <= local_node < self.num_nodes:
            raise ConfigurationError(f"local node {local_node} out of range")
        decl = ArrayDecl(
            name=name,
            base=self._next_base,
            length=length,
            elem_bytes=elem_bytes,
            protocol=protocol,
            home_policy=home_policy,
            local_node=local_node,
        )
        size = decl.size_bytes
        pages = -(-size // self.page_bytes)  # ceil
        self._next_base += pages * self.page_bytes
        self._arrays[name] = decl
        self._sorted.append(decl)
        self._bases.append(decl.base)
        return decl

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def array(self, name: str) -> ArrayDecl:
        try:
            return self._arrays[name]
        except KeyError:
            raise AddressError(f"no array named {name!r}") from None

    def decls(self) -> Iterator[ArrayDecl]:
        """All allocated arrays, in allocation order."""
        return iter(self._sorted)

    def arrays(self) -> List[ArrayDecl]:
        return list(self._sorted)

    def arrays_under_test(self) -> List[ArrayDecl]:
        return [a for a in self._sorted if a.protocol is not ProtocolKind.PLAIN]

    def find(self, addr: int) -> Optional[ArrayDecl]:
        """Return the array containing ``addr``, or None.

        This is the software analogue of the hardware address-range
        comparator of §4.1 (see :mod:`repro.core.translation` for the
        modeled hardware structure).
        """
        pos = bisect.bisect_right(self._bases, addr) - 1
        if pos < 0:
            return None
        decl = self._sorted[pos]
        return decl if addr < decl.end else None

    # ------------------------------------------------------------------
    # NUMA geometry
    # ------------------------------------------------------------------
    def page_of(self, addr: int) -> int:
        return addr // self.page_bytes

    def line_addr(self, addr: int) -> int:
        """Align an address down to its cache-line base."""
        return addr - (addr % self.line_bytes)

    def home_node(self, addr: int) -> int:
        """Home node of the page holding ``addr``.

        Round-robin by page number for shared data; fixed node for
        ``local`` arrays.  Addresses outside any array (none should
        occur in practice) fall back to round-robin.
        """
        page = addr // self.page_bytes
        node = self._home_cache.get(page)
        if node is not None:
            return node
        decl = self.find(addr)
        if decl is not None and decl.home_policy == "local":
            node = decl.local_node
        else:
            node = page % self.num_nodes
        self._home_cache[page] = node
        return node
