"""``python -m repro``: the package's command line.

Dispatches to the experiments CLI (:mod:`repro.experiments.cli`),
which also routes the ``ledger`` and ``modelcheck`` verb families.
"""

import sys

from .experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
