"""Shared enums and small value types used across the simulator."""

from __future__ import annotations

import enum


class AccessKind(enum.Enum):
    """Direction of a memory access."""

    READ = "read"
    WRITE = "write"


class ProtocolKind(enum.Enum):
    """Which dependence-test protocol governs an array under test.

    ``PLAIN`` is the base cache coherence protocol (arrays not under
    test).  The remaining members correspond to the paper's algorithms:

    * ``NONPRIV`` — non-privatization algorithm (§3.2, Figs 4/6/7).
    * ``PRIV`` — privatization algorithm with read-in and copy-out
      support (§3.3, Figs 8/9, state of Fig 5-(c)).
    * ``PRIV_SIMPLE`` — the reduced-state privatization variant without
      read-in/copy-out (Fig 5-(b), §4.1): 2 bits in the private
      directory plus a ``WriteAny`` bit.
    """

    PLAIN = "plain"
    NONPRIV = "nonpriv"
    PRIV = "priv"
    PRIV_SIMPLE = "priv-simple"


class LineState(enum.Enum):
    """Cache-side line states of the DASH-like invalidation protocol."""

    INVALID = "invalid"
    CLEAN = "clean"  # valid, possibly shared with other caches
    DIRTY = "dirty"  # exclusive, modified (owner)


class DirState(enum.Enum):
    """Directory-side line states."""

    UNCACHED = "uncached"
    SHARED = "shared"
    DIRTY = "dirty"


class FirstState(enum.Enum):
    """Cache-tag summary of the directory's ``First`` field (§3.2).

    The directory stores the full ID of the first processor to touch an
    element; a cache only needs to know whether that ID names itself,
    nobody, or another processor, so two bits suffice in the tags.
    """

    NONE = "none"
    OWN = "own"
    OTHER = "other"


class TimeCategory(enum.Enum):
    """Execution-time accounting buckets used by the paper's Figure 12."""

    BUSY = "busy"
    SYNC = "sync"
    MEM = "mem"


class Scenario(enum.Enum):
    """The four execution scenarios compared in the evaluation (§6)."""

    SERIAL = "Serial"
    IDEAL = "Ideal"
    SW = "SW"
    HW = "HW"
