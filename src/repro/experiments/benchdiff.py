"""Compare a fresh throughput-bench document against a committed baseline.

Used by the CI perf job: run ``repro.experiments bench``, then::

    python -m repro.experiments.benchdiff BENCH_PR4.json /tmp/bench_now.json

Every (engine, level) cell's best time is compared; a slowdown past the
threshold (default 15%) produces a warning line (``::warning::`` so
GitHub surfaces it as an annotation).  Non-gating by default — the exit
code is 0 even with regressions — because short benches on shared CI
runners are noisy; pass ``--strict`` to turn regressions into failures.

Both the flat PR3-era shape (top-level ``bare``/``telemetry``/
``monitors``) and the PR4 matrix shape (``engines.<engine>.<level>``)
are understood, so the very first run of the job can still diff against
a PR3-era baseline.

With ``--from-ledger N`` the baseline is not a file but the per-cell
*median* of the last N bench records archived in the run ledger
(``repro.obs.ledger``) — robust against one noisy historical
measurement in a way a single committed snapshot cannot be::

    python -m repro.experiments.benchdiff /tmp/bench_now.json \
        --from-ledger 5 --ledger-dir .repro-ledger
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Tuple

LEVELS = ("bare", "telemetry", "monitors")


def _cells(doc: dict) -> Dict[Tuple[str, str], float]:
    """``(engine, level) -> best_s`` for whichever document shape."""
    out: Dict[Tuple[str, str], float] = {}
    engines = doc.get("engines")
    if isinstance(engines, dict):
        for engine, levels in engines.items():
            for level in LEVELS:
                cell = levels.get(level)
                if cell and "best_s" in cell:
                    out[(engine, level)] = float(cell["best_s"])
        return out
    for level in LEVELS:  # flat PR3-era shape: scalar engine only
        cell = doc.get(level)
        if cell and "best_s" in cell:
            out[("scalar", level)] = float(cell["best_s"])
    return out


def compare(
    baseline: dict, current: dict, threshold_pct: float = 15.0
) -> Tuple[List[str], List[str]]:
    """Return (report_lines, regression_lines).

    A regression is a common cell whose best time grew by more than
    ``threshold_pct``.  Cells present on only one side are reported but
    never count as regressions.
    """
    base_cells = _cells(baseline)
    cur_cells = _cells(current)
    report: List[str] = []
    regressions: List[str] = []
    for key in sorted(set(base_cells) | set(cur_cells)):
        engine, level = key
        name = f"{engine}/{level}"
        base = base_cells.get(key)
        cur = cur_cells.get(key)
        if base is None or cur is None:
            side = "current" if base is None else "baseline"
            report.append(f"  {name}: only in {side} document")
            continue
        delta_pct = 100.0 * (cur / base - 1.0)
        report.append(
            f"  {name}: {base * 1e3:.1f} ms -> {cur * 1e3:.1f} ms "
            f"({delta_pct:+.1f}%)"
        )
        if delta_pct > threshold_pct:
            regressions.append(
                f"{name} slowed {delta_pct:+.1f}% "
                f"(threshold {threshold_pct:.0f}%)"
            )
    return report, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.benchdiff",
        description="Diff a bench JSON against a committed baseline.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="json",
        help="baseline and current JSON — or just the current document "
        "when --from-ledger supplies the baseline",
    )
    parser.add_argument(
        "--threshold", type=float, default=15.0,
        help="warn when a cell slows by more than this percentage",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on regressions instead of only warning",
    )
    parser.add_argument(
        "--from-ledger", type=int, default=0, metavar="N",
        help="baseline = per-cell median of the last N bench records "
        "archived in the run ledger (instead of a baseline file)",
    )
    parser.add_argument(
        "--ledger-dir", default=None,
        help="ledger root for --from-ledger (default .repro-ledger)",
    )
    args = parser.parse_args(argv)
    if args.from_ledger:
        if len(args.paths) != 1:
            parser.error("--from-ledger takes exactly one (current) JSON")
        from ..obs.ledger import (LEDGER_DIR, RunLedger,
                                  median_bench_baseline)

        ledger = RunLedger(args.ledger_dir or LEDGER_DIR)
        history = ledger.bench_history()[-args.from_ledger:]
        if not history:
            parser.error(
                f"no bench records in ledger {ledger.root!r}; seed with "
                "'repro-experiments ledger import BENCH_PR*.json'"
            )
        baseline = median_bench_baseline(history)
        baseline_name = (
            f"ledger median of last {len(history)} record(s)"
        )
        current_path = args.paths[0]
    else:
        if len(args.paths) != 2:
            parser.error("expected: baseline current (or --from-ledger N)")
        with open(args.paths[0]) as fh:
            baseline = json.load(fh)
        baseline_name = args.paths[0]
        current_path = args.paths[1]
    with open(current_path) as fh:
        current = json.load(fh)
    report, regressions = compare(baseline, current, args.threshold)
    print(f"bench diff ({baseline_name} -> current, best-of times):")
    for line in report:
        print(line)
    for regression in regressions:
        print(f"::warning::bench regression: {regression}")
    if not regressions:
        print(f"no cell slowed by more than {args.threshold:.0f}%")
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    raise SystemExit(main())
