"""JSON-friendly serialization of results (for tooling and the CLI)."""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Sequence

from ..runtime.driver import RunResult
from ..types import Scenario
from .figures import (Fig11Row, Fig12Row, Fig13Row, Fig14Row, Table1Row,
                      Table2Row, Table3Row)
from .scenarios import WorkloadResults


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten a RunResult into plain JSON types."""
    out: Dict[str, Any] = {
        "scenario": result.scenario.value,
        "loop": result.loop_name,
        "num_processors": result.num_processors,
        "passed": result.passed,
        "wall_cycles": result.wall,
        "breakdown": result.breakdown.as_dict(),
        "phases": dict(result.phases),
        "spec_messages": result.spec_messages,
    }
    if result.provenance is not None:
        out["provenance"] = result.provenance.as_dict()
    if result.metrics is not None:
        out["metrics"] = result.metrics
    if result.failure is not None:
        out["failure"] = {
            "reason": result.failure.reason,
            "element": list(result.failure.element) if result.failure.element else None,
            "detected_at": result.failure.detected_at,
            "processor": result.failure.processor,
            "iteration": result.failure.iteration,
        }
    if result.detection_cycle is not None:
        out["detection_cycle"] = result.detection_cycle
    if result.mem is not None:
        out["mem"] = dataclasses.asdict(result.mem)
    if result.assignment is not None:
        out["assignment"] = [list(its) for its in result.assignment]
    if result.violations is not None:
        out["violations"] = [v.to_dict() for v in result.violations]
    if result.forensics is not None:
        out["forensics"] = result.forensics.to_dict()
    if result.lrpd is not None:
        out["lrpd"] = {
            "passed": result.lrpd.passed,
            "failed_array": result.lrpd.failed_array,
            "arrays": {
                name: {
                    "passed": a.passed,
                    "decided_by": a.decided_by,
                    "atw": a.atw,
                    "atm": a.atm,
                }
                for name, a in result.lrpd.arrays.items()
            },
        }
    return out


def workload_results_to_dict(results: WorkloadResults) -> Dict[str, Any]:
    return {
        "workload": results.workload,
        "num_processors": results.num_processors,
        "scenarios": {
            scenario.value: {
                "wall_cycles": avg.wall,
                "speedup": results.speedup(scenario),
                "breakdown_vs_serial": results.normalized_breakdown(scenario).as_dict(),
                "executions": avg.executions,
                "failures": avg.failures,
            }
            for scenario, avg in results.scenarios.items()
        },
    }


def rows_to_json(rows: Sequence[object], indent: int = 2) -> str:
    """Serialize figure/table rows (dataclasses) to a JSON array."""
    out: List[Dict[str, Any]] = []
    for row in rows:
        if isinstance(row, Fig11Row):
            out.append(
                {
                    "workload": row.workload,
                    "num_processors": row.num_processors,
                    "ideal": row.ideal,
                    "sw": row.sw,
                    "hw": row.hw,
                }
            )
        elif isinstance(row, (Fig12Row, Fig13Row)):
            d = dataclasses.asdict(row)
            d["scenario"] = row.scenario.value
            if isinstance(row, Fig13Row):
                d["breakdown"] = row.breakdown.as_dict()
            out.append(d)
        elif isinstance(row, (Fig14Row, Table1Row, Table2Row, Table3Row)):
            out.append(dataclasses.asdict(row))
        else:
            raise TypeError(f"cannot serialize row type {type(row).__name__}")
    return json.dumps(out, indent=indent)
