"""JSON-friendly serialization of results (for tooling and the CLI).

``run_result_to_dict`` / ``run_result_from_dict`` round-trip a
``RunResult`` through plain JSON types — the storage format of the run
ledger (``repro.obs.ledger``), whose cache-read path must hand back a
bit-identical result.  JSON floats round-trip exactly (``repr`` is the
shortest round-trip representation), so every cycle count and phase
time survives unchanged.  Live objects that cannot be reconstructed
(monitor violations, forensic reports) serialize one-way: ``from_dict``
restores them as ``None``, which is why the ledger refuses to *serve*
runs recorded under monitors.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Sequence

from ..errors import SpeculationFailure
from ..lrpd.analysis import ArrayAnalysis, LRPDOutcome
from ..memsys.system import MemStats
from ..obs.provenance import RunProvenance
from ..runtime.driver import RunResult
from ..sim.stats import TimeBreakdown
from ..types import Scenario
from .figures import (Fig11Row, Fig12Row, Fig13Row, Fig14Row, Table1Row,
                      Table2Row, Table3Row)
from .scenarios import WorkloadResults


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Flatten a RunResult into plain JSON types."""
    out: Dict[str, Any] = {
        "scenario": result.scenario.value,
        "loop": result.loop_name,
        "num_processors": result.num_processors,
        "passed": result.passed,
        "wall_cycles": result.wall,
        "breakdown": result.breakdown.as_dict(),
        "phases": dict(result.phases),
        "spec_messages": result.spec_messages,
    }
    if result.provenance is not None:
        out["provenance"] = result.provenance.as_dict()
    if result.metrics is not None:
        out["metrics"] = result.metrics
    if result.failure is not None:
        out["failure"] = {
            "reason": result.failure.reason,
            "element": list(result.failure.element) if result.failure.element else None,
            "detected_at": result.failure.detected_at,
            "processor": result.failure.processor,
            "iteration": result.failure.iteration,
        }
    if result.detection_cycle is not None:
        out["detection_cycle"] = result.detection_cycle
    if result.mem is not None:
        out["mem"] = dataclasses.asdict(result.mem)
    if result.assignment is not None:
        out["assignment"] = [list(its) for its in result.assignment]
    if result.violations is not None:
        out["violations"] = [v.to_dict() for v in result.violations]
    if result.forensics is not None:
        out["forensics"] = result.forensics.to_dict()
    if result.lrpd is not None:
        out["lrpd"] = {
            "passed": result.lrpd.passed,
            "failed_array": result.lrpd.failed_array,
            "arrays": {
                name: {
                    "passed": a.passed,
                    "decided_by": a.decided_by,
                    "atw": a.atw,
                    "atm": a.atm,
                }
                for name, a in result.lrpd.arrays.items()
            },
        }
    return out


def _revive_metrics(metrics: Any) -> Any:
    """Undo JSON's key stringification inside a metrics snapshot.

    ``MetricsRegistry.as_dict()`` keys histogram buckets by int; JSON
    turns those into strings.  Reviving them keeps a ledger-served
    result bit-identical to the freshly simulated one even when
    telemetry stamped metrics into it.
    """
    if not isinstance(metrics, dict):
        return metrics
    for series in (metrics.get("histograms") or {}).values():
        for hist in series.values():
            buckets = hist.get("buckets")
            if isinstance(buckets, dict):
                hist["buckets"] = {int(k): v for k, v in buckets.items()}
    return metrics


def run_result_from_dict(doc: Dict[str, Any]) -> RunResult:
    """Rebuild a ``RunResult`` from :func:`run_result_to_dict` output.

    Inverse up to the one-way fields: ``violations``/``forensics`` come
    back as ``None`` (their live types hold event history and machine
    references that plain JSON cannot carry).  Everything else —
    provenance, failure attribution, LRPD outcome, memory counters,
    realized assignment — reconstructs exactly.
    """
    failure = None
    if "failure" in doc:
        f = doc["failure"]
        failure = SpeculationFailure(
            f["reason"],
            element=tuple(f["element"]) if f.get("element") else None,
            detected_at=f.get("detected_at"),
            iteration=f.get("iteration"),
            processor=f.get("processor"),
        )
    lrpd = None
    if "lrpd" in doc:
        l = doc["lrpd"]
        lrpd = LRPDOutcome(
            passed=l["passed"],
            arrays={
                name: ArrayAnalysis(
                    name=name,
                    passed=a["passed"],
                    decided_by=a["decided_by"],
                    atw=a["atw"],
                    atm=a["atm"],
                )
                for name, a in l["arrays"].items()
            },
            failed_array=l.get("failed_array"),
        )
    return RunResult(
        scenario=Scenario(doc["scenario"]),
        loop_name=doc["loop"],
        num_processors=doc["num_processors"],
        passed=doc["passed"],
        wall=doc["wall_cycles"],
        breakdown=TimeBreakdown(**doc["breakdown"]),
        phases=dict(doc["phases"]),
        failure=failure,
        detection_cycle=doc.get("detection_cycle"),
        lrpd=lrpd,
        spec_messages=doc.get("spec_messages", 0),
        mem=MemStats(**doc["mem"]) if "mem" in doc else None,
        provenance=(
            RunProvenance(**doc["provenance"]) if "provenance" in doc else None
        ),
        metrics=_revive_metrics(doc.get("metrics")),
        assignment=(
            [list(its) for its in doc["assignment"]]
            if "assignment" in doc
            else None
        ),
    )


def workload_results_to_dict(results: WorkloadResults) -> Dict[str, Any]:
    return {
        "workload": results.workload,
        "num_processors": results.num_processors,
        "scenarios": {
            scenario.value: {
                "wall_cycles": avg.wall,
                "speedup": results.speedup(scenario),
                "breakdown_vs_serial": results.normalized_breakdown(scenario).as_dict(),
                "executions": avg.executions,
                "failures": avg.failures,
            }
            for scenario, avg in results.scenarios.items()
        },
    }


def rows_to_json(rows: Sequence[object], indent: int = 2) -> str:
    """Serialize figure/table rows (dataclasses) to a JSON array."""
    out: List[Dict[str, Any]] = []
    for row in rows:
        if isinstance(row, Fig11Row):
            out.append(
                {
                    "workload": row.workload,
                    "num_processors": row.num_processors,
                    "ideal": row.ideal,
                    "sw": row.sw,
                    "hw": row.hw,
                }
            )
        elif isinstance(row, (Fig12Row, Fig13Row)):
            d = dataclasses.asdict(row)
            d["scenario"] = row.scenario.value
            if isinstance(row, Fig13Row):
                d["breakdown"] = row.breakdown.as_dict()
            out.append(d)
        elif isinstance(row, (Fig14Row, Table1Row, Table2Row, Table3Row)):
            out.append(dataclasses.asdict(row))
        else:
            raise TypeError(f"cannot serialize row type {type(row).__name__}")
    return json.dumps(out, indent=indent)
