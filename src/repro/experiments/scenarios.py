"""Scenario runner: a workload under Serial / Ideal / SW / HW.

Each workload is executed ``executions`` times (fresh machine per
execution, caches cold — §5.2 flushes caches between executions) and
results are averaged per execution, exactly as the paper reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..params import MachineParams, default_params
from ..runtime.driver import RunResult, run_hw, run_ideal, run_serial, run_sw
from ..sim.stats import TimeBreakdown
from ..types import Scenario
from ..workloads.base import Workload


@dataclasses.dataclass
class ScenarioAverages:
    """Per-execution averages of one scenario on one workload."""

    scenario: Scenario
    wall: float
    breakdown: TimeBreakdown
    executions: int
    failures: int
    runs: List[RunResult]

    @property
    def pass_rate(self) -> float:
        return 1.0 - self.failures / max(1, self.executions)


@dataclasses.dataclass
class WorkloadResults:
    """All four scenarios on one workload at one processor count."""

    workload: str
    num_processors: int
    scenarios: Dict[Scenario, ScenarioAverages]

    def speedup(self, scenario: Scenario) -> float:
        serial = self.scenarios[Scenario.SERIAL].wall
        return serial / self.scenarios[scenario].wall

    def normalized_breakdown(self, scenario: Scenario) -> TimeBreakdown:
        serial = self.scenarios[Scenario.SERIAL].wall
        return self.scenarios[scenario].breakdown.normalized_to(serial)

    def efficiency(self, scenario: Scenario) -> float:
        return self.speedup(scenario) / self.num_processors


def run_workload(
    workload: Workload,
    scenarios: Optional[List[Scenario]] = None,
    executions: Optional[int] = None,
    num_processors: Optional[int] = None,
) -> WorkloadResults:
    """Simulate ``workload`` under each scenario; average per execution."""
    chosen = scenarios or [Scenario.SERIAL, Scenario.IDEAL, Scenario.SW, Scenario.HW]
    procs = num_processors or workload.num_processors
    params = default_params(procs)
    loops = list(workload.executions(executions))

    # Serial results double as the failure-path reference for SW/HW.
    serial_runs = [run_serial(loop, params) for loop in loops]
    results: Dict[Scenario, ScenarioAverages] = {}

    for scenario in chosen:
        runs: List[RunResult] = []
        for loop, serial in zip(loops, serial_runs):
            if scenario is Scenario.SERIAL:
                runs.append(serial)
            elif scenario is Scenario.IDEAL:
                runs.append(run_ideal(loop, params, workload.ideal_config()))
            elif scenario is Scenario.SW:
                runs.append(
                    run_sw(loop, params, workload.sw_config(), serial_result=serial)
                )
            else:
                runs.append(
                    run_hw(loop, params, workload.hw_config(), serial_result=serial)
                )
        n = len(runs)
        avg_breakdown = TimeBreakdown()
        for r in runs:
            avg_breakdown.add(r.breakdown.scaled(1.0 / n))
        results[scenario] = ScenarioAverages(
            scenario=scenario,
            wall=sum(r.wall for r in runs) / n,
            breakdown=avg_breakdown,
            executions=n,
            failures=sum(0 if r.passed else 1 for r in runs),
            runs=runs,
        )
    return WorkloadResults(
        workload=workload.name, num_processors=procs, scenarios=results
    )
