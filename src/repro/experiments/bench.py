"""The ``bench`` subcommand: simulator-throughput regression harness.

Measures host wall-clock time of one representative speculative run
under three instrumentation levels — bare (no bus attached), telemetry
(full event recording) and monitors (invariant monitors + forensics
recorder) — interleaving the repetitions so host-load drift hits all
three equally, and writes a machine-readable ``BENCH_PR3.json``::

    {
      "benchmark": "simulator-throughput",
      "workload": {...},
      "reps": 7,
      "bare":      {"best_s": ..., "iters_per_s": ...},
      "telemetry": {"best_s": ..., "overhead_pct": ...},
      "monitors":  {"best_s": ..., "overhead_pct": ...},
      "provenance": {"config_hash": ..., "code_version": ...}
    }

Intended for CI trend tracking (upload the JSON as an artifact and
diff across commits); the hard <3% telemetry-off gate lives in
``benchmarks/bench_simulator_throughput.py`` and is unaffected.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List

from ..obs import MonitorSuite, Telemetry
from ..params import small_test_params
from ..runtime.driver import RunConfig, run_hw
from ..workloads.synthetic import parallel_nonpriv_loop

BENCH_ITERATIONS = 48
BENCH_ELEMENTS = 1024
BENCH_PROCESSORS = 4


def _measure(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_bench(out: str = "BENCH_PR3.json", reps: int = 7) -> str:
    loop = parallel_nonpriv_loop(
        "bench-throughput", elements=BENCH_ELEMENTS, iterations=BENCH_ITERATIONS
    )
    params = small_test_params(BENCH_PROCESSORS)

    def bare() -> None:
        run_hw(loop, params, RunConfig())

    def with_telemetry() -> None:
        run_hw(loop, params, RunConfig(telemetry=Telemetry()))

    def with_monitors() -> None:
        result = run_hw(loop, params, RunConfig(monitors=MonitorSuite()))
        assert result.violations == []

    variants: Dict[str, Callable[[], None]] = {
        "bare": bare,
        "telemetry": with_telemetry,
        "monitors": with_monitors,
    }
    times: Dict[str, List[float]] = {name: [] for name in variants}
    for name, fn in variants.items():  # warmup round, not measured
        fn()
    for _ in range(reps):
        for name, fn in variants.items():
            times[name].append(_measure(fn))

    best = {name: min(ts) for name, ts in times.items()}
    provenance = run_hw(loop, params, RunConfig()).provenance
    doc = {
        "benchmark": "simulator-throughput",
        "workload": {
            "loop": loop.name,
            "iterations": BENCH_ITERATIONS,
            "elements": BENCH_ELEMENTS,
            "num_processors": BENCH_PROCESSORS,
        },
        "reps": reps,
        "bare": {
            "best_s": best["bare"],
            "iters_per_s": BENCH_ITERATIONS / best["bare"],
        },
        "telemetry": {
            "best_s": best["telemetry"],
            "overhead_pct": 100.0 * (best["telemetry"] / best["bare"] - 1.0),
        },
        "monitors": {
            "best_s": best["monitors"],
            "overhead_pct": 100.0 * (best["monitors"] / best["bare"] - 1.0),
        },
        "provenance": provenance.as_dict() if provenance is not None else None,
    }
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    lines = [
        f"bench: {loop.name} on {BENCH_PROCESSORS} procs, best of {reps}",
        f"  bare:      {best['bare'] * 1e3:8.1f} ms "
        f"({doc['bare']['iters_per_s']:,.0f} loop iterations/s)",
        f"  telemetry: {best['telemetry'] * 1e3:8.1f} ms "
        f"({doc['telemetry']['overhead_pct']:+.1f}%)",
        f"  monitors:  {best['monitors'] * 1e3:8.1f} ms "
        f"({doc['monitors']['overhead_pct']:+.1f}%)",
        f"wrote {out}",
    ]
    return "\n".join(lines)
