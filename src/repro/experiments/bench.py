"""The ``bench`` subcommand: simulator-throughput regression harness.

Measures host wall-clock time of one representative speculative run
across the full engine x instrumentation matrix — all three execution
engines (``scalar``, the reference; ``batch``, the bit-identical fast
path; ``vector``, the whole-phase numpy kernel tier) under three
instrumentation levels: bare (no bus attached), telemetry (full
event recording) and monitors (invariant monitors + forensics
recorder).  Every matrix cell runs under the same static-chunk
schedule so the scalar/batch/vector columns compare like for like.
Repetitions are interleaved so host-load drift hits every cell
equally, and the result is a machine-readable JSON document::

    {
      "benchmark": "simulator-throughput",
      "workload": {...},
      "reps": 7,
      "engines": {
        "scalar": {"bare": {"best_s": ..., "iters_per_s": ...},
                   "telemetry": {"best_s": ..., "overhead_pct": ...},
                   "monitors":  {"best_s": ..., "overhead_pct": ...}},
        "batch":  {...},
        "vector": {...},
        "batch-fail":     {"bare": {...}},   # scenario rows, bare only
        "vector-fail":    {"bare": {...}},
        "batch-dynamic":  {"bare": {...}},
        "vector-dynamic": {"bare": {...}}
      },
      "bare": {...}, "telemetry": {...}, "monitors": {...},   # scalar
      "provenance": {"config_hash": ..., "code_version": ...}
    }

Beyond the matrix, two *scenario* rows pin the vector tier's widened
fast path against batch on the cases that used to delegate: ``fail``
(the same workload with one injected cross-processor flow dependence,
so every run aborts and re-executes serially) and ``dynamic``
(dynamic self-scheduling on a contention-free machine, decided through
the scratch-machine grab replay).  Scenario rows are bare-level only
and keyed as pseudo-engines (``vector-fail`` etc.) so ``benchdiff``
picks them up without a schema change.

The top-level ``bare``/``telemetry``/``monitors`` keys mirror the
scalar engine for continuity with the PR3-era document shape.  The CI
perf job runs this, diffs ``iters_per_s`` per cell against the
committed baseline (``BENCH_PR10.json``) and warns — non-gating — on a
>15% drop; the hard <3% telemetry-off gate lives in
``benchmarks/bench_simulator_throughput.py`` and is unaffected.

With ``jobs > 1`` the matrix cells fan out across worker processes
(one task per cell, every repetition timed *inside* its worker, GC
paused there too).  Parallel cells contend for the host's cores, so
absolute numbers are noisier than the default interleaved serial
measurement — use ``jobs=1`` (the default) for baseline documents.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import time
from typing import Callable, Dict, List, Tuple

from ..obs import MonitorSuite, Telemetry
from ..params import ContentionModel, small_test_params
from ..runtime.driver import RunConfig, run_hw
from ..runtime.schedule import SchedulePolicy, ScheduleSpec
from ..workloads.synthetic import failing_loop, parallel_nonpriv_loop
from .pool import PoolTask, run_tasks

BENCH_ITERATIONS = 48
BENCH_ELEMENTS = 1024
BENCH_PROCESSORS = 4
ENGINES = ("scalar", "batch", "vector")
LEVELS = ("bare", "telemetry", "monitors")
#: Scenario rows: batch vs vector on the cases the vector tier used to
#: delegate wholesale — every-run-FAILs and dynamic self-scheduling.
SCENARIOS = ("fail", "dynamic")
SCENARIO_ENGINES = ("batch", "vector")


def _bench_config(engine: str, **extra) -> RunConfig:
    # Static-chunk for every matrix cell so the scalar/batch/vector
    # columns measure the same schedule (the scenario rows below cover
    # the dynamic-schedule comparison explicitly).
    return RunConfig(
        engine=engine,
        schedule=ScheduleSpec(policy=SchedulePolicy.STATIC_CHUNK),
        **extra,
    )


def _measure(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _make_bench_workload():
    loop = parallel_nonpriv_loop(
        "bench-throughput", elements=BENCH_ELEMENTS, iterations=BENCH_ITERATIONS
    )
    return loop, small_test_params(BENCH_PROCESSORS)


def _run_cell(engine: str, level: str, loop, params) -> None:
    if level == "bare":
        run_hw(loop, params, _bench_config(engine))
    elif level == "telemetry":
        run_hw(loop, params, _bench_config(engine, telemetry=Telemetry()))
    else:
        result = run_hw(
            loop, params, _bench_config(engine, monitors=MonitorSuite())
        )
        assert result.violations == []


def _bench_cell_times(engine: str, level: str, reps: int) -> List[float]:
    """Pool task: warm up and time one matrix cell, wholly in-worker."""
    loop, params = _make_bench_workload()
    _run_cell(engine, level, loop, params)  # warmup, not measured
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        return [
            _measure(lambda: _run_cell(engine, level, loop, params))
            for _ in range(reps)
        ]
    finally:
        if was_enabled:
            gc.enable()


def _make_scenario_workload(scenario: str):
    """``(loop, params, config_factory, expect_passed)`` for a scenario row."""
    if scenario == "fail":
        # Inject the flow dependence across the static-chunk boundary
        # between processors 1 and 2 (12 iterations per chunk on 4
        # procs), so every run aborts and re-executes serially.
        loop = failing_loop(
            BENCH_ITERATIONS // 2, "bench-fail",
            elements=BENCH_ELEMENTS, iterations=BENCH_ITERATIONS,
        )
        params = small_test_params(BENCH_PROCESSORS)
        schedule = ScheduleSpec(policy=SchedulePolicy.STATIC_CHUNK)
        expect_passed = False
    elif scenario == "dynamic":
        loop = parallel_nonpriv_loop(
            "bench-dynamic", elements=BENCH_ELEMENTS,
            iterations=BENCH_ITERATIONS,
        )
        # Contention off: the one machine shape whose emergent grab
        # order the vector tier's scratch replay reproduces exactly.
        params = dataclasses.replace(
            small_test_params(BENCH_PROCESSORS),
            contention=ContentionModel(enabled=False),
        )
        schedule = ScheduleSpec(policy=SchedulePolicy.DYNAMIC)
        expect_passed = True
    else:
        raise ValueError(f"unknown scenario {scenario!r}")

    def config(engine: str) -> RunConfig:
        return RunConfig(engine=engine, schedule=schedule)

    return loop, params, config, expect_passed


def _run_scenario_cell(engine, scenario, loop, params, config, expect_passed):
    result = run_hw(loop, params, config(engine))
    # A wrong verdict means the cell is not measuring the path it
    # claims to (e.g. the FAIL row silently passing).
    assert result.passed is expect_passed, (engine, scenario)


def _bench_scenario_times(engine: str, scenario: str, reps: int) -> List[float]:
    """Pool task: warm up and time one scenario row, wholly in-worker."""
    loop, params, config, expect_passed = _make_scenario_workload(scenario)
    _run_scenario_cell(engine, scenario, loop, params, config, expect_passed)
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        return [
            _measure(
                lambda: _run_scenario_cell(
                    engine, scenario, loop, params, config, expect_passed
                )
            )
            for _ in range(reps)
        ]
    finally:
        if was_enabled:
            gc.enable()


def run_bench(
    out: str = "BENCH_PR10.json",
    reps: int = 7,
    jobs: int = 1,
    profile=None,
    ledger=None,
) -> str:
    """Measure the matrix and write ``out``.

    ``profile`` (a ``repro.obs.spans.ProfileSession``) routes every cell
    through the pool with per-task capture — even at ``jobs=1`` — so a
    merged trace shows where each cell's wall time goes.  Profiled cells
    carry the capture's event-bus overhead; never use a profiled run to
    regenerate a committed baseline document.

    ``ledger`` (a ``repro.obs.RunLedger``) archives the finished
    document as one bench history point — the timeline behind
    ``repro ledger trend`` and ``benchdiff --from-ledger``.
    """
    loop, params = _make_bench_workload()
    cells: List[Tuple[str, str]] = [
        (engine, level) for engine in ENGINES for level in LEVELS
    ]
    scenario_cells: List[Tuple[str, str]] = [
        (engine, scenario)
        for scenario in SCENARIOS
        for engine in SCENARIO_ENGINES
    ]
    if (jobs is not None and jobs != 1) or profile is not None:
        outputs = run_tasks(
            [
                PoolTask(_bench_cell_times, cell + (reps,),
                         label=f"bench:{cell[0]}/{cell[1]}")
                for cell in cells
            ]
            + [
                PoolTask(_bench_scenario_times, cell + (reps,),
                         label=f"bench:{cell[0]}-{cell[1]}")
                for cell in scenario_cells
            ],
            jobs=jobs,
            profile=profile,
        )
        times = dict(zip(cells + scenario_cells, outputs))
    else:
        times = {cell: [] for cell in cells + scenario_cells}
        scenarios = {s: _make_scenario_workload(s) for s in SCENARIOS}
        for engine, level in cells:  # warmup round, not measured
            _run_cell(engine, level, loop, params)
        for engine, scenario in scenario_cells:
            _run_scenario_cell(engine, scenario, *scenarios[scenario])
        # Collector pauses land randomly inside the short timed runs and
        # dominate rep-to-rep variance; pause collection while measuring
        # (the simulator allocates heavily but builds no cycles).
        was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            # Repetitions interleave across cells so host-load drift
            # hits every cell equally.
            for _ in range(reps):
                for engine, level in cells:
                    times[(engine, level)].append(
                        _measure(lambda: _run_cell(engine, level, loop, params))
                    )
                for engine, scenario in scenario_cells:
                    times[(engine, scenario)].append(
                        _measure(
                            lambda: _run_scenario_cell(
                                engine, scenario, *scenarios[scenario]
                            )
                        )
                    )
        finally:
            if was_enabled:
                gc.enable()

    best = {cell: min(ts) for cell, ts in times.items()}

    def _cell_doc(engine: str, level: str) -> Dict[str, float]:
        cell = {"best_s": best[(engine, level)]}
        if level == "bare":
            cell["iters_per_s"] = BENCH_ITERATIONS / best[(engine, level)]
        else:
            cell["overhead_pct"] = 100.0 * (
                best[(engine, level)] / best[(engine, "bare")] - 1.0
            )
        return cell

    engines_doc = {
        engine: {level: _cell_doc(engine, level) for level in LEVELS}
        for engine in ENGINES
    }
    for engine, scenario in scenario_cells:
        engines_doc[f"{engine}-{scenario}"] = {
            "bare": {
                "best_s": best[(engine, scenario)],
                "iters_per_s": BENCH_ITERATIONS / best[(engine, scenario)],
            }
        }
    provenance = run_hw(loop, params, _bench_config("scalar")).provenance
    doc = {
        "benchmark": "simulator-throughput",
        "workload": {
            "loop": loop.name,
            "iterations": BENCH_ITERATIONS,
            "elements": BENCH_ELEMENTS,
            "num_processors": BENCH_PROCESSORS,
        },
        "reps": reps,
        "engines": engines_doc,
        # Scalar-engine mirror of the PR3-era top-level shape.
        "bare": engines_doc["scalar"]["bare"],
        "telemetry": engines_doc["scalar"]["telemetry"],
        "monitors": engines_doc["scalar"]["monitors"],
        "provenance": provenance.as_dict() if provenance is not None else None,
    }
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    lines = [
        f"bench: {loop.name} on {BENCH_PROCESSORS} procs, best of {reps}",
    ]
    for engine in ENGINES:
        e = engines_doc[engine]
        lines.append(
            f"  {engine:6s} bare: {e['bare']['best_s'] * 1e3:8.1f} ms "
            f"({e['bare']['iters_per_s']:,.0f} loop iterations/s)  "
            f"telemetry {e['telemetry']['overhead_pct']:+.1f}%  "
            f"monitors {e['monitors']['overhead_pct']:+.1f}%"
        )
    lines.append(
        "  bare speedups: "
        f"batch/scalar {best[('scalar', 'bare')] / best[('batch', 'bare')]:.2f}x, "
        f"vector/batch {best[('batch', 'bare')] / best[('vector', 'bare')]:.2f}x, "
        f"vector/scalar {best[('scalar', 'bare')] / best[('vector', 'bare')]:.2f}x"
    )
    for scenario in SCENARIOS:
        b, v = best[("batch", scenario)], best[("vector", scenario)]
        lines.append(
            f"  {scenario:7s} batch: {b * 1e3:8.1f} ms  "
            f"vector: {v * 1e3:8.1f} ms  (vector/batch {b / v:.2f}x)"
        )
    if ledger is not None:
        key, deduped = ledger.record_bench(doc, label=out)
        lines.append(
            f"archived as ledger record {key[:12]}"
            + (" (already present)" if deduped else "")
        )
    lines.append(f"wrote {out}")
    return "\n".join(lines)
