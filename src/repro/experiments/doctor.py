"""The ``doctor`` subcommand: self-check the protocols under monitors.

Runs a battery of speculative executions with the invariant monitors of
``repro.obs.monitor`` armed:

* clean workloads for every protocol (non-privatization, full
  privatization, reduced privatization) — expected to pass with zero
  invariant violations;
* every injected dependence kind (flow/anti/output) against every
  protocol — each *detected* abort must come with a forensic report
  whose minimized reproducer still aborts.  Kinds a protocol legally
  tolerates (full privatization absorbs anti/output dependences into
  the private copies; the reduced scheme tolerates output dependences)
  are expected to pass.

Prints one verdict line per run, the forensic report of each abort,
and a summary.  The summary line starts with ``doctor: OK`` only when
every expectation held — grep-able for CI.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs import MonitorSuite
from ..params import MachineParams, small_test_params
from ..runtime.driver import RunConfig, run_hw
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..types import ProtocolKind
from ..workloads import faults
from ..workloads.synthetic import parallel_nonpriv_loop, privatizable_loop

#: (protocol label, dependence kind) pairs the protocol *tolerates*:
#: no abort expected even though the dependence is real.
TOLERATED = {
    ("priv", "anti"),
    ("priv", "output"),
    ("priv-simple", "output"),
}


def _workloads(iterations: int):
    """(label, clean loop, array under test, free element) per protocol."""
    # 16x elements: the generator touches at most 8 per iteration, so a
    # free element is guaranteed for the injections below.
    nonpriv = parallel_nonpriv_loop(
        "doctor-nonpriv", elements=16 * iterations, iterations=iterations
    )
    priv = privatizable_loop(
        "doctor-priv", elements=2 * iterations, iterations=iterations, simple=False
    )
    priv_simple = privatizable_loop(
        "doctor-priv-simple",
        elements=2 * iterations,
        iterations=iterations,
        simple=True,
    )

    def under_test(loop):
        return loop.arrays_under_test()[0].name

    return [
        ("nonpriv", nonpriv, under_test(nonpriv)),
        ("priv", priv, under_test(priv)),
        ("priv-simple", priv_simple, under_test(priv_simple)),
    ]


def run_doctor(
    iterations: int = 32,
    num_processors: int = 4,
    params: Optional[MachineParams] = None,
) -> str:
    if params is None:
        params = small_test_params(num_processors)
    lines: List[str] = []
    problems: List[str] = []
    aborts = 0

    def check(label: str, loop, expect_abort: bool) -> None:
        nonlocal aborts
        suite = MonitorSuite()
        # Static contiguous chunks: iteration placement is deterministic,
        # so the src/dst pair below always spans two processors and the
        # pass/abort expectations hold for any processor count >= 2.
        schedule = ScheduleSpec(
            SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.ITERATION
        )
        result = run_hw(loop, params, RunConfig(schedule=schedule, monitors=suite))
        verdict = "FAIL" if not result.passed else "pass"
        lines.append(
            f"  [{label}] {loop.name}: {verdict}, "
            f"{len(result.violations)} invariant violation(s)"
        )
        for violation in result.violations:
            problems.append(f"{loop.name}: {violation}")
            lines.append(f"    !! {violation}")
        if result.passed == expect_abort:
            problems.append(
                f"{loop.name}: expected "
                f"{'an abort' if expect_abort else 'a pass'}, got the opposite"
            )
        if not result.passed:
            aborts += 1
            report = result.forensics
            if report is None:
                problems.append(f"{loop.name}: abort without a forensic report")
                return
            lines.append("")
            lines.extend("    " + l for l in report.to_text().splitlines())
            lines.append("")
            if report.minimized_reproduces is not True:
                problems.append(
                    f"{loop.name}: minimized reproducer did not re-abort"
                )

    lines.append("clean runs (expect pass, zero violations):")
    for label, loop, _array in _workloads(iterations):
        check(label, loop, expect_abort=False)

    lines.append("injected dependences (expect abort unless tolerated):")
    # First and last iteration: with static contiguous chunks these sit
    # on the first and last processor respectively.
    src, dst = 1, iterations
    for label, loop, array in _workloads(iterations):
        element = faults.free_element(loop, array)
        for injected in faults.inject_each_kind(loop, array, src, dst, element):
            kind = injected.name.split("+")[1].split("@")[0]
            check(label, injected, expect_abort=(label, kind) not in TOLERATED)

    if problems:
        lines.append(f"doctor: {len(problems)} problem(s)")
        lines.extend(f"  - {p}" for p in problems)
    else:
        lines.append(
            f"doctor: OK — {aborts} abort(s), every one explained and "
            "reproduced; zero invariant violations"
        )
    return "\n".join(lines)
