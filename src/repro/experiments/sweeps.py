"""Generic parameter sweeps over the scenario drivers.

The ablation benches each hand-roll a loop over one knob; this module
provides the general tool: sweep any machine parameter, cost-model
field, or run-config knob across a set of values and collect one
:class:`SweepPoint` per value.  Used programmatically and by the
``sweep`` CLI verb.

Sweep points are independent deterministic simulations, so both sweep
functions accept ``jobs`` and fan the runs out through
:mod:`repro.experiments.pool`; results are assembled in value order and
are bit-identical to a ``jobs=1`` run.  The serial reference runs are
memoized by their *effective* serial parameters — sweeping a field the
serial scenario cannot see (e.g. ``num_processors``) runs the baseline
exactly once instead of once per point.  The vector tier adds its own
cross-point reuse underneath: extractions and dynamic-schedule replays
are memoized by loop fingerprint x schedule x geometry inside
``repro.runtime.vector``, so sweep points that only vary a knob the
extraction cannot see skip the op-stream walk entirely (the
``vector.extract_memo_hits`` / ``vector.replay_memo_hits`` span
counters show the reuse).

Example::

    from repro.experiments.sweeps import sweep_machine
    points = sweep_machine(
        loop, "contention.directory_occupancy", [0, 8, 16, 32],
        scenario=Scenario.IDEAL, jobs=4,
    )
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..obs.bus import EventBus
from ..obs.provenance import fingerprint
from ..params import MachineParams, default_params
from ..runtime.driver import (
    RunConfig,
    RunResult,
    _serial_params,
    run_hw,
    run_ideal,
    run_serial,
    run_sw,
)
from ..trace.loop import Loop
from ..types import Scenario
from .pool import PoolTask, run_tasks

RUNNERS: Dict[Scenario, Callable[..., RunResult]] = {
    Scenario.SERIAL: lambda loop, params, config: run_serial(loop, params, config),
    Scenario.IDEAL: run_ideal,
    Scenario.SW: run_sw,
    Scenario.HW: run_hw,
}


@dataclasses.dataclass
class SweepPoint:
    """One sweep sample."""

    value: Any
    result: RunResult
    serial_wall: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.serial_wall is None:
            return None
        return self.serial_wall / self.result.wall


def _replace_path(obj: Any, path: str, value: Any) -> Any:
    """dataclasses.replace along a dotted field path (frozen-safe)."""
    head, _, rest = path.partition(".")
    if not hasattr(obj, head):
        raise AttributeError(f"{type(obj).__name__} has no field {head!r}")
    if rest:
        inner = _replace_path(getattr(obj, head), rest, value)
        return dataclasses.replace(obj, **{head: inner})
    return dataclasses.replace(obj, **{head: value})


def _run_point(
    scenario: Scenario,
    loop: Loop,
    params: MachineParams,
    config: Optional[RunConfig],
) -> RunResult:
    """One sweep sample; module-level so pool workers can pickle it."""
    return RUNNERS[scenario](loop, params, config)


def _serial_key(params: MachineParams, config: Optional[RunConfig]) -> str:
    """Identity of the serial baseline a point run compares against.

    ``run_serial`` collapses the machine to one processor, so two
    points whose params differ only in fields that collapse away (e.g.
    ``num_processors``) share one baseline; the engine is the only
    config knob the serial scenario's timing can see.
    """
    engine = config.engine if config is not None else "scalar"
    return fingerprint({"params": _serial_params(params), "engine": engine})


def sweep_machine(
    loop: Loop,
    field_path: str,
    values: Sequence[Any],
    scenario: Scenario = Scenario.HW,
    base_params: Optional[MachineParams] = None,
    config: Optional[RunConfig] = None,
    relative_to_serial: bool = True,
    jobs: int = 1,
    timeout: Optional[float] = None,
    bus: Optional[EventBus] = None,
    profile: Optional[Any] = None,
) -> List[SweepPoint]:
    """Sweep a (possibly nested) MachineParams field.

    ``field_path`` is dotted, e.g. ``"contention.directory_occupancy"``
    or ``"num_processors"``.  When ``relative_to_serial`` is set, each
    point also gets a Serial reference run at the same parameters (and
    the same config), memoized across points with identical effective
    serial parameters, so ``point.speedup`` is meaningful.  ``jobs``
    fans the runs out across processes (see module docstring).
    """
    base = base_params or default_params()
    config = config or RunConfig()
    point_params = [_replace_path(base, field_path, value) for value in values]

    need_serial = relative_to_serial and scenario is not Scenario.SERIAL
    serial_keys: List[str] = []
    serial_reps: Dict[str, MachineParams] = {}
    if need_serial:
        for params in point_params:
            key = _serial_key(params, config)
            serial_keys.append(key)
            serial_reps.setdefault(key, params)

    tasks = [
        PoolTask(_run_point, (scenario, loop, params, config),
                 label=f"{field_path}={value}")
        for value, params in zip(values, point_params)
    ]
    serial_order = list(serial_reps)
    tasks.extend(
        PoolTask(_run_point, (Scenario.SERIAL, loop, serial_reps[key], config),
                 label=f"serial:{key[:12]}")
        for key in serial_order
    )
    if profile is not None and need_serial:
        # Points sharing effective serial parameters reuse one memoized
        # serial baseline run; surface the saving in the rollup.
        profile.count("sweep.serial_memo_hits", len(values) - len(serial_order))
    outputs = run_tasks(tasks, jobs=jobs, timeout=timeout, bus=bus,
                        profile=profile)

    serial_walls = {
        key: outputs[len(values) + j].wall for j, key in enumerate(serial_order)
    }
    return [
        SweepPoint(
            value=value,
            result=outputs[i],
            serial_wall=serial_walls[serial_keys[i]] if need_serial else None,
        )
        for i, value in enumerate(values)
    ]


def sweep_config(
    loop: Loop,
    make_config: Callable[[Any], RunConfig],
    values: Sequence[Any],
    scenario: Scenario = Scenario.HW,
    params: Optional[MachineParams] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
    bus: Optional[EventBus] = None,
    profile: Optional[Any] = None,
) -> List[SweepPoint]:
    """Sweep a RunConfig-valued knob (scheduling, chunk size, flags).

    ``make_config`` is called once per value *in the calling process*;
    the resulting configs travel to the workers as plain data.
    """
    params = params or default_params()
    tasks = [
        PoolTask(_run_point, (scenario, loop, params, make_config(value)),
                 label=f"config={value}")
        for value in values
    ]
    tasks.append(
        PoolTask(_run_point, (Scenario.SERIAL, loop, params, None),
                 label="serial")
    )
    outputs = run_tasks(tasks, jobs=jobs, timeout=timeout, bus=bus,
                        profile=profile)
    serial_wall = outputs[-1].wall
    return [
        SweepPoint(value=value, result=outputs[i], serial_wall=serial_wall)
        for i, value in enumerate(values)
    ]


def format_sweep(points: Sequence[SweepPoint], label: str = "value") -> str:
    lines = [
        f"{label:>16} {'wall':>12} {'speedup':>8} {'passed':>7}",
        "-" * 48,
    ]
    for p in points:
        speedup = f"{p.speedup:.2f}" if p.speedup is not None else "-"
        lines.append(
            f"{str(p.value):>16} {p.result.wall:>12,.0f} {speedup:>8} "
            f"{str(p.result.passed):>7}"
        )
    return "\n".join(lines)
