"""Generic parameter sweeps over the scenario drivers.

The ablation benches each hand-roll a loop over one knob; this module
provides the general tool: sweep any machine parameter, cost-model
field, or run-config knob across a set of values and collect one
:class:`SweepPoint` per value.  Used programmatically and by the
``sweep`` CLI verb.

Example::

    from repro.experiments.sweeps import sweep_machine
    points = sweep_machine(
        loop, "contention.directory_occupancy", [0, 8, 16, 32],
        scenario=Scenario.IDEAL,
    )
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..params import MachineParams, default_params
from ..runtime.driver import (
    RunConfig,
    RunResult,
    run_hw,
    run_ideal,
    run_serial,
    run_sw,
)
from ..trace.loop import Loop
from ..types import Scenario

RUNNERS: Dict[Scenario, Callable[..., RunResult]] = {
    Scenario.SERIAL: lambda loop, params, config: run_serial(loop, params, config),
    Scenario.IDEAL: run_ideal,
    Scenario.SW: run_sw,
    Scenario.HW: run_hw,
}


@dataclasses.dataclass
class SweepPoint:
    """One sweep sample."""

    value: Any
    result: RunResult
    serial_wall: Optional[float] = None

    @property
    def speedup(self) -> Optional[float]:
        if self.serial_wall is None:
            return None
        return self.serial_wall / self.result.wall


def _replace_path(obj: Any, path: str, value: Any) -> Any:
    """dataclasses.replace along a dotted field path (frozen-safe)."""
    head, _, rest = path.partition(".")
    if not hasattr(obj, head):
        raise AttributeError(f"{type(obj).__name__} has no field {head!r}")
    if rest:
        inner = _replace_path(getattr(obj, head), rest, value)
        return dataclasses.replace(obj, **{head: inner})
    return dataclasses.replace(obj, **{head: value})


def sweep_machine(
    loop: Loop,
    field_path: str,
    values: Sequence[Any],
    scenario: Scenario = Scenario.HW,
    base_params: Optional[MachineParams] = None,
    config: Optional[RunConfig] = None,
    relative_to_serial: bool = True,
) -> List[SweepPoint]:
    """Sweep a (possibly nested) MachineParams field.

    ``field_path`` is dotted, e.g. ``"contention.directory_occupancy"``
    or ``"num_processors"``.  When ``relative_to_serial`` is set, each
    point also runs the Serial scenario at the same parameters so
    ``point.speedup`` is meaningful.
    """
    base = base_params or default_params()
    config = config or RunConfig()
    runner = RUNNERS[scenario]
    points: List[SweepPoint] = []
    for value in values:
        params = _replace_path(base, field_path, value)
        result = runner(loop, params, config)
        serial_wall = None
        if relative_to_serial and scenario is not Scenario.SERIAL:
            serial_wall = run_serial(loop, params).wall
        points.append(SweepPoint(value=value, result=result, serial_wall=serial_wall))
    return points


def sweep_config(
    loop: Loop,
    make_config: Callable[[Any], RunConfig],
    values: Sequence[Any],
    scenario: Scenario = Scenario.HW,
    params: Optional[MachineParams] = None,
) -> List[SweepPoint]:
    """Sweep a RunConfig-valued knob (scheduling, chunk size, flags)."""
    params = params or default_params()
    runner = RUNNERS[scenario]
    serial_wall = run_serial(loop, params).wall
    points: List[SweepPoint] = []
    for value in values:
        result = runner(loop, params, make_config(value))
        points.append(SweepPoint(value=value, result=result, serial_wall=serial_wall))
    return points


def format_sweep(points: Sequence[SweepPoint], label: str = "value") -> str:
    lines = [
        f"{label:>16} {'wall':>12} {'speedup':>8} {'passed':>7}",
        "-" * 48,
    ]
    for p in points:
        speedup = f"{p.speedup:.2f}" if p.speedup is not None else "-"
        lines.append(
            f"{str(p.value):>16} {p.result.wall:>12,.0f} {speedup:>8} "
            f"{str(p.result.passed):>7}"
        )
    return "\n".join(lines)
