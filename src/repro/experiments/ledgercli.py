"""The ``ledger`` CLI verb family: query the provenance-keyed run archive.

::

    python -m repro.experiments ledger list [--kind run] [--limit 20]
    python -m repro.experiments ledger show <key-prefix>
    python -m repro.experiments ledger diff <key-a> <key-b>
    python -m repro.experiments ledger import BENCH_PR3.json BENCH_PR4.json ...
    python -m repro.experiments ledger trend
    python -m repro.experiments ledger regressions [--window 5]

``trend`` reconstructs the per-engine bare-loop throughput timeline
from the archived bench records (seed the history by ``import``-ing the
committed ``BENCH_PR*.json`` snapshots); ``regressions`` generalizes
:mod:`repro.experiments.benchdiff` from a one-pair compare to the
newest record against the median of the previous N.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from ..obs.ledger import (
    LEDGER_DIR,
    RunLedger,
    bench_bare_series,
    median_bench_baseline,
)
from . import benchdiff

ENGINE_ORDER = ("scalar", "batch", "vector")


def _engines_sorted(bare: dict) -> List[str]:
    known = [e for e in ENGINE_ORDER if e in bare]
    return known + sorted(set(bare) - set(known))


def _cmd_list(ledger: RunLedger, args) -> int:
    entries = list(ledger.records(kind=args.kind))
    if args.limit:
        entries = entries[-args.limit:]
    if not entries:
        print("ledger: no records")
        return 0
    for e in entries:
        extra = ""
        if e["kind"] == "run":
            verdict = "pass" if e.get("passed") else "FAIL"
            extra = (
                f"{e.get('scenario')}/{e.get('engine')} "
                f"{e.get('loop')!r} {verdict} "
                f"wall={e.get('wall_cycles'):.0f}"
            )
        elif e["kind"] == "bench":
            bare = e.get("bare_iters_per_s") or {}
            extra = e.get("label", "") + "  " + "  ".join(
                f"{eng} {bare[eng]:,.0f}/s" for eng in _engines_sorted(bare)
            )
        elif e["kind"] == "diffsweep":
            extra = f"{e.get('conforming')}/{e.get('seeds')} conforming"
        else:
            extra = e.get("label", "")
        print(f"  {e['key'][:12]}  {e['kind']:9s} {extra}")
    print(f"{len(entries)} record(s) in {ledger.root}")
    return 0


def _cmd_show(ledger: RunLedger, args) -> int:
    record = ledger.lookup(ledger.resolve(args.key))
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _flatten(doc, prefix=""):
    """``dotted.path -> scalar`` over nested dicts/lists for diffing."""
    if isinstance(doc, dict):
        for k, v in doc.items():
            yield from _flatten(v, f"{prefix}.{k}" if prefix else str(k))
    elif isinstance(doc, list):
        for i, v in enumerate(doc):
            yield from _flatten(v, f"{prefix}[{i}]")
    else:
        yield prefix, doc


def _cmd_diff(ledger: RunLedger, args) -> int:
    a = ledger.lookup(ledger.resolve(args.key_a))
    b = ledger.lookup(ledger.resolve(args.key_b))
    flat_a = dict(_flatten(a))
    flat_b = dict(_flatten(b))
    differing = sorted(
        path
        for path in set(flat_a) | set(flat_b)
        if flat_a.get(path) != flat_b.get(path)
    )
    differing = [p for p in differing if not p.startswith("key")]
    if not differing:
        print("records are identical (apart from their keys)")
        return 0
    print(f"{len(differing)} differing field(s):")
    for path in differing:
        print(f"  {path}: {flat_a.get(path)!r} -> {flat_b.get(path)!r}")
    return 0


def _cmd_import(ledger: RunLedger, args) -> int:
    for path in args.files:
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("benchmark") != "simulator-throughput" and "bare" not in doc:
            print(f"  {path}: not a bench document, skipped")
            continue
        key, deduped = ledger.record_bench(doc, label=os.path.basename(path))
        status = "already archived" if deduped else "archived"
        print(f"  {key[:12]}  {status}  {os.path.basename(path)}")
    return 0


def _cmd_trend(ledger: RunLedger, args) -> int:
    series = bench_bare_series(ledger.bench_history())
    if not series:
        print("ledger trend: no bench records (seed with "
              "'ledger import BENCH_PR*.json')")
        return 0
    print("ledger trend: bare-loop iterations/s per engine "
          "(oldest -> newest)")
    width = max(len(label) for label, _ in series)
    for label, bare in series:
        cells = "  ".join(
            f"{engine} {bare[engine]:,.0f}" for engine in _engines_sorted(bare)
        )
        print(f"  {label:<{width}}  {cells}")
    first, last = series[0][1], series[-1][1]
    if first and last:
        lo = min(first.values())
        hi = max(last.values())
        print(f"  best-engine trajectory: {lo:,.0f} -> {hi:,.0f} iters/s "
              f"({hi / lo:.1f}x over {len(series)} records)")
    return 0


def _cmd_regressions(ledger: RunLedger, args) -> int:
    history = ledger.bench_history()
    if len(history) < 2:
        print("ledger regressions: need at least 2 bench records")
        return 0
    window = history[-(args.window + 1):-1]
    newest = history[-1]
    baseline = median_bench_baseline(window)
    report, regressions = benchdiff.compare(
        baseline, newest["bench"], args.threshold
    )
    print(
        f"ledger regressions: {newest['label'] or newest['key'][:12]} vs "
        f"median of previous {len(window)} record(s), "
        f"threshold {args.threshold:.0f}%"
    )
    for line in report:
        print(line)
    for regression in regressions:
        print(f"::warning::bench regression: {regression}")
    if not regressions:
        print(f"no cell slowed by more than {args.threshold:.0f}%")
    return 1 if (args.strict and regressions) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments ledger",
        description="Query the provenance-keyed run ledger.",
    )
    parser.add_argument(
        "--ledger-dir",
        default=os.environ.get("REPRO_LEDGER_DIR", LEDGER_DIR),
        help="ledger root directory (default %(default)s, or "
        "$REPRO_LEDGER_DIR)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="timeline of archived records")
    p.add_argument("--kind", choices=("run", "bench", "diffsweep", "sweep"))
    p.add_argument("--limit", type=int, default=0,
                   help="only the newest N records")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("show", help="print one full record")
    p.add_argument("key", help="record key (abbreviations accepted)")
    p.set_defaults(fn=_cmd_show)

    p = sub.add_parser("diff", help="field-level diff of two records")
    p.add_argument("key_a")
    p.add_argument("key_b")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("import",
                       help="seed bench history from BENCH_PR*.json files")
    p.add_argument("files", nargs="+")
    p.set_defaults(fn=_cmd_import)

    p = sub.add_parser("trend",
                       help="per-engine iters/s timeline from bench records")
    p.set_defaults(fn=_cmd_trend)

    p = sub.add_parser(
        "regressions",
        help="newest bench record vs the median of the previous N",
    )
    p.add_argument("--window", type=int, default=5,
                   help="number of prior records in the median baseline")
    p.add_argument("--threshold", type=float, default=15.0,
                   help="warn when a cell slows by more than this pct")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on regressions instead of only warning")
    p.set_defaults(fn=_cmd_regressions)

    args = parser.parse_args(argv)
    try:
        return args.fn(RunLedger(args.ledger_dir), args)
    except BrokenPipeError:  # e.g. `ledger list | head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
