"""Per-figure/table data generators for the paper's evaluation (§6).

Every public function returns plain dataclass rows so the report layer,
the benchmarks and the tests can share them.  ``preset`` selects the
simulation size: ``quick`` for benches/CI, ``default`` for the numbers
recorded in EXPERIMENTS.md, ``full`` for long runs closer to the
paper's iteration counts (the *shape* of the results is stable across
presets; only noise shrinks).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..core.accessbits import state_bits_per_element
from ..params import default_params
from ..runtime.driver import RunConfig, run_hw, run_serial, run_sw
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..sim.stats import TimeBreakdown
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import AccessOp, read
from ..types import ProtocolKind, Scenario
from ..workloads import AdmWorkload, OceanWorkload, P3mWorkload, TrackWorkload
from ..workloads.base import Workload
from .scenarios import WorkloadResults, run_workload

#: per-preset (scale, executions) for each workload
PRESETS: Dict[str, Dict[str, Tuple[float, int]]] = {
    "quick": {"Ocean": (0.15, 2), "P3m": (0.05, 1), "Adm": (0.25, 2), "Track": (0.6, 3)},
    "default": {"Ocean": (0.4, 4), "P3m": (0.12, 1), "Adm": (0.75, 4), "Track": (1.0, 6)},
    "full": {"Ocean": (1.0, 16), "P3m": (1.0, 1), "Adm": (1.0, 12), "Track": (2.0, 12)},
}

WORKLOAD_CLASSES = {
    "Ocean": OceanWorkload,
    "P3m": P3mWorkload,
    "Adm": AdmWorkload,
    "Track": TrackWorkload,
}


def make_workload(name: str, preset: str = "quick", seed: int = 2026) -> Workload:
    scale, _ = PRESETS[preset][name]
    return WORKLOAD_CLASSES[name](seed=seed, scale=scale)


def preset_executions(name: str, preset: str) -> int:
    return PRESETS[preset][name][1]


# ----------------------------------------------------------------------
# Figure 11 — speedups of Ideal / SW / HW
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Fig11Row:
    workload: str
    num_processors: int
    ideal: float
    sw: float
    hw: float
    results: WorkloadResults


def fig11_speedups(
    preset: str = "quick", workloads: Optional[List[str]] = None, seed: int = 2026
) -> List[Fig11Row]:
    """Figure 11: loop speedups (Ocean on 8 processors, rest on 16)."""
    rows: List[Fig11Row] = []
    for name in workloads or ["Ocean", "P3m", "Adm", "Track"]:
        workload = make_workload(name, preset, seed)
        res = run_workload(workload, executions=preset_executions(name, preset))
        rows.append(
            Fig11Row(
                workload=name,
                num_processors=res.num_processors,
                ideal=res.speedup(Scenario.IDEAL),
                sw=res.speedup(Scenario.SW),
                hw=res.speedup(Scenario.HW),
                results=res,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 12 — execution time breakdown, normalized to Serial
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Fig12Row:
    workload: str
    scenario: Scenario
    num_processors: int
    busy: float
    sync: float
    mem: float

    @property
    def total(self) -> float:
        return self.busy + self.sync + self.mem


def fig12_breakdown(
    preset: str = "quick", workloads: Optional[List[str]] = None, seed: int = 2026
) -> List[Fig12Row]:
    """Figure 12: Busy/Sync/Mem per scenario, normalized to Serial."""
    rows: List[Fig12Row] = []
    for name in workloads or ["Ocean", "P3m", "Adm", "Track"]:
        workload = make_workload(name, preset, seed)
        res = run_workload(workload, executions=preset_executions(name, preset))
        for scenario in (Scenario.SERIAL, Scenario.IDEAL, Scenario.SW, Scenario.HW):
            bd = res.normalized_breakdown(scenario)
            procs = 1 if scenario is Scenario.SERIAL else res.num_processors
            rows.append(
                Fig12Row(name, scenario, procs, bd.busy, bd.sync, bd.mem)
            )
    return rows


# ----------------------------------------------------------------------
# Figure 13 — slowdown when the test fails (forced failures, §6.2)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Fig13Row:
    workload: str
    scenario: Scenario
    normalized_time: float  # vs Serial
    breakdown: TimeBreakdown
    detection_cycle: Optional[float] = None


def _forced_failure_loop(
    name: str, preset: str, seed: int
) -> Tuple[Loop, RunConfig, RunConfig]:
    """Build the §6.2 forced-failure instance of each loop and the
    (hw_config, sw_config) under which it must fail."""
    workload = make_workload(name, preset, seed)
    loop = next(workload.executions(1))
    if name == "Ocean":
        # "insert a cross-iteration dependence between iterations 1 and 2".
        # Iterations 1 and 2 must land on different processors for either
        # test to (correctly) fail, so both schemes run at iteration
        # granularity here: single-iteration cyclic blocks for HW, the
        # iteration-wise test for SW.
        victim = next(
            op for op in loop.iterations[0] if isinstance(op, AccessOp) and op.is_write
        )
        loop.iterations[1].insert(0, read(victim.array, victim.index))
        hw = RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK)
        )
        sw = RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.ITERATION)
        )
        return loop, hw, sw
    if name in ("P3m", "Adm"):
        # "we do not privatize the arrays under test and run the
        # non-privatization algorithm" -> fails on the scratch arrays.
        arrays = [
            dataclasses.replace(a, protocol=ProtocolKind.NONPRIV)
            if a.privatized
            else a
            for a in loop.arrays
        ]
        downgraded = Loop(loop.name + ".nonpriv", arrays, loop.iterations)
        # The iteration-wise software test works under any scheduling, so
        # keep the workload's own policy (dynamic for the imbalanced P3m).
        base = workload.sw_config().schedule
        sw = RunConfig(
            schedule=ScheduleSpec(
                base.policy, base.chunk_iterations, VirtualMode.ITERATION
            )
        )
        return downgraded, workload.hw_config(), sw
    # Track: "run the iteration-wise tests on the loop instantiation
    # that needs processor-wise tests to pass".  For the hardware
    # scheme that means single-iteration cyclic blocks, which split the
    # dependent pairs across processors.
    dep_index = next(
        i for i in range(workload.paper_executions)
        if workload.is_dependent_execution(i)
    )
    loops = list(workload.executions(dep_index + 1))
    loop = loops[dep_index]
    hw = RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK))
    sw = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.ITERATION)
    )
    return loop, hw, sw


def fig13_failure(
    preset: str = "quick", workloads: Optional[List[str]] = None, seed: int = 2026
) -> List[Fig13Row]:
    """Figure 13: execution time of one forced-failure instance of each
    loop under Serial, SW and HW, normalized to Serial."""
    rows: List[Fig13Row] = []
    for name in workloads or ["Ocean", "P3m", "Adm", "Track"]:
        workload = make_workload(name, preset, seed)
        loop, hw_cfg, sw_cfg = _forced_failure_loop(name, preset, seed)
        params = default_params(workload.num_processors)
        serial = run_serial(loop, params)
        sw = run_sw(loop, params, sw_cfg, serial_result=serial)
        hw = run_hw(loop, params, hw_cfg, serial_result=serial)
        rows.append(
            Fig13Row(
                name, Scenario.SERIAL, 1.0,
                serial.breakdown.normalized_to(serial.wall),
            )
        )
        for run in (sw, hw):
            rows.append(
                Fig13Row(
                    name,
                    run.scenario,
                    run.wall / serial.wall,
                    run.breakdown.normalized_to(serial.wall),
                    detection_cycle=run.detection_cycle,
                )
            )
    return rows


# ----------------------------------------------------------------------
# Figure 14 — scalability (8 vs 16 processors)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Fig14Row:
    workload: str
    num_processors: int
    ideal: float
    sw: float
    hw: float


def fig14_scalability(
    preset: str = "quick",
    workloads: Optional[List[str]] = None,
    processor_counts: Tuple[int, ...] = (8, 16),
    seed: int = 2026,
) -> List[Fig14Row]:
    """Figure 14: speedups at 8 and 16 processors.  Ocean is excluded
    (too small to run on 16, §6.3)."""
    rows: List[Fig14Row] = []
    for name in workloads or ["P3m", "Adm", "Track"]:
        for procs in processor_counts:
            workload = make_workload(name, preset, seed)
            res = run_workload(
                workload,
                executions=preset_executions(name, preset),
                num_processors=procs,
            )
            rows.append(
                Fig14Row(
                    name,
                    procs,
                    res.speedup(Scenario.IDEAL),
                    res.speedup(Scenario.SW),
                    res.speedup(Scenario.HW),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table 1 — workload characteristics (§5.2)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Table1Row:
    name: str
    source_loop: str
    paper_executions: int
    typical_iterations: str
    working_set: str
    element_bytes: str
    algorithm: str
    num_processors: int
    measured_accesses: int
    measured_marked_fraction: float


def table1_workloads(preset: str = "quick", seed: int = 2026) -> List[Table1Row]:
    rows: List[Table1Row] = []
    for name in ("Ocean", "P3m", "Adm", "Track"):
        workload = make_workload(name, preset, seed)
        ch = workload.characteristics
        loops = list(workload.executions(min(2, preset_executions(name, preset))))
        stats = [loop.stats() for loop in loops]
        rows.append(
            Table1Row(
                name=ch.name,
                source_loop=ch.source_loop,
                paper_executions=ch.paper_executions,
                typical_iterations=ch.typical_iterations,
                working_set=ch.working_set,
                element_bytes=ch.element_bytes,
                algorithm=ch.algorithm,
                num_processors=ch.num_processors,
                measured_accesses=sum(s.accesses for s in stats) // len(stats),
                measured_marked_fraction=(
                    sum(s.marked_fraction for s in stats) / len(stats)
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 3 — protocol traffic (§3.2: "minimize the increase in traffic")
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Table3Row:
    workload: str
    marked_accesses: int
    hw_messages: int
    hw_messages_per_marked_access: float
    sw_shadow_accesses: int
    sw_shadow_per_marked_access: float


def table3_traffic(
    preset: str = "quick", workloads: Optional[List[str]] = None, seed: int = 2026
) -> List[Table3Row]:
    """Extra traffic each scheme adds per access to an array under test.

    The hardware scheme adds *messages* (First/ROnly updates, read-first
    and first-write signals, read-ins); the software scheme adds real
    *memory accesses* to the shadow arrays.  The paper's design goal is
    that the hardware extensions stay well below one extra transaction
    per marked access.
    """
    from ..runtime.driver import run_serial

    rows: List[Table3Row] = []
    for name in workloads or ["Ocean", "P3m", "Adm", "Track"]:
        workload = make_workload(name, preset, seed)
        # Pick the execution with the most marked accesses among the
        # first few (Track's fraction varies from 0% upward, §5.2).
        candidates = list(workload.executions(min(4, workload.paper_executions)))
        loop = max(
            candidates,
            key=lambda l: l.stats().marked_reads + l.stats().marked_writes,
        )
        stats = loop.stats()
        marked = stats.marked_reads + stats.marked_writes
        params = default_params(workload.num_processors)
        serial = run_serial(loop, params)
        hw = run_hw(loop, params, workload.hw_config(), serial_result=serial)
        sw = run_sw(loop, params, workload.sw_config(), serial_result=serial)
        # SW shadow traffic = its total accesses minus the loop's own
        # and minus the HW run's (same data accesses + backup).
        sw_shadow = max(0, sw.mem.accesses - hw.mem.accesses)
        rows.append(
            Table3Row(
                workload=name,
                marked_accesses=marked,
                hw_messages=hw.spec_messages,
                hw_messages_per_marked_access=(
                    hw.spec_messages / marked if marked else 0.0
                ),
                sw_shadow_accesses=sw_shadow,
                sw_shadow_per_marked_access=(
                    sw_shadow / marked if marked else 0.0
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table 2 — per-element state cost, HW vs SW (§3.4)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Table2Row:
    num_processors: int
    max_iterations: int
    read_in: bool
    hw_bits: int
    sw_bits: int


def table2_state(
    processor_counts: Tuple[int, ...] = (8, 16, 32, 64),
    max_iterations: int = 2 ** 16,
) -> List[Table2Row]:
    rows: List[Table2Row] = []
    for procs in processor_counts:
        for read_in in (False, True):
            bits = state_bits_per_element(procs, max_iterations, read_in)
            rows.append(
                Table2Row(
                    procs, max_iterations, read_in,
                    bits["hardware"], bits["software"],
                )
            )
    return rows
