"""Process-pool execution engine for independent simulation runs.

Every evaluation surface in this repo — parameter sweeps, the bench
matrix, the differential conformance seed sweep, the paper-figure
scenarios — is a matrix of *independent, deterministic* simulations.
This module fans such a task list out across cores while keeping the
results indistinguishable from serial execution:

* **Submission-order assembly.**  ``run_tasks`` returns one result per
  task, in the order the tasks were given, regardless of completion
  order.  Combined with the simulator's determinism this makes the
  output of ``jobs=N`` bit-identical to ``jobs=1`` (pinned by the
  conformance tests).
* **Deterministic per-task seeding.**  A task with ``seed`` set has
  ``random`` (and numpy, when present) seeded with exactly that value
  before its function runs — in a worker *or* inline.  The inline path
  saves and restores the caller's RNG state, so degradation cannot
  perturb the parent process.  :func:`derive_seed` gives a stable
  per-index seed from a base seed.
* **Fault handling.**  Each task gets a per-attempt ``timeout`` and a
  bounded number of ``retries`` with exponential backoff.  A worker
  that dies (``BrokenProcessPool``) or hangs (timeout) is killed, the
  pool is rebuilt, and the affected tasks are resubmitted; a task whose
  retries are exhausted — or that cannot be pickled at all — degrades
  to inline execution in the calling process.  No task is ever lost.
* **Observability.**  Pass ``bus`` (a :class:`repro.obs.EventBus`) to
  see the fan-out as ``pool``-subsystem events: ``PoolStartEvent``,
  per-task ``PoolTaskEvent``, ``PoolWorkerFailureEvent`` on every
  failed attempt, and a closing ``PoolEndEvent``.  Pool events carry
  host seconds since the pool started (not simulated cycles).

Task functions must be module-level (picklable by reference) and their
arguments plain data; anything else simply runs inline.

A ``RunConfig`` carrying a ``repro.obs.RunLedger`` pickles into workers
unchanged (the ledger is stateless: a root path plus flags), and the
ledger's flock-guarded appends make concurrent worker commits to one
archive safe — ``--jobs 4`` sweeps append to a single ``index.jsonl``
without torn lines or duplicate records.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import multiprocessing
import os
import pickle
import random
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.bus import EventBus
from ..obs.events import (
    PoolEndEvent,
    PoolStartEvent,
    PoolTaskEvent,
    PoolWorkerFailureEvent,
)

__all__ = ["PoolTask", "run_tasks", "resolve_jobs", "derive_seed"]

#: default bounded-retry budget for worker-side failures
DEFAULT_RETRIES = 2
#: base of the exponential backoff between retry attempts, in seconds
DEFAULT_BACKOFF = 0.05

_UNSET = object()


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/``0``/negative means "one worker per core"."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def derive_seed(base: int, index: int) -> int:
    """Stable, well-mixed per-task seed from a base seed and an index."""
    digest = hashlib.blake2b(f"{base}:{index}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclasses.dataclass(frozen=True)
class PoolTask:
    """One unit of independent work for :func:`run_tasks`.

    ``fn`` must be a module-level callable; ``args``/``kwargs`` plain
    data.  When ``seed`` is set the RNGs are seeded with it immediately
    before ``fn`` runs, wherever it runs.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""


def _seed_rngs(seed: int) -> None:
    random.seed(seed)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep here
        return
    np.random.seed(seed & 0xFFFF_FFFF)


def _invoke(task: PoolTask) -> Any:
    """Worker-side entry point: seed, then run."""
    if task.seed is not None:
        _seed_rngs(task.seed)
    return task.fn(*task.args, **dict(task.kwargs))


def _invoke_captured(task: PoolTask) -> Tuple[Any, Dict[str, Any]]:
    """Worker-side entry point with profiling capture installed.

    Runs the task under a :class:`~repro.obs.spans.WorkerCapture` (span
    profiler + event bus + metrics collector) and returns
    ``(value, capture_snapshot)`` — the snapshot is plain picklable data
    riding back on the same pickling path as the result, so pooled
    results stay bit-identical whether or not profiling is on.
    """
    from ..obs.spans import WorkerCapture

    if task.seed is not None:
        _seed_rngs(task.seed)
    capture = WorkerCapture(label=task.label)
    capture.install()
    try:
        value = task.fn(*task.args, **dict(task.kwargs))
    finally:
        capture.uninstall()
    return value, capture.snapshot()


def _invoke_inline(task: PoolTask) -> Any:
    """Run a task in the calling process without perturbing its RNGs."""
    if task.seed is None:
        return task.fn(*task.args, **dict(task.kwargs))
    state = random.getstate()
    try:
        import numpy as np
    except ImportError:  # pragma: no cover
        np = None
    np_state = np.random.get_state() if np is not None else None
    try:
        _seed_rngs(task.seed)
        return task.fn(*task.args, **dict(task.kwargs))
    finally:
        random.setstate(state)
        if np is not None and np_state is not None:
            np.random.set_state(np_state)


def _invoke_inline_captured(task: PoolTask) -> Tuple[Any, Dict[str, Any]]:
    """Inline twin of :func:`_invoke_captured` (RNG state preserved)."""
    from ..obs.spans import WorkerCapture

    capture = WorkerCapture(label=task.label)

    def wrapped(*args: Any, **kwargs: Any) -> Any:
        capture.install()
        try:
            return task.fn(*args, **kwargs)
        finally:
            capture.uninstall()

    value = _invoke_inline(dataclasses.replace(task, fn=wrapped))
    return value, capture.snapshot()


def _picklable(task: PoolTask) -> bool:
    try:
        pickle.dumps((task.fn, task.args, dict(task.kwargs)))
        return True
    except Exception:
        return False


def _stop_executor(
    executor: concurrent.futures.ProcessPoolExecutor, kill: bool
) -> None:
    """Shut an executor down; with ``kill``, terminate its workers too.

    ``shutdown`` alone never reaps a hung or wedged worker — the
    interpreter would block joining it at exit — so the kill path
    terminates the worker processes directly.  ``_processes`` is
    private but stable across CPython 3.8–3.13; ``getattr`` guards it.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    try:
        executor.shutdown(wait=not kill, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    if not kill:
        return
    for proc in processes:
        try:
            if proc.is_alive():
                proc.terminate()
        except Exception:  # pragma: no cover - defensive
            pass
    for proc in processes:
        try:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except Exception:  # pragma: no cover - defensive
            pass


def run_tasks(
    tasks: Sequence[PoolTask],
    jobs: Optional[int] = 1,
    timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    bus: Optional[EventBus] = None,
    profile: Optional[Any] = None,
) -> List[Any]:
    """Run every task; return their results in submission order.

    ``jobs <= 1`` executes inline (no pool at all); ``jobs=None``/``0``
    uses one worker per core.  ``timeout`` bounds each wait on a task
    attempt, in host seconds (``None`` waits forever — hung-worker
    detection then relies on the OS reporting the death).  A task that
    exhausts ``retries`` worker attempts runs inline; a task whose
    function raises also re-runs inline so the exception propagates
    from the calling process with a clean traceback, exactly as it
    would have under ``jobs=1``.

    ``profile`` (a :class:`~repro.obs.spans.ProfileSession`) turns on
    per-task profiling capture: every task — pooled or inline — runs
    under a worker-side span profiler + bounded event/metrics capture
    whose snapshot ships back with the result, and the session collects
    them for a merged multi-process trace and rollup.  Results are
    unchanged; only host wall time is spent on the capture.
    """
    tasks = list(tasks)
    n = len(tasks)
    jobs = resolve_jobs(jobs)
    t0 = time.perf_counter()

    def now() -> float:
        return time.perf_counter() - t0

    def emit(event) -> None:
        if bus is not None and bus.active:
            bus.emit(event)

    results: List[Any] = [_UNSET] * n
    attempts = [0] * n
    failures = 0
    inline_tasks = 0
    submit_wall: List[Optional[float]] = [None] * n
    pool_span = None
    if profile is not None:
        pool_span = profile.profiler.begin(
            "pool", cat="pool", sample=True, jobs=jobs, tasks=n
        )

    # All pool lifecycle events share one monotonic clock anchored at
    # pool start (host seconds, not simulated cycles).
    emit(PoolStartEvent(now(), jobs=jobs, tasks=n))

    def record_profiled(i: int, payload: Tuple[Any, Dict[str, Any]],
                        inline: bool) -> None:
        value, capture = payload
        results[i] = value
        profile.add_task(
            index=i, label=tasks[i].label, attempts=attempts[i],
            inline=inline, submit_wall=submit_wall[i],
            done_wall=time.time(), capture=capture,
        )

    def finalize_profile() -> None:
        if profile is None:
            return
        profile.profiler.end(
            pool_span, failures=failures, inline_tasks=inline_tasks
        )
        profile.note_pool(
            jobs=jobs, tasks=n, wall_s=now(),
            failures=failures, inline_tasks=inline_tasks,
        )

    def finish_inline(i: int) -> None:
        nonlocal inline_tasks
        if profile is not None:
            if submit_wall[i] is None:
                submit_wall[i] = time.time()
            record_profiled(i, _invoke_inline_captured(tasks[i]), inline=True)
        else:
            results[i] = _invoke_inline(tasks[i])
        inline_tasks += 1
        emit(PoolTaskEvent(now(), index=i, label=tasks[i].label,
                           attempts=attempts[i], inline=True))

    def note_failure(i: int, kind: str) -> None:
        nonlocal failures
        failures += 1
        attempts[i] += 1
        emit(PoolWorkerFailureEvent(now(), index=i, label=tasks[i].label,
                                    kind=kind, attempt=attempts[i]))

    if jobs <= 1 or n == 0:
        for i in range(n):
            finish_inline(i)
        emit(PoolEndEvent(now(), completed=n, failures=0, inline_tasks=n))
        finalize_profile()
        return results

    # Tasks that must not (or can no longer) go to a worker.
    inline_only = set()
    for i, task in enumerate(tasks):
        if not _picklable(task):
            inline_only.add(i)
            note_failure(i, "unpicklable")

    executor: Optional[concurrent.futures.ProcessPoolExecutor] = None
    pending: Dict[int, concurrent.futures.Future] = {}
    # Linux: fork (fast, no importability requirement); elsewhere: spawn.
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    ctx = multiprocessing.get_context(method)

    def teardown(kill: bool) -> None:
        nonlocal executor
        if executor is not None:
            _stop_executor(executor, kill=kill)
            executor = None
        pending.clear()

    def submit_eligible() -> None:
        nonlocal executor
        eligible = [
            i for i in range(n)
            if results[i] is _UNSET and i not in inline_only and i not in pending
        ]
        if not eligible:
            return
        if executor is None:
            executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs, mp_context=ctx
            )
        worker_fn = _invoke if profile is None else _invoke_captured
        for i in eligible:
            if profile is not None and submit_wall[i] is None:
                submit_wall[i] = time.time()
            pending[i] = executor.submit(worker_fn, tasks[i])

    def handle_worker_failure(i: int, kind: str) -> None:
        """Kill the (possibly wedged) pool, back off, rearm.

        Only the task being waited on is charged an attempt; siblings
        whose futures died with the pool are resubmitted for free.  We
        cannot know *which* task broke a worker, so the blame heuristic
        is submission order — a later culprit becomes the waited-on
        task within at most ``n * retries`` rebuilds, and every task
        still ends in a result (worst case inline).
        """
        note_failure(i, kind)
        teardown(kill=True)
        if attempts[i] > retries:
            inline_only.add(i)
        else:
            time.sleep(backoff * (2 ** (attempts[i] - 1)))
        submit_eligible()

    try:
        submit_eligible()
        for i in range(n):
            while results[i] is _UNSET:
                if i in inline_only:
                    finish_inline(i)
                    break
                if i not in pending:
                    submit_eligible()
                future = pending[i]
                try:
                    value = future.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    handle_worker_failure(i, "timeout")
                except concurrent.futures.BrokenExecutor:
                    handle_worker_failure(i, "worker-died")
                except pickle.PicklingError:
                    # Unpicklable *return value*: retrying cannot help.
                    note_failure(i, "unpicklable")
                    pending.pop(i, None)
                    inline_only.add(i)
                except Exception:
                    # The task function itself raised.  Deterministic
                    # work fails identically inline, where the traceback
                    # is local and ``jobs=1`` semantics are restored.
                    note_failure(i, "task-error")
                    pending.pop(i, None)
                    inline_only.add(i)
                else:
                    pending.pop(i, None)
                    if profile is not None:
                        record_profiled(i, value, inline=False)
                    else:
                        results[i] = value
                    emit(PoolTaskEvent(now(), index=i, label=tasks[i].label,
                                       attempts=attempts[i], inline=False))
    finally:
        teardown(kill=True)

    emit(PoolEndEvent(now(), completed=n, failures=failures,
                      inline_tasks=inline_tasks))
    finalize_profile()
    return results
