"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments all --preset quick
    python -m repro.experiments fig11 fig13 --preset default
    repro-experiments fig14 --preset quick --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from . import bench, charts, claims, doctor, figures, report, serialize, tracerun

EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {}

#: row producers for --json output
ROW_PRODUCERS: Dict[str, Callable[[argparse.Namespace], list]] = {
    "fig11": lambda a: figures.fig11_speedups(a.preset, seed=a.seed),
    "fig12": lambda a: figures.fig12_breakdown(a.preset, seed=a.seed),
    "fig13": lambda a: figures.fig13_failure(a.preset, seed=a.seed),
    "fig14": lambda a: figures.fig14_scalability(a.preset, seed=a.seed),
    "table1": lambda a: figures.table1_workloads(a.preset, seed=a.seed),
    "table2": lambda a: figures.table2_state(),
    "table3": lambda a: figures.table3_traffic(a.preset, seed=a.seed),
}


def _register(name: str):
    def wrap(fn):
        EXPERIMENTS[name] = fn
        return fn

    return wrap


@_register("fig11")
def _fig11(args) -> str:
    rows = figures.fig11_speedups(args.preset, seed=args.seed)
    text = report.render_fig11(rows)
    if args.chart:
        text += "\n\n" + charts.chart_fig11(rows)
    return text


@_register("fig12")
def _fig12(args) -> str:
    rows = figures.fig12_breakdown(args.preset, seed=args.seed)
    text = report.render_fig12(rows)
    if args.chart:
        text += "\n\n" + charts.chart_fig12(rows)
    return text


@_register("fig13")
def _fig13(args) -> str:
    return report.render_fig13(figures.fig13_failure(args.preset, seed=args.seed))


@_register("fig14")
def _fig14(args) -> str:
    rows = figures.fig14_scalability(args.preset, seed=args.seed)
    text = report.render_fig14(rows)
    if args.chart:
        text += "\n\n" + charts.chart_fig14(rows)
    return text


@_register("table1")
def _table1(args) -> str:
    return report.render_table1(figures.table1_workloads(args.preset, seed=args.seed))


@_register("table3")
def _table3(args) -> str:
    return report.render_table3(figures.table3_traffic(args.preset, seed=args.seed))


@_register("verdict")
def _verdict(args) -> str:
    results = claims.evaluate_claims(args.preset, seed=args.seed)
    return claims.render_verdict(results)


@_register("table2")
def _table2(args) -> str:
    return report.render_table2(figures.table2_state())


@_register("doctor")
def _doctor(args) -> str:
    return doctor.run_doctor(num_processors=args.doctor_processors)


@_register("bench")
def _bench(args) -> str:
    return bench.run_bench(out=args.bench_out, reps=args.bench_reps)


@_register("trace")
def _trace(args) -> str:
    return tracerun.run_trace(
        preset=args.preset,
        seed=args.seed,
        workload=args.workload,
        out=args.out,
    )


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation of 'Hardware for Speculative "
        "Run-Time Parallelization in DSMs' (HPCA 1998).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("quick", "default", "full"),
        help="simulation size (quick for a fast look, default for the "
        "EXPERIMENTS.md numbers, full for long runs)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--chart", action="store_true",
        help="append ASCII bar charts to the figure tables",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON rows instead of tables",
    )
    parser.add_argument(
        "--out", default="repro-trace.json",
        help="trace: output path for the Chrome trace-event JSON "
        "(a .jsonl event stream is written next to it)",
    )
    parser.add_argument(
        "--workload", default="Adm",
        choices=sorted(figures.WORKLOAD_CLASSES),
        help="trace: which workload to instrument",
    )
    parser.add_argument(
        "--doctor-processors", type=int, default=4,
        help="doctor: processor count for the monitored self-check runs",
    )
    parser.add_argument(
        "--bench-out", default="BENCH_PR4.json",
        help="bench: output path for the throughput JSON",
    )
    parser.add_argument(
        "--bench-reps", type=int, default=7,
        help="bench: repetitions per instrumentation level (best-of)",
    )
    args = parser.parse_args(argv)

    # "all" regenerates every table/figure; trace and bench (which
    # write files) and doctor (a self-check, not an evaluation result)
    # stay explicit-only.
    chosen = (
        sorted(n for n in EXPERIMENTS if n not in ("trace", "doctor", "bench"))
        if "all" in args.experiments
        else args.experiments
    )
    for name in chosen:
        start = time.time()
        if args.json:
            if name not in ROW_PRODUCERS:
                parser.error(f"{name} has no JSON row format")
            text = serialize.rows_to_json(ROW_PRODUCERS[name](args))
        else:
            text = EXPERIMENTS[name](args)
        elapsed = time.time() - start
        print(text)
        if not args.json:
            print(f"[{name}: {elapsed:.1f}s, preset={args.preset}]")
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
