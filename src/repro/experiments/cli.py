"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments all --preset quick
    python -m repro.experiments fig11 fig13 --preset default
    repro-experiments fig14 --preset quick --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from . import bench, charts, claims, doctor, figures, report, serialize, tracerun
from . import profile as profilerun

EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], str]] = {}

#: row producers for --json output
ROW_PRODUCERS: Dict[str, Callable[[argparse.Namespace], list]] = {
    "fig11": lambda a: figures.fig11_speedups(a.preset, seed=a.seed),
    "fig12": lambda a: figures.fig12_breakdown(a.preset, seed=a.seed),
    "fig13": lambda a: figures.fig13_failure(a.preset, seed=a.seed),
    "fig14": lambda a: figures.fig14_scalability(a.preset, seed=a.seed),
    "table1": lambda a: figures.table1_workloads(a.preset, seed=a.seed),
    "table2": lambda a: figures.table2_state(),
    "table3": lambda a: figures.table3_traffic(a.preset, seed=a.seed),
}


def _register(name: str):
    def wrap(fn):
        EXPERIMENTS[name] = fn
        return fn

    return wrap


@_register("fig11")
def _fig11(args) -> str:
    rows = figures.fig11_speedups(args.preset, seed=args.seed)
    text = report.render_fig11(rows)
    if args.chart:
        text += "\n\n" + charts.chart_fig11(rows)
    return text


@_register("fig12")
def _fig12(args) -> str:
    rows = figures.fig12_breakdown(args.preset, seed=args.seed)
    text = report.render_fig12(rows)
    if args.chart:
        text += "\n\n" + charts.chart_fig12(rows)
    return text


@_register("fig13")
def _fig13(args) -> str:
    return report.render_fig13(figures.fig13_failure(args.preset, seed=args.seed))


@_register("fig14")
def _fig14(args) -> str:
    rows = figures.fig14_scalability(args.preset, seed=args.seed)
    text = report.render_fig14(rows)
    if args.chart:
        text += "\n\n" + charts.chart_fig14(rows)
    return text


@_register("table1")
def _table1(args) -> str:
    return report.render_table1(figures.table1_workloads(args.preset, seed=args.seed))


@_register("table3")
def _table3(args) -> str:
    return report.render_table3(figures.table3_traffic(args.preset, seed=args.seed))


@_register("verdict")
def _verdict(args) -> str:
    results = claims.evaluate_claims(args.preset, seed=args.seed)
    return claims.render_verdict(results)


@_register("table2")
def _table2(args) -> str:
    return report.render_table2(figures.table2_state())


@_register("doctor")
def _doctor(args) -> str:
    return doctor.run_doctor(num_processors=args.doctor_processors)


@_register("bench")
def _bench(args) -> str:
    session = _profile_session(args, "bench")
    text = bench.run_bench(out=args.bench_out, reps=args.bench_reps,
                           jobs=args.jobs, profile=session,
                           ledger=_ledger(args))
    return _with_profile(args, session, text)


def _ledger(args):
    """The --ledger-dir archive, or None (the default null path)."""
    if not getattr(args, "ledger_dir", None):
        return None
    from ..obs.ledger import RunLedger

    return RunLedger(args.ledger_dir)


def _profile_session(args, label: str):
    if not getattr(args, "profile_out", None):
        return None
    from ..obs.spans import ProfileSession

    return ProfileSession(label=label)


def _with_profile(args, session, text: str) -> str:
    if session is None:
        return text
    return text + "\n" + profilerun.write_profile_outputs(
        session, args.profile_out
    )


def _sweep_value(text: str):
    """Parse one --sweep-values item: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


@_register("sweep")
def _sweep(args) -> str:
    from ..params import default_params
    from ..types import Scenario
    from .sweeps import format_sweep, sweep_machine

    workload = figures.make_workload(args.workload, args.preset, args.seed)
    loop = next(iter(workload.executions(1)))
    values = [_sweep_value(v) for v in args.sweep_values.split(",") if v]
    session = _profile_session(args, f"sweep:{args.sweep_field}")
    ledger = _ledger(args)
    config = None
    if ledger is not None:
        # Every sweep point (and the memoized serial baseline) is then
        # archived — and re-sweeping identical points serves from disk.
        from ..runtime.driver import RunConfig

        config = RunConfig(ledger=ledger)
    points = sweep_machine(
        loop,
        args.sweep_field,
        values,
        scenario=Scenario[args.sweep_scenario.upper()],
        base_params=default_params(workload.num_processors),
        config=config,
        jobs=args.jobs,
        profile=session,
    )
    header = (
        f"sweep: {args.sweep_field} over {loop.name!r} "
        f"({args.sweep_scenario}, jobs={args.jobs})"
    )
    text = header + "\n" + format_sweep(points, label=args.sweep_field)
    return _with_profile(args, session, text)


@_register("diffsweep")
def _diffsweep(args) -> str:
    from ..testing.diffcheck import run_seeds

    seeds = list(range(args.diff_start, args.diff_start + args.diff_count))
    session = _profile_session(args, "diffsweep")
    verdicts = run_seeds(seeds, jobs=args.jobs, profile=session)
    lines = [
        f"FAIL {v['message']}" for v in verdicts if not v["conforms"]
    ]
    conforming = len(seeds) - len(lines)
    lines.append(
        f"{conforming}/{len(seeds)} cases conform (jobs={args.jobs})"
    )
    ledger = _ledger(args)
    if ledger is not None:
        key, _ = ledger.record_diffsweep(
            {
                "seeds": len(seeds),
                "start": args.diff_start,
                "conforming": conforming,
                "failures": lines[:-1],
            },
            label=f"diffsweep:{args.diff_start}+{len(seeds)}",
        )
        lines.append(f"archived as ledger record {key[:12]}")
    return _with_profile(args, session, "\n".join(lines))


@_register("trace")
def _trace(args) -> str:
    return tracerun.run_trace(
        preset=args.preset,
        seed=args.seed,
        workload=args.workload,
        out=args.out,
        profile_out=args.profile_out or "",
    )


@_register("profile")
def _profile(args) -> str:
    return profilerun.run_profile(
        preset=args.preset,
        seed=args.seed,
        workload=args.workload,
        out=args.profile_out or "repro-profile.json",
        jobs=args.jobs,
    )


def main(argv: "List[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "ledger":
        # The ledger verb family has its own subcommand grammar
        # (list/show/diff/import/trend/regressions); dispatch before the
        # experiments parser sees it.
        from . import ledgercli

        return ledgercli.main(argv[1:])
    if argv and argv[0] == "modelcheck":
        # Exhaustive small-config model checking of the speculation
        # protocols; its own grammar, dispatched the same way.
        from ..modelcheck import cli as modelcheckcli

        return modelcheckcli.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the evaluation of 'Hardware for Speculative "
        "Run-Time Parallelization in DSMs' (HPCA 1998).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which tables/figures to regenerate (plus the 'ledger' "
        "verb family: ledger list/show/diff/import/trend/regressions; "
        "and 'modelcheck' for exhaustive protocol model checking)",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("quick", "default", "full"),
        help="simulation size (quick for a fast look, default for the "
        "EXPERIMENTS.md numbers, full for long runs)",
    )
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--chart", action="store_true",
        help="append ASCII bar charts to the figure tables",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON rows instead of tables",
    )
    parser.add_argument(
        "--out", default="repro-trace.json",
        help="trace: output path for the Chrome trace-event JSON "
        "(a .jsonl event stream is written next to it)",
    )
    parser.add_argument(
        "--workload", default="Adm",
        choices=sorted(figures.WORKLOAD_CLASSES),
        help="trace: which workload to instrument",
    )
    parser.add_argument(
        "--doctor-processors", type=int, default=4,
        help="doctor: processor count for the monitored self-check runs",
    )
    parser.add_argument(
        "--bench-out", default="BENCH_PR10.json",
        help="bench: output path for the throughput JSON",
    )
    parser.add_argument(
        "--bench-reps", type=int, default=7,
        help="bench: repetitions per instrumentation level (best-of)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep/bench/diffsweep/profile (0 = "
        "one per core); results are identical to --jobs 1",
    )
    parser.add_argument(
        "--profile-out", default=None,
        help="write a merged multi-process Chrome trace (spans + "
        "rollup JSON next to it) for profile/sweep/bench/diffsweep/"
        "trace; the profile verb defaults to repro-profile.json",
    )
    parser.add_argument(
        "--sweep-field", default="num_processors",
        help="sweep: dotted MachineParams field to vary",
    )
    parser.add_argument(
        "--sweep-values", default="2,4,8",
        help="sweep: comma-separated values for the swept field",
    )
    parser.add_argument(
        "--sweep-scenario", default="hw",
        choices=("serial", "ideal", "sw", "hw"),
        help="sweep: scenario to run at each point",
    )
    parser.add_argument(
        "--diff-count", type=int, default=50,
        help="diffsweep: number of consecutive conformance seeds",
    )
    parser.add_argument(
        "--diff-start", type=int, default=0,
        help="diffsweep: first seed of the sweep",
    )
    parser.add_argument(
        "--ledger-dir", default=None,
        help="archive bench/sweep/diffsweep results (and serve identical "
        "re-runs) from the run ledger rooted here; query it with the "
        "'ledger' verb family",
    )
    args = parser.parse_args(argv)

    # "all" regenerates every table/figure; trace, bench and profile
    # (which write files), doctor (a self-check, not an evaluation
    # result) and the parameterized explorations (sweep, diffsweep)
    # stay explicit-only.
    chosen = (
        sorted(
            n for n in EXPERIMENTS
            if n not in ("trace", "doctor", "bench", "sweep", "diffsweep",
                         "profile")
        )
        if "all" in args.experiments
        else args.experiments
    )
    for name in chosen:
        # Monotonic clock: time.time() can jump (NTP slew) mid-run and
        # skew the reported per-experiment timings.
        start = time.perf_counter()
        if args.json:
            if name not in ROW_PRODUCERS:
                parser.error(f"{name} has no JSON row format")
            text = serialize.rows_to_json(ROW_PRODUCERS[name](args))
        else:
            text = EXPERIMENTS[name](args)
        elapsed = time.perf_counter() - start
        print(text)
        if not args.json:
            print(f"[{name}: {elapsed:.1f}s, preset={args.preset}]")
            print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
