"""Executable reproduction claims.

EXPERIMENTS.md states which of the paper's claims reproduce; this
module makes each claim *checkable code*, so the verdict table can be
regenerated (and CI-guarded) rather than trusted.  ``evaluate_claims``
runs the evaluation once at the chosen preset and scores every claim.

Run from the CLI:  ``python -m repro.experiments verdict``
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from ..types import Scenario
from .figures import (
    fig11_speedups,
    fig12_breakdown,
    fig13_failure,
    fig14_scalability,
    table2_state,
)


@dataclasses.dataclass
class ClaimResult:
    claim_id: str
    description: str
    passed: bool
    detail: str


@dataclasses.dataclass
class EvaluationData:
    """One shared simulation pass feeding all claims."""

    fig11: list
    fig12: list
    fig13: list
    fig14: list
    table2: list


def gather(preset: str = "quick", seed: int = 2026) -> EvaluationData:
    return EvaluationData(
        fig11=fig11_speedups(preset, seed=seed),
        fig12=fig12_breakdown(preset, seed=seed),
        fig13=fig13_failure(preset, seed=seed),
        fig14=fig14_scalability(preset, seed=seed),
        table2=table2_state(),
    )


def _claim_ordering(data: EvaluationData) -> ClaimResult:
    bad = [
        r.workload
        for r in data.fig11
        if not (r.sw <= r.hw * 1.05 and r.hw <= r.ideal * 1.05)
    ]
    return ClaimResult(
        "C1",
        "HW sits between SW and Ideal on every loop (Fig 11)",
        not bad,
        "ok" if not bad else f"violated on {bad}",
    )


def _claim_ratio(data: EvaluationData) -> ClaimResult:
    hw = sum(r.hw for r in data.fig11) / len(data.fig11)
    sw = sum(r.sw for r in data.fig11) / len(data.fig11)
    ratio = hw / sw
    return ClaimResult(
        "C2",
        "HW ~2x faster than SW on average (paper: 6.7 vs 2.9)",
        ratio > 1.5,
        f"measured ratio {ratio:.2f}",
    )


def _claim_sw_busier(data: EvaluationData) -> ClaimResult:
    by_key = {(r.workload, r.scenario): r for r in data.fig12}
    bad = [
        name
        for name in ("Ocean", "P3m", "Adm", "Track")
        if by_key[(name, Scenario.SW)].busy <= by_key[(name, Scenario.HW)].busy
    ]
    return ClaimResult(
        "C3",
        "SW's marking/analysis instructions raise Busy over HW (Fig 12)",
        not bad,
        "ok" if not bad else f"violated on {bad}",
    )


def _claim_failure_cost(data: EvaluationData) -> ClaimResult:
    by_key = {(r.workload, r.scenario): r for r in data.fig13}
    names = ("Ocean", "P3m", "Adm", "Track")
    hw = sum(by_key[(n, Scenario.HW)].normalized_time for n in names) / len(names)
    sw = sum(by_key[(n, Scenario.SW)].normalized_time for n in names) / len(names)
    ok = hw < sw and hw < 1.6
    return ClaimResult(
        "C4",
        "failed speculation: HW near Serial, SW much slower (Fig 13; "
        "paper: +22% vs +58%)",
        ok,
        f"HW +{100 * (hw - 1):.0f}%, SW +{100 * (sw - 1):.0f}%",
    )


def _claim_early_detection(data: EvaluationData) -> ClaimResult:
    missing = [
        r.workload
        for r in data.fig13
        if r.scenario is Scenario.HW and r.detection_cycle is None
    ]
    return ClaimResult(
        "C5",
        "HW detects the dependence on the fly (detection cycle recorded)",
        not missing,
        "ok" if not missing else f"no detection cycle for {missing}",
    )


def _claim_scalability(data: EvaluationData) -> ClaimResult:
    by_key = {(r.workload, r.num_processors): r for r in data.fig14}
    names = sorted({r.workload for r in data.fig14})
    bad = []
    for name in names:
        hw_gain = by_key[(name, 16)].hw / by_key[(name, 8)].hw
        sw_gain = by_key[(name, 16)].sw / by_key[(name, 8)].sw
        if hw_gain < sw_gain * 0.9 or hw_gain <= 1.0:
            bad.append(name)
    return ClaimResult(
        "C6",
        "HW scales 8 -> 16 processors better than SW (Fig 14)",
        not bad,
        "ok" if not bad else f"violated on {bad}",
    )


def _claim_state_cost(data: EvaluationData) -> ClaimResult:
    bad = [r for r in data.table2 if r.hw_bits >= r.sw_bits]
    return ClaimResult(
        "C7",
        "HW needs less per-element test state than SW (§3.4)",
        not bad,
        "ok" if not bad else "hardware state not smaller",
    )


CLAIMS: List[Callable[[EvaluationData], ClaimResult]] = [
    _claim_ordering,
    _claim_ratio,
    _claim_sw_busier,
    _claim_failure_cost,
    _claim_early_detection,
    _claim_scalability,
    _claim_state_cost,
]


def evaluate_claims(
    preset: str = "quick", seed: int = 2026, data: "EvaluationData | None" = None
) -> List[ClaimResult]:
    data = data or gather(preset, seed)
    return [claim(data) for claim in CLAIMS]


def render_verdict(results: List[ClaimResult]) -> str:
    lines = [
        "Reproduction verdict (executable claims)",
        "-" * 72,
    ]
    for r in results:
        status = "REPRODUCED" if r.passed else "NOT REPRODUCED"
        lines.append(f"{r.claim_id}  {status:<15} {r.description}")
        lines.append(f"    {r.detail}")
    passed = sum(r.passed for r in results)
    lines.append("-" * 72)
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
