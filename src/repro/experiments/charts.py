"""ASCII bar charts for the evaluation figures.

The paper presents Figures 11-14 as bar charts; these helpers render
comparable charts in plain text so the CLI output visually mirrors the
paper.  ``#`` is Busy, ``+`` is Sync, ``.`` is Mem in stacked bars.
"""

from __future__ import annotations

from typing import List, Sequence

from ..types import Scenario
from .figures import Fig11Row, Fig12Row, Fig14Row


def hbar(value: float, unit: float, max_width: int = 48) -> str:
    """A horizontal bar of ``value`` at ``unit`` per character."""
    if unit <= 0:
        return ""
    return "#" * max(0, min(max_width, round(value / unit)))


def stacked_bar(
    parts: Sequence[float], unit: float, chars: str = "#+.", max_width: int = 60
) -> str:
    out = []
    for value, ch in zip(parts, chars):
        out.append(ch * max(0, round(value / unit)))
    bar = "".join(out)
    return bar[:max_width]


def chart_fig11(rows: Sequence[Fig11Row], width: int = 40) -> str:
    """Grouped speedup bars per loop (Ideal / HW / SW)."""
    peak = max(max(r.ideal, r.hw, r.sw) for r in rows)
    unit = peak / width
    lines = ["Figure 11 (chart) — speedups", ""]
    for r in rows:
        lines.append(f"{r.workload} ({r.num_processors} procs)")
        for label, value in (("Ideal", r.ideal), ("HW", r.hw), ("SW", r.sw)):
            lines.append(f"  {label:<6} |{hbar(value, unit, width):<{width}}| {value:5.2f}")
        lines.append("")
    return "\n".join(lines)


def chart_fig12(rows: Sequence[Fig12Row], width: int = 60) -> str:
    """Stacked normalized-time bars (# busy, + sync, . mem)."""
    unit = 1.0 / width  # Serial == full width
    lines = [
        "Figure 12 (chart) — time vs Serial  (# busy, + sync, . mem)",
        "",
    ]
    last = None
    for r in rows:
        if last is not None and r.workload != last:
            lines.append("")
        last = r.workload
        bar = stacked_bar((r.busy, r.sync, r.mem), unit, max_width=width + 15)
        label = f"{r.workload}/{r.scenario.value}{r.num_processors}"
        lines.append(f"  {label:<12} |{bar:<{width}}| {r.total:4.2f}")
    return "\n".join(lines)


def chart_fig14(rows: Sequence[Fig14Row], width: int = 40) -> str:
    """Scalability: speedup bars at each processor count."""
    peak = max(max(r.ideal, r.hw, r.sw) for r in rows)
    unit = peak / width
    lines = ["Figure 14 (chart) — scalability", ""]
    last = None
    for r in rows:
        if last is not None and r.workload != last:
            lines.append("")
        last = r.workload
        lines.append(f"{r.workload} @ {r.num_processors} processors")
        for label, value in (("Ideal", r.ideal), ("HW", r.hw), ("SW", r.sw)):
            lines.append(f"  {label:<6} |{hbar(value, unit, width):<{width}}| {value:5.2f}")
    return "\n".join(lines)
