"""The ``profile`` subcommand: a profiled pooled sweep across engine tiers.

Runs a small matrix of speculative executions (every engine tier x a few
repetitions) through the process pool with per-task profiling capture
enabled, then writes:

* one merged multi-track Chrome trace (``pid`` = worker process,
  ``tid`` 0 = that process's spans, ``tid`` ``proc + 1`` = simulated
  processors) — open in https://ui.perfetto.dev, and
* a rollup JSON next to it (p50/p95 per-task wall, queue wait, worker
  utilization, per-tier phase breakdown),

and prints the rollup as text.  The same capture machinery is available
on ``sweep`` / ``bench`` / ``diffsweep`` / ``trace`` via
``--profile-out``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, Optional, Sequence

from ..obs.export import _ensure_parent
from ..obs.spans import ProfileSession
from .pool import PoolTask, derive_seed, run_tasks

#: one profiled run per (engine, rep) cell — small by design: the verb
#: is a smoke-profile, not a benchmark
PROFILE_ENGINES = ("scalar", "batch", "vector")
PROFILE_REPS = 2


def _profile_point(
    workload_name: str, preset: str, seed: int, engine: str, rep: int
) -> Dict[str, Any]:
    """One profiled simulation run (module-level: pool-picklable).

    The workload is rebuilt inside the worker from its name so the task
    payload stays plain data.
    """
    from ..params import default_params
    from ..runtime.driver import run_hw
    from .figures import make_workload

    w = make_workload(workload_name, preset, seed)
    loop = next(iter(w.executions(1)))
    params = default_params(w.num_processors)
    config = dataclasses.replace(w.hw_config(), engine=engine)
    result = run_hw(loop, params, config)
    return {
        "engine": engine,
        "rep": rep,
        "passed": result.passed,
        "wall": result.wall,
    }


def write_profile_outputs(
    session: ProfileSession,
    out: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Write the merged trace + rollup JSON; return a text summary."""
    from .report import render_profile_rollup

    doc = session.merged_trace(metadata=metadata)
    _ensure_parent(out)
    with open(out, "w") as fp:
        json.dump(doc, fp)
    rollup = session.rollup()
    rollup_path = os.path.splitext(out)[0] + "-rollup.json"
    with open(rollup_path, "w") as fp:
        json.dump(rollup, fp, indent=2, sort_keys=True)
    return "\n".join(
        [
            render_profile_rollup(rollup),
            "",
            f"wrote {out} ({len(doc['traceEvents'])} trace events) — open in "
            "https://ui.perfetto.dev",
            f"wrote {rollup_path}",
        ]
    )


def run_profile(
    preset: str = "quick",
    seed: int = 2026,
    workload: str = "Adm",
    out: str = "repro-profile.json",
    jobs: Optional[int] = 4,
    engines: Sequence[str] = PROFILE_ENGINES,
    reps: int = PROFILE_REPS,
) -> str:
    """Profile a small pooled sweep and write the merged trace + rollup."""
    session = ProfileSession(label=f"profile:{workload}")
    tasks = []
    for engine in engines:
        for rep in range(reps):
            index = len(tasks)
            tasks.append(
                PoolTask(
                    _profile_point,
                    (workload, preset, seed, engine, rep),
                    seed=derive_seed(seed, index),
                    label=f"{engine}#{rep}",
                )
            )
    results = run_tasks(tasks, jobs=jobs, profile=session)
    ok = sum(1 for r in results if r and r["passed"])
    header = (
        f"profile: {workload} ({preset}) x {list(engines)} x {reps} reps, "
        f"jobs={jobs} — {ok}/{len(results)} passed"
    )
    metadata = {"workload": workload, "preset": preset, "seed": seed}
    return header + "\n" + write_profile_outputs(session, out, metadata=metadata)
