"""Experiment harness: regenerates every table and figure of §6.

* :mod:`repro.experiments.scenarios` — runs a workload under
  Serial/Ideal/SW/HW and averages per-execution results (as §5.2 does).
* :mod:`repro.experiments.figures` — the per-figure data generators
  (Figure 11 speedups, Figure 12 breakdowns, Figure 13 failure costs,
  Figure 14 scalability, plus the §5.2/§3.4 tables).
* :mod:`repro.experiments.report` — plain-text rendering.
* :mod:`repro.experiments.cli` — ``python -m repro.experiments`` /
  ``repro-experiments`` entry point.
"""

from .scenarios import ScenarioAverages, WorkloadResults, run_workload
from .figures import (
    fig11_speedups,
    fig12_breakdown,
    fig13_failure,
    fig14_scalability,
    table1_workloads,
    table2_state,
    table3_traffic,
)

__all__ = [
    "ScenarioAverages",
    "WorkloadResults",
    "fig11_speedups",
    "fig12_breakdown",
    "fig13_failure",
    "fig14_scalability",
    "run_workload",
    "table1_workloads",
    "table2_state",
    "table3_traffic",
]
