"""Plain-text rendering of the experiment results."""

from __future__ import annotations

from typing import List, Sequence

from ..types import Scenario
from .figures import (
    Fig11Row,
    Fig12Row,
    Fig13Row,
    Fig14Row,
    Table1Row,
    Table2Row,
    Table3Row,
)


def _rule(width: int = 72) -> str:
    return "-" * width


def render_fig11(rows: Sequence[Fig11Row]) -> str:
    lines = [
        "Figure 11 — speedups of the parallel executions "
        "(Ocean on 8 processors, the rest on 16)",
        _rule(),
        f"{'loop':<8} {'procs':>5} {'Ideal':>8} {'SW':>8} {'HW':>8} {'HW/SW':>7}",
        _rule(),
    ]
    for r in rows:
        ratio = r.hw / r.sw if r.sw else float("nan")
        lines.append(
            f"{r.workload:<8} {r.num_processors:>5} {r.ideal:>8.2f} "
            f"{r.sw:>8.2f} {r.hw:>8.2f} {ratio:>7.2f}"
        )
    hw16 = [r.hw for r in rows if r.num_processors == 16]
    sw16 = [r.sw for r in rows if r.num_processors == 16]
    if hw16:
        lines.append(_rule())
        lines.append(
            f"{'avg@16':<8} {'':>5} {'':>8} "
            f"{sum(sw16) / len(sw16):>8.2f} {sum(hw16) / len(hw16):>8.2f}"
        )
    return "\n".join(lines)


def render_fig12(rows: Sequence[Fig12Row]) -> str:
    lines = [
        "Figure 12 — execution time breakdown (normalized to Serial)",
        _rule(),
        f"{'loop':<8} {'scenario':<9} {'Busy':>7} {'Sync':>7} {'Mem':>7} {'Total':>7}",
        _rule(),
    ]
    last = None
    for r in rows:
        if last is not None and r.workload != last:
            lines.append("")
        last = r.workload
        lines.append(
            f"{r.workload:<8} {r.scenario.value + str(r.num_processors):<9} "
            f"{r.busy:>7.3f} {r.sync:>7.3f} {r.mem:>7.3f} {r.total:>7.3f}"
        )
    return "\n".join(lines)


def render_fig13(rows: Sequence[Fig13Row]) -> str:
    lines = [
        "Figure 13 — execution time when the test fails (normalized to Serial)",
        _rule(),
        f"{'loop':<8} {'scenario':<8} {'time':>7}  {'Busy':>6} {'Sync':>6} {'Mem':>6}  {'detect@':>9}",
        _rule(),
    ]
    last = None
    for r in rows:
        if last is not None and r.workload != last:
            lines.append("")
        last = r.workload
        detect = f"{r.detection_cycle:.0f}" if r.detection_cycle is not None else "-"
        lines.append(
            f"{r.workload:<8} {r.scenario.value:<8} {r.normalized_time:>7.2f}  "
            f"{r.breakdown.busy:>6.2f} {r.breakdown.sync:>6.2f} "
            f"{r.breakdown.mem:>6.2f}  {detect:>9}"
        )
    hw = [r.normalized_time for r in rows if r.scenario is Scenario.HW]
    sw = [r.normalized_time for r in rows if r.scenario is Scenario.SW]
    lines.append(_rule())
    lines.append(
        f"average overhead vs Serial:  HW {100 * (sum(hw) / len(hw) - 1):.0f}%   "
        f"SW {100 * (sum(sw) / len(sw) - 1):.0f}%"
    )
    return "\n".join(lines)


def render_fig14(rows: Sequence[Fig14Row]) -> str:
    lines = [
        "Figure 14 — scalability of the software and hardware schemes",
        _rule(),
        f"{'loop':<8} {'procs':>5} {'Ideal':>8} {'SW':>8} {'HW':>8}",
        _rule(),
    ]
    last = None
    for r in rows:
        if last is not None and r.workload != last:
            lines.append("")
        last = r.workload
        lines.append(
            f"{r.workload:<8} {r.num_processors:>5} {r.ideal:>8.2f} "
            f"{r.sw:>8.2f} {r.hw:>8.2f}"
        )
    return "\n".join(lines)


def render_table1(rows: Sequence[Table1Row]) -> str:
    lines = [
        "Table 1 — workload characteristics (paper §5.2 vs surrogate)",
        _rule(90),
    ]
    for r in rows:
        lines.append(f"{r.name} ({r.source_loop}), {r.num_processors} processors")
        lines.append(f"  paper executions:   {r.paper_executions}")
        lines.append(f"  iterations:         {r.typical_iterations}")
        lines.append(f"  working set:        {r.working_set}")
        lines.append(f"  element bytes:      {r.element_bytes}")
        lines.append(f"  algorithm:          {r.algorithm}")
        lines.append(
            f"  surrogate: ~{r.measured_accesses} accesses/execution, "
            f"{100 * r.measured_marked_fraction:.0f}% to arrays under test"
        )
        lines.append("")
    return "\n".join(lines)


def render_table2(rows: Sequence[Table2Row]) -> str:
    lines = [
        "Table 2 — per-element dependence-test state, in bits (§3.4)",
        _rule(),
        f"{'procs':>6} {'read-in':>8} {'HW bits':>8} {'SW bits':>8}",
        _rule(),
    ]
    for r in rows:
        lines.append(
            f"{r.num_processors:>6} {'yes' if r.read_in else 'no':>8} "
            f"{r.hw_bits:>8} {r.sw_bits:>8}"
        )
    return "\n".join(lines)


def render_table3(rows: Sequence[Table3Row]) -> str:
    lines = [
        "Table 3 — extra traffic per access to an array under test (§3.2)",
        _rule(78),
        f"{'loop':<8} {'marked':>8} {'HW msgs':>8} {'HW/acc':>7} "
        f"{'SW shadow':>10} {'SW/acc':>7}",
        _rule(78),
    ]
    for r in rows:
        lines.append(
            f"{r.workload:<8} {r.marked_accesses:>8} {r.hw_messages:>8} "
            f"{r.hw_messages_per_marked_access:>7.2f} "
            f"{r.sw_shadow_accesses:>10} {r.sw_shadow_per_marked_access:>7.2f}"
        )
    return "\n".join(lines)


def _ms(seconds) -> str:
    return "-" if seconds is None else f"{1e3 * seconds:.1f}ms"


def render_profile_rollup(rollup: dict) -> str:
    """Text view of a ProfileSession rollup (see ``profile`` verb)."""
    pool = rollup.get("pool", {})
    wall = rollup.get("task_wall_s", {})
    wait = rollup.get("queue_wait_s", {})
    util = rollup.get("worker_utilization")
    lines = [
        f"profile rollup — {rollup.get('label', '')}",
        _rule(),
        f"tasks: {rollup.get('tasks', 0)}  jobs: {pool.get('jobs', '-')}  "
        f"pool wall: {_ms(pool.get('wall_s'))}  "
        f"failures: {pool.get('failures', 0)}  "
        f"inline: {rollup.get('inline_tasks', 0)}  "
        f"workers: {len(rollup.get('worker_pids', []))}",
        f"task wall:  p50={_ms(wall.get('p50'))}  p95={_ms(wall.get('p95'))}"
        f"  mean={_ms(wall.get('mean'))}  max={_ms(wall.get('max'))}",
        f"queue wait: p50={_ms(wait.get('p50'))}  p95={_ms(wait.get('p95'))}",
        f"worker utilization: "
        + ("-" if util is None else f"{100 * util:.0f}%"),
    ]
    breakdown = rollup.get("phase_breakdown_s", {})
    if breakdown:
        lines.append(_rule())
        lines.append(f"{'tier':<8} {'phase':<18} {'total wall':>12}")
        for tier in sorted(breakdown):
            for phase, total in sorted(
                breakdown[tier].items(), key=lambda kv: -kv[1]
            ):
                lines.append(f"{tier:<8} {phase:<18} {_ms(total):>12}")
    counters = rollup.get("counters", {})
    interesting = {
        k: v for k, v in sorted(counters.items())
        if not k.startswith("sim.")
    }
    if interesting:
        lines.append(_rule())
        lines.append(
            "counters: "
            + ", ".join(f"{k}={v:,.0f}" for k, v in interesting.items())
        )
    return "\n".join(lines)
