"""The ``trace`` subcommand: one fully instrumented run, exported.

Runs a single speculative (HW-scenario) loop execution with the
telemetry layer attached and writes:

* a Chrome trace-event JSON (open in https://ui.perfetto.dev), and
* a JSONL event stream next to it (hits filtered; see
  ``repro.obs.export.write_jsonl``),

then prints the phase report and a metrics summary.
"""

from __future__ import annotations

import dataclasses
import os

from ..obs import Telemetry
from ..params import default_params
from ..runtime.driver import run_hw
from .figures import make_workload

#: processor count for the traced run — small enough that the Perfetto
#: timeline stays readable, large enough to show real interleaving
TRACE_PROCESSORS = 8


def run_trace(
    preset: str = "quick",
    seed: int = 2026,
    workload: str = "Adm",
    out: str = "repro-trace.json",
) -> str:
    w = make_workload(workload, preset, seed)
    loop = next(w.executions(1))
    params = default_params(TRACE_PROCESSORS)
    telemetry = Telemetry()
    config = dataclasses.replace(w.hw_config(), telemetry=telemetry)
    result = run_hw(loop, params, config)

    metadata = result.provenance.as_dict() if result.provenance else None
    trace_events = telemetry.write_chrome_trace(out, metadata=metadata)
    jsonl_path = os.path.splitext(out)[0] + ".jsonl"
    jsonl_lines = telemetry.write_jsonl(jsonl_path)

    reg = telemetry.registry
    subsystems = telemetry.events.subsystems()
    lines = [
        telemetry.phase_report(),
        "",
        f"outcome: {'PASS' if result.passed else 'FAIL'} "
        f"({result.wall:,.0f} cycles)",
        "events by subsystem: "
        + ", ".join(f"{k}={v}" for k, v in sorted(subsystems.items())),
        f"memory accesses: {reg.total('mem.accesses'):,} "
        f"(protocol messages: {reg.total('spec.messages'):,}, "
        f"directory transitions: {reg.total('dir.transitions'):,})",
    ]
    if result.provenance is not None:
        lines.append(f"config hash: {result.provenance.config_hash[:16]}")
    lines += [
        "",
        f"wrote {out} ({trace_events} trace events) — open in "
        "https://ui.perfetto.dev",
        f"wrote {jsonl_path} ({jsonl_lines} events)",
    ]
    return "\n".join(lines)
