"""The ``trace`` subcommand: one fully instrumented run, exported.

Runs a single speculative (HW-scenario) loop execution with the
telemetry layer attached and writes:

* a Chrome trace-event JSON (open in https://ui.perfetto.dev), and
* a JSONL event stream next to it (hits filtered; see
  ``repro.obs.export.write_jsonl``),

then prints the phase report and a metrics summary.
"""

from __future__ import annotations

import dataclasses
import os

from ..obs import Telemetry
from ..params import default_params
from ..runtime.driver import run_hw
from .figures import make_workload

#: processor count for the traced run — small enough that the Perfetto
#: timeline stays readable, large enough to show real interleaving
TRACE_PROCESSORS = 8


def run_trace(
    preset: str = "quick",
    seed: int = 2026,
    workload: str = "Adm",
    out: str = "repro-trace.json",
    profile_out: str = "",
) -> str:
    w = make_workload(workload, preset, seed)
    loop = next(w.executions(1))
    params = default_params(TRACE_PROCESSORS)
    telemetry = Telemetry()
    config = dataclasses.replace(w.hw_config(), telemetry=telemetry)
    capture = None
    if profile_out:
        # Wall-clock span profile of the same run.  The run's explicit
        # telemetry keeps the machine's event bus, so the capture
        # records spans only (the sim-time trace is `out` itself).
        from ..obs.spans import WorkerCapture

        capture = WorkerCapture(label=f"trace:{workload}")
        capture.install()
    try:
        result = run_hw(loop, params, config)
    finally:
        if capture is not None:
            capture.uninstall()

    metadata = result.provenance.as_dict() if result.provenance else None
    trace_events = telemetry.write_chrome_trace(out, metadata=metadata)
    jsonl_path = os.path.splitext(out)[0] + ".jsonl"
    jsonl_lines = telemetry.write_jsonl(jsonl_path)

    reg = telemetry.registry
    subsystems = telemetry.events.subsystems()
    lines = [
        telemetry.phase_report(),
        "",
        f"outcome: {'PASS' if result.passed else 'FAIL'} "
        f"({result.wall:,.0f} cycles)",
        "events by subsystem: "
        + ", ".join(f"{k}={v}" for k, v in sorted(subsystems.items())),
        f"memory accesses: {reg.total('mem.accesses'):,} "
        f"(protocol messages: {reg.total('spec.messages'):,}, "
        f"directory transitions: {reg.total('dir.transitions'):,})",
    ]
    if result.provenance is not None:
        lines.append(f"config hash: {result.provenance.config_hash[:16]}")
    lines += [
        "",
        f"wrote {out} ({trace_events} trace events) — open in "
        "https://ui.perfetto.dev",
        f"wrote {jsonl_path} ({jsonl_lines} events)",
    ]
    if capture is not None:
        from ..obs.export import write_merged_chrome_trace

        span_events = write_merged_chrome_trace(
            None, [capture.snapshot()], profile_out, metadata=metadata
        )
        lines.append(f"wrote {profile_out} ({span_events} span events)")
    return "\n".join(lines)
