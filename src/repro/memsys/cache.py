"""Direct-mapped caches and the two-level per-processor hierarchy."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, List, Optional, Tuple

from ..params import CacheGeometry
from ..types import LineState
from .line import CacheLine


class HitLevel(enum.Enum):
    """Where an access was satisfied."""

    L1 = "l1"
    L2 = "l2"
    MEMORY = "memory"


class DirectMappedCache:
    """A set-associative cache indexed by line address (LRU per set).

    The name is historical: with the default ``ways=1`` geometry this
    is exactly the paper's direct-mapped cache.  Each set keeps its
    lines in LRU order (index 0 = most recently used).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        # Geometry-derived constants, hoisted out of the per-access path
        # (the dataclass properties recompute on every call).
        self._line_bytes = geometry.line_bytes
        self._num_sets = geometry.num_sets
        self._max_ways = geometry.ways
        # Sets are allocated lazily: large caches are mostly empty in
        # short simulations, and a fresh machine is built per run.
        self._sets: Dict[int, List[CacheLine]] = {}
        # Flat residency index (line address -> line).  The per-set LRU
        # lists stay authoritative for replacement; this dict makes the
        # lookup path — the simulator's single hottest operation — one
        # dictionary probe instead of a set scan.
        self._where: Dict[int, CacheLine] = {}

    def _set_of(self, line_addr: int) -> List[CacheLine]:
        index = (line_addr // self._line_bytes) % self._num_sets
        ways = self._sets.get(index)
        if ways is None:
            ways = []
            self._sets[index] = ways
        return ways

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        line = self._where.get(line_addr)
        if line is not None and self._max_ways > 1:
            # LRU bump (a direct-mapped set has no replacement order).
            ways = self._sets[(line_addr // self._line_bytes) % self._num_sets]
            if ways[0] is not line:
                ways.remove(line)
                ways.insert(0, line)
        return line

    def insert(self, line: CacheLine) -> Optional[CacheLine]:
        """Install ``line``; return the evicted victim, if any."""
        line_addr = line.line_addr
        index = (line_addr // self._line_bytes) % self._num_sets
        ways = self._sets.get(index)
        if ways is None:
            ways = []
            self._sets[index] = ways
        resident = self._where.get(line_addr)
        if resident is not None:
            ways.remove(resident)
            ways.insert(0, line)
            self._where[line_addr] = line
            return None
        ways.insert(0, line)
        self._where[line_addr] = line
        if len(ways) > self._max_ways:
            victim = ways.pop()  # LRU victim
            del self._where[victim.line_addr]
            return victim
        return None

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        line = self._where.pop(line_addr, None)
        if line is None:
            return None
        self._sets[(line_addr // self._line_bytes) % self._num_sets].remove(line)
        return line

    def flush(self) -> List[CacheLine]:
        """Drop everything; return the dirty victims (for writeback)."""
        dirty = [
            line for ways in self._sets.values() for line in ways if line.dirty
        ]
        self._sets = {}
        self._where = {}
        return dirty

    def resident_lines(self) -> Iterator[CacheLine]:
        for ways in self._sets.values():
            for line in ways:
                yield line


@dataclasses.dataclass(slots=True)
class FillResult:
    """Outcome of installing a line into the hierarchy."""

    line: CacheLine
    # Dirty line pushed out of the L2 (must be written back to its home).
    writeback: Optional[CacheLine] = None
    # Clean line silently dropped from the L2 (replacement hint).
    dropped: Optional[CacheLine] = None


class CacheHierarchy:
    """Inclusive L1 + L2 pair belonging to one processor.

    The L1 mirrors a subset of the L2; coherence state is kept
    consistent between the two (a write marks both levels DIRTY).  The
    directory tracks presence at the processor granularity, so an
    L1-only eviction is invisible outside this class.
    """

    def __init__(self, l1_geometry: CacheGeometry, l2_geometry: CacheGeometry) -> None:
        self.l1 = DirectMappedCache(l1_geometry)
        self.l2 = DirectMappedCache(l2_geometry)

    # ------------------------------------------------------------------
    def probe(self, line_addr: int) -> Tuple[HitLevel, Optional[CacheLine]]:
        """Find a line without changing any state."""
        line = self.l1.lookup(line_addr)
        if line is not None:
            return HitLevel.L1, line
        line = self.l2.lookup(line_addr)
        if line is not None:
            return HitLevel.L2, line
        return HitLevel.MEMORY, None

    def promote_to_l1(self, line: CacheLine) -> None:
        """After an L2 hit, install the (shared) line object in the L1.

        The same :class:`CacheLine` object lives in both levels, which
        keeps their state and access bits trivially coherent — a
        modeling convenience standing in for the real write-through of
        tag state between levels (paper §4.2).
        """
        victim = self.l1.insert(line)
        # Inclusive: the victim still lives in the L2 (same object), so
        # nothing else to do even if it was dirty.
        del victim

    def fill(self, line: CacheLine) -> FillResult:
        """Install a freshly fetched line in both levels."""
        result = FillResult(line=line)
        l2_victim = self.l2.insert(line)
        if l2_victim is not None:
            # Inclusion: purge from L1 as well.
            self.l1.remove(l2_victim.line_addr)
            if l2_victim.dirty:
                result.writeback = l2_victim
            else:
                result.dropped = l2_victim
        self.l1.insert(line)
        return result

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Remove a line at both levels; return it if it was present."""
        self.l1.remove(line_addr)
        return self.l2.remove(line_addr)

    def flush(self) -> List[CacheLine]:
        """Empty both levels; return dirty lines needing writeback."""
        self.l1.flush()
        return self.l2.flush()
