"""CC-NUMA memory-system substrate.

Models the machine of paper §5.1: per-processor direct-mapped primary
and secondary caches with 64-byte lines, a full-map directory per node,
a DASH-like invalidation protocol, NUMA latencies, and contention
(occupancy-based queueing) everywhere except the constant-latency
network.  The speculation protocols of :mod:`repro.core` plug into this
layer through the :class:`repro.memsys.system.SpeculationHooks`
interface.
"""

from .line import CacheLine
from .cache import DirectMappedCache, CacheHierarchy, HitLevel
from .directory import Directory, DirectoryEntry
from .system import AccessResult, MemorySystem, SpeculationHooks

__all__ = [
    "CacheLine",
    "DirectMappedCache",
    "CacheHierarchy",
    "HitLevel",
    "Directory",
    "DirectoryEntry",
    "AccessResult",
    "MemorySystem",
    "SpeculationHooks",
]
