"""The memory system: caches + directories + DASH-like coherence.

One :class:`MemorySystem` owns every processor's cache hierarchy and
every node's directory, and serves all simulated memory accesses.  The
coherence protocol is a full-map invalidation protocol in the style of
DASH (paper §5.1):

* cache states INVALID / CLEAN(shared) / DIRTY(exclusive-modified);
* directory states UNCACHED / SHARED(sharer set) / DIRTY(owner);
* read misses are 2-hop (home has the data) or 3-hop (home forwards to
  a dirty owner, which writes back);
* writes invalidate sharers or pull the line from a dirty owner;
* dirty replacements write back to the home.

Speculative run-time parallelization (paper §3) plugs in through
:class:`SpeculationHooks`: the hardware access-bit logic is invoked on
cache hits (tag-side test logic, Fig 10-(a)), on directory transactions
(Fig 10-(c)), and whenever a dirty line's per-word tag state must be
merged back into the directory (Figs 6-(e)).

Timing model: transactions are timed from the latency table of §5.1
plus queueing at the home directory (occupancy window).  State changes
apply at issue time, which keeps the protocol race-free at the data
level while the *speculative* messages — which the paper allows to race
— are delivered as deferred events by the speculation engine itself.
Writes are non-blocking through a finite write buffer; reads stall.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..address import AddressSpace
from ..obs.events import AccessEvent, DirTransitionEvent
from ..params import MachineParams
from ..types import AccessKind, DirState, LineState
from .cache import CacheHierarchy, HitLevel
from .directory import Directory
from .line import CacheLine


class SpeculationHooks:
    """Interface the speculation engine implements (all optional).

    The default implementations are no-ops so a :class:`MemorySystem`
    without speculation behaves as a plain CC-NUMA machine.
    """

    def on_cache_hit(
        self, proc: int, line: CacheLine, addr: int, kind: AccessKind, now: float
    ) -> None:
        """Tag-side test logic on an L1/L2 hit (Figs 6-(a), 6-(c), 8-(a), 9-(f))."""

    def on_dir_access(
        self, proc: int, line_addr: int, addr: int, kind: AccessKind, now: float
    ) -> int:
        """Directory-side logic when home processes a fetch/upgrade.

        Returns extra latency cycles (e.g. a privatization read-in that
        must consult the shared array's home, Figs 8-(c)/9-(h)).
        """
        return 0

    def fill_line_bits(self, proc: int, line: CacheLine, now: float) -> None:
        """Copy directory access-bit state into the tags of a fetched line."""

    def on_writeback(self, proc: int, line: CacheLine, now: float) -> None:
        """Merge a dirty line's tag state into the directory (Fig 6-(e))."""


@dataclasses.dataclass(slots=True)
class AccessResult:
    """Timing outcome of one simulated access."""

    issue_cycles: int  # cycles the processor is busy issuing (>=1)
    stall_cycles: int  # cycles the processor stalls on memory
    hit_level: HitLevel

    @property
    def total(self) -> int:
        return self.issue_cycles + self.stall_cycles


@dataclasses.dataclass
class MemStats:
    """Aggregate memory-system statistics."""

    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    local_misses: int = 0
    remote_2hop: int = 0
    remote_3hop: int = 0
    invalidations: int = 0
    writebacks: int = 0
    write_stall_cycles: int = 0
    read_stall_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.local_misses + self.remote_2hop + self.remote_3hop


class _WriteBuffer:
    """Finite write buffer: writes retire asynchronously."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._pending: List[Tuple[float, int]] = []  # (completion, line_addr)

    def drain(self, now: float) -> None:
        if self._pending:
            self._pending = [p for p in self._pending if p[0] > now]

    def stall_for_slot(self, now: float) -> float:
        """Cycles to wait for a free entry."""
        if not self._pending:
            return 0.0
        alive = []
        oldest = 0.0
        for item in self._pending:
            if item[0] > now:
                alive.append(item)
                if oldest == 0.0 or item[0] < oldest:
                    oldest = item[0]
        self._pending = alive
        if len(alive) < self.capacity:
            return 0.0
        return oldest - now

    def push(self, completion: float, line_addr: int) -> None:
        self._pending.append((completion, line_addr))

    def conflict(self, now: float, line_addr: int) -> float:
        """Cycles a read of ``line_addr`` must wait for a pending write."""
        if not self._pending:
            return 0.0
        alive = []
        latest = now
        for item in self._pending:
            if item[0] > now:
                alive.append(item)
                if item[1] == line_addr and item[0] > latest:
                    latest = item[0]
        self._pending = alive
        return latest - now

    def flush_time(self, now: float) -> float:
        if not self._pending:
            return 0.0
        latest = now
        alive = []
        for item in self._pending:
            if item[0] > now:
                alive.append(item)
                if item[0] > latest:
                    latest = item[0]
        self._pending = alive
        return latest - now


class MemorySystem:
    """All caches and directories of the machine, plus the protocol."""

    def __init__(
        self,
        params: MachineParams,
        address_space: AddressSpace,
        hooks: Optional[SpeculationHooks] = None,
    ) -> None:
        self.params = params
        self.space = address_space
        self.hooks = hooks or SpeculationHooks()
        self.caches: List[CacheHierarchy] = [
            CacheHierarchy(params.l1, params.l2) for _ in range(params.num_processors)
        ]
        self.directories: List[Directory] = [
            Directory(
                node,
                params.contention.directory_occupancy,
                params.contention.enabled,
            )
            for node in range(params.num_nodes)
        ]
        self.write_buffers: List[_WriteBuffer] = [
            _WriteBuffer(params.write_buffer_entries)
            for _ in range(params.num_processors)
        ]
        self.stats = MemStats()
        # Hot-path constants: node lookup table and line mask (the
        # per-access path is the simulator's inner loop).
        self._node_of = [
            params.node_of_processor(p) for p in range(params.num_processors)
        ]
        self._line_bytes = address_space.line_bytes
        lat = params.latency
        self._lat_l1_hit = lat.l1_hit
        self._lat_l2_hit = lat.l2_hit
        self._lat_local_mem = lat.local_mem
        self._lat_remote_2hop = lat.remote_2hop
        self._lat_remote_3hop = lat.remote_3hop
        self._net_one_way = lat.network_one_way
        self._dirty_forward = lat.dirty_forward
        #: telemetry bus (repro.obs.EventBus); None keeps emission free
        self.bus = None
        #: attached access trace, if any (repro.analysis.tracing.AccessTrace);
        #: records flow to it over the bus — this is just the attach marker
        self.trace = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def node_of(self, proc: int) -> int:
        return self._node_of[proc]

    def home_of(self, line_addr: int) -> Directory:
        return self.directories[self.space.home_node(line_addr)]

    def set_hooks(self, hooks: Optional[SpeculationHooks]) -> None:
        self.hooks = hooks or SpeculationHooks()

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        """Simulate a load.  The processor stalls for the returned time."""
        stats = self.stats
        stats.reads += 1
        line_addr = addr - (addr % self._line_bytes)
        buf = self.write_buffers[proc]
        if buf._pending:
            wb_stall = buf.conflict(now, line_addr)
            now = now + wb_stall
        else:
            wb_stall = 0.0

        hier = self.caches[proc]
        line = hier.l1.lookup(line_addr)
        if line is not None:
            level = HitLevel.L1
            stats.l1_hits += 1
            base = self._lat_l1_hit
        else:
            line = hier.l2.lookup(line_addr)
            if line is not None:
                level = HitLevel.L2
                stats.l2_hits += 1
                base = self._lat_l2_hit
                # promote_to_l1 inlined: inclusive, so the L1 victim
                # (same object still in the L2) needs no handling.
                hier.l1.insert(line)
        if line is not None:
            self.hooks.on_cache_hit(proc, line, addr, AccessKind.READ, now)
            stall = int(wb_stall) + (base - 1)
            stats.read_stall_cycles += stall
            result = AccessResult(1, stall, level)
            bus = self.bus
            if bus is not None and bus.wants_access:
                self._trace(now, proc, AccessKind.READ, addr, result)
            return result

        latency = self._fetch(proc, line_addr, addr, AccessKind.READ, now)
        stall = int(wb_stall) + (latency - 1)
        stats.read_stall_cycles += stall
        result = AccessResult(1, stall, HitLevel.MEMORY)
        bus = self.bus
        if bus is not None and bus.wants_access:
            self._trace(now, proc, AccessKind.READ, addr, result)
        return result

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        """Simulate a store.  Non-blocking via the write buffer."""
        stats = self.stats
        stats.writes += 1
        line_addr = addr - (addr % self._line_bytes)

        hier = self.caches[proc]
        line = hier.l1.lookup(line_addr)
        if line is not None:
            level = HitLevel.L1
        else:
            line = hier.l2.lookup(line_addr)
            level = HitLevel.L2
        if line is not None and line.state is LineState.DIRTY:
            # Write hit on an exclusive line: purely local (Fig 6-(c)
            # dirty branch: tags updated, "no need to tell directory").
            if level is HitLevel.L2:
                hier.l1.insert(line)
                stats.l2_hits += 1
                base = self._lat_l2_hit
            else:
                stats.l1_hits += 1
                base = self._lat_l1_hit
            self.hooks.on_cache_hit(proc, line, addr, AccessKind.WRITE, now)
            result = AccessResult(1, base - 1, level)
            bus = self.bus
            if bus is not None and bus.wants_access:
                self._trace(now, proc, AccessKind.WRITE, addr, result)
            return result

        # Needs a coherence transaction: upgrade (line CLEAN here) or a
        # fetch-exclusive (miss).  Non-blocking: the processor pays only
        # the issue cost plus any write-buffer-full stall.
        buf = self.write_buffers[proc]
        slot_stall = buf.stall_for_slot(now)
        start = now + slot_stall

        if line is not None:
            # Upgrade: CLEAN -> DIRTY via home (Fig 6-(c) clean branch).
            # The tag-side test logic runs first, then the write request
            # travels to the home where the directory-side check runs.
            if level is HitLevel.L2:
                hier.l1.insert(line)
            self.hooks.on_cache_hit(proc, line, addr, AccessKind.WRITE, now)
            latency = self._upgrade(proc, line, addr, start)
            hit = level
            if level is HitLevel.L1:
                self.stats.l1_hits += 1
            else:
                self.stats.l2_hits += 1
        else:
            latency = self._fetch(proc, line_addr, addr, AccessKind.WRITE, start)
            hit = HitLevel.MEMORY

        buf.push(start + latency, line_addr)
        stats.write_stall_cycles += int(slot_stall)
        result = AccessResult(1, int(slot_stall), hit)
        bus = self.bus
        if bus is not None and bus.wants_access:
            self._trace(now, proc, AccessKind.WRITE, addr, result)
        return result

    def _trace(self, now, proc, kind, addr, result) -> None:
        # Callers have already checked ``bus.wants_access`` — no event
        # object is allocated unless a subscriber wants it.
        self.bus.emit(
            AccessEvent(now, proc, kind, addr, result.hit_level, result.total)
        )

    def drain_write_buffer(self, proc: int, now: float) -> float:
        """Cycles until all of ``proc``'s pending writes retire.

        Used at barriers and at loop end (release consistency fence).
        """
        return self.write_buffers[proc].flush_time(now)

    # ------------------------------------------------------------------
    # Coherence transactions
    # ------------------------------------------------------------------
    def _fetch(
        self, proc: int, line_addr: int, addr: int, kind: AccessKind, now: float
    ) -> int:
        """Miss: obtain the line from its home (and owner, if dirty)."""
        home_node = self.space.home_node(line_addr)
        my_node = self._node_of[proc]
        local = home_node == my_node
        if local:
            base = self._lat_local_mem
            arrival = now
        else:
            base = self._lat_remote_2hop
            arrival = now + self._net_one_way
        home = self.directories[home_node]
        queue = home.occupy(arrival)

        entry = home.entry(line_addr)
        prev_state = entry.state
        extra = 0
        if entry.state is DirState.DIRTY and entry.owner is not None:
            if entry.owner != proc:
                # Forward to the dirty owner, which supplies the line and
                # writes back.  A true 3-hop only when the owner sits on
                # another node; a same-node owner is a (cheaper)
                # cache-to-cache transfer within the node.
                owner_remote = self._node_of[entry.owner] != my_node
                extra += self._recall_owner(
                    entry.owner,
                    line_addr,
                    now,
                    invalidate=(kind is AccessKind.WRITE),
                )
                if kind is AccessKind.READ:
                    entry.state = DirState.SHARED
                    entry.sharers = {entry.owner}
                    entry.owner = None
                else:
                    entry.reset()
                if owner_remote:
                    self.stats.remote_3hop += 1
                    if local:
                        extra += self._dirty_forward  # two extra messages
                    else:
                        base = self._lat_remote_3hop
                else:
                    self._count_miss(local)
                    extra += self._dirty_forward // 2  # intra-node transfer
            else:
                # Our own dirty line missed the cache?  It must have been
                # evicted and written back already; treat as stale entry.
                entry.reset()
                self._count_miss(local)
        else:
            self._count_miss(local)

        if kind is AccessKind.WRITE and entry.sharers:
            extra += self._invalidate_sharers(proc, line_addr, entry.sharers, now)
            entry.sharers = set()

        # Speculation: directory-side checks (may raise through the
        # controller) and possible extra transactions (read-in).
        extra += self.hooks.on_dir_access(proc, line_addr, addr, kind, now)

        # Update directory and install the line.
        if kind is AccessKind.READ:
            entry.state = DirState.SHARED
            entry.sharers.add(proc)
            state = LineState.CLEAN
        else:
            entry.state = DirState.DIRTY
            entry.owner = proc
            entry.sharers = set()
            state = LineState.DIRTY
        bus = self.bus
        if bus is not None and bus.wants_dir and entry.state is not prev_state:
            bus.emit(
                DirTransitionEvent(
                    now, home_node, line_addr, prev_state, entry.state, proc, kind
                )
            )
        line = CacheLine(line_addr, state)
        self.hooks.fill_line_bits(proc, line, now)
        # CacheHierarchy.fill inlined (no FillResult on the hot path):
        # install in both levels, purging the L2 victim from the L1 for
        # inclusion before handling its writeback/replacement hint.
        hier = self.caches[proc]
        victim = hier.l2.insert(line)
        if victim is not None:
            hier.l1.remove(victim.line_addr)
        hier.l1.insert(line)
        if victim is not None:
            if victim.dirty:
                self._victim_writeback(proc, victim, now)
            else:
                self._drop_clean(proc, victim)
        return base + queue + extra

    def _count_miss(self, local: bool) -> None:
        if local:
            self.stats.local_misses += 1
        else:
            self.stats.remote_2hop += 1

    def _upgrade(self, proc: int, line: CacheLine, addr: int, now: float) -> int:
        """CLEAN->DIRTY ownership upgrade through the home directory."""
        line_addr = line.line_addr
        home_node = self.space.home_node(line_addr)
        local = home_node == self._node_of[proc]
        if local:
            base = self._lat_local_mem // 2
            arrival = now
        else:
            base = self._lat_remote_2hop // 2
            arrival = now + self._net_one_way
        home = self.directories[home_node]
        queue = home.occupy(arrival)

        entry = home.entry(line_addr)
        prev_state = entry.state
        extra = 0
        others = {s for s in entry.sharers if s != proc}
        if others:
            extra += self._invalidate_sharers(proc, line_addr, others, now)
        extra += self.hooks.on_dir_access(proc, line_addr, addr, AccessKind.WRITE, now)
        entry.state = DirState.DIRTY
        entry.owner = proc
        entry.sharers = set()
        line.state = LineState.DIRTY
        bus = self.bus
        if bus is not None and bus.wants_dir and entry.state is not prev_state:
            bus.emit(
                DirTransitionEvent(
                    now,
                    home_node,
                    line_addr,
                    prev_state,
                    entry.state,
                    proc,
                    AccessKind.WRITE,
                )
            )
        # Fig 6-(d) ends by refreshing the requester's tag state from the
        # directory for every word of the line.
        self.hooks.fill_line_bits(proc, line, now)
        return base + queue + extra

    def _recall_owner(
        self, owner: int, line_addr: int, now: float, invalidate: bool
    ) -> int:
        """Pull a dirty line out of ``owner``'s cache (writeback)."""
        self.stats.writebacks += 1
        line = self.caches[owner].invalidate(line_addr)
        if line is not None:
            self.hooks.on_writeback(owner, line, now)
            if not invalidate:
                # Downgrade: owner keeps a CLEAN copy.
                line.state = LineState.CLEAN
                self.caches[owner].fill(line)
        return 0  # the 3-hop latency is charged by the caller

    def _invalidate_sharers(
        self, requester: int, line_addr: int, sharers: set, now: float
    ) -> int:
        """Invalidate every sharer; return added latency."""
        count = 0
        for sharer in sharers:
            if sharer == requester:
                continue
            self.caches[sharer].invalidate(line_addr)
            count += 1
        self.stats.invalidations += count
        if count == 0:
            return 0
        # Invalidations fan out in parallel; acks return to the home.
        return self._net_one_way + 2 * count

    def _victim_writeback(self, proc: int, victim: CacheLine, now: float) -> None:
        """A dirty line displaced from the L2 returns to its home."""
        self.stats.writebacks += 1
        self.hooks.on_writeback(proc, victim, now)
        home = self.home_of(victim.line_addr)
        home.occupy(now + self._net_one_way)
        entry = home.entry(victim.line_addr)
        if entry.owner == proc:
            prev_state = entry.state
            entry.reset()
            bus = self.bus
            if bus is not None and bus.wants_dir:
                bus.emit(
                    DirTransitionEvent(
                        now,
                        home.node_id,
                        victim.line_addr,
                        prev_state,
                        entry.state,
                        proc,
                    )
                )

    def _drop_clean(self, proc: int, victim: CacheLine) -> None:
        """Replacement hint: remove a clean victim from the sharer set."""
        entry = self.home_of(victim.line_addr).peek(victim.line_addr)
        if entry is not None:
            entry.sharers.discard(proc)
            if not entry.sharers and entry.state is DirState.SHARED:
                entry.state = DirState.UNCACHED

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def bulk_loop_commit(
        self,
        procs: np.ndarray,
        line_addrs: np.ndarray,
        writes: np.ndarray,
    ) -> None:
        """Install the coherence end-state of a whole loop at once (the
        vector engine's argsort-based loop-end commit).

        ``procs``/``line_addrs``/``writes`` are parallel arrays, one row
        per access, in program (commit) order within each processor and
        in the scalar engines' deterministic interleaving across
        processors.  Rather than replaying every transaction, the final
        owner/sharer sets are computed per line with one ``lexsort``:

        * any write to a line -> directory DIRTY, owner = the processor
          of the last write in row order, a DIRTY copy in the owner's
          cache (mirroring write-buffer retirement + upgrade);
        * reads only -> directory SHARED, sharers = every touching
          processor, CLEAN copies in their caches.

        Untimed maintenance, like :meth:`flush_caches`: no occupancy,
        no stats, no events.  Capacity-evicted victims from the cache
        installs are dropped silently (``_recall_owner`` tolerates a
        directory owner whose line is gone).
        """
        n = len(line_addrs)
        if n == 0:
            return
        rows = np.arange(n)
        order = np.lexsort((rows, line_addrs))
        la = line_addrs[order]
        pr = procs[order]
        wr = writes[order]
        starts = np.nonzero(np.concatenate(([True], la[1:] != la[:-1])))[0]
        ends = np.concatenate((starts[1:], [n]))
        per_home: Dict[int, list] = {}
        for s, e in zip(starts, ends):
            line_addr = int(la[s])
            group_w = wr[s:e]
            if group_w.any():
                owner = int(pr[s:e][group_w][-1])
                state = DirState.DIRTY
                sharers: Tuple[int, ...] = ()
                self.caches[owner].fill(CacheLine(line_addr, LineState.DIRTY))
                item = (line_addr, state, owner, sharers)
            else:
                sharers = tuple(int(p) for p in np.unique(pr[s:e]))
                for sharer in sharers:
                    self.caches[sharer].fill(CacheLine(line_addr, LineState.CLEAN))
                item = (line_addr, DirState.SHARED, None, sharers)
            per_home.setdefault(self.space.home_node(line_addr), []).append(item)
        for node, items in per_home.items():
            self.directories[node].bulk_install(items)

    def flush_caches(self, merge_spec_state: bool = False, now: float = 0.0) -> None:
        """Empty all caches and directories (cold start between loop
        executions, paper §5.2).  Untimed.

        When ``merge_spec_state`` is set, dirty lines first merge their
        access-bit tag state into the directories, so the speculation
        state survives the flush.
        """
        for proc, hierarchy in enumerate(self.caches):
            dirty = hierarchy.flush()
            if merge_spec_state:
                for line in dirty:
                    self.hooks.on_writeback(proc, line, now)
        for directory in self.directories:
            directory.reset_all()
        for buf in self.write_buffers:
            self._pending_clear(buf)

    @staticmethod
    def _pending_clear(buf: _WriteBuffer) -> None:
        buf._pending.clear()
