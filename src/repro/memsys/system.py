"""The memory system: caches + directories + DASH-like coherence.

One :class:`MemorySystem` owns every processor's cache hierarchy and
every node's directory, and serves all simulated memory accesses.  The
coherence protocol is a full-map invalidation protocol in the style of
DASH (paper §5.1):

* cache states INVALID / CLEAN(shared) / DIRTY(exclusive-modified);
* directory states UNCACHED / SHARED(sharer set) / DIRTY(owner);
* read misses are 2-hop (home has the data) or 3-hop (home forwards to
  a dirty owner, which writes back);
* writes invalidate sharers or pull the line from a dirty owner;
* dirty replacements write back to the home.

Speculative run-time parallelization (paper §3) plugs in through
:class:`SpeculationHooks`: the hardware access-bit logic is invoked on
cache hits (tag-side test logic, Fig 10-(a)), on directory transactions
(Fig 10-(c)), and whenever a dirty line's per-word tag state must be
merged back into the directory (Figs 6-(e)).

Timing model: transactions are timed from the latency table of §5.1
plus queueing at the home directory (occupancy window).  State changes
apply at issue time, which keeps the protocol race-free at the data
level while the *speculative* messages — which the paper allows to race
— are delivered as deferred events by the speculation engine itself.
Writes are non-blocking through a finite write buffer; reads stall.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..address import AddressSpace
from ..obs.events import AccessEvent, DirTransitionEvent
from ..params import MachineParams
from ..types import AccessKind, DirState, LineState
from .cache import CacheHierarchy, HitLevel
from .directory import Directory
from .line import CacheLine


class SpeculationHooks:
    """Interface the speculation engine implements (all optional).

    The default implementations are no-ops so a :class:`MemorySystem`
    without speculation behaves as a plain CC-NUMA machine.
    """

    def on_cache_hit(
        self, proc: int, line: CacheLine, addr: int, kind: AccessKind, now: float
    ) -> None:
        """Tag-side test logic on an L1/L2 hit (Figs 6-(a), 6-(c), 8-(a), 9-(f))."""

    def on_dir_access(
        self, proc: int, line_addr: int, addr: int, kind: AccessKind, now: float
    ) -> int:
        """Directory-side logic when home processes a fetch/upgrade.

        Returns extra latency cycles (e.g. a privatization read-in that
        must consult the shared array's home, Figs 8-(c)/9-(h)).
        """
        return 0

    def fill_line_bits(self, proc: int, line: CacheLine, now: float) -> None:
        """Copy directory access-bit state into the tags of a fetched line."""

    def on_writeback(self, proc: int, line: CacheLine, now: float) -> None:
        """Merge a dirty line's tag state into the directory (Fig 6-(e))."""


@dataclasses.dataclass
class AccessResult:
    """Timing outcome of one simulated access."""

    issue_cycles: int  # cycles the processor is busy issuing (>=1)
    stall_cycles: int  # cycles the processor stalls on memory
    hit_level: HitLevel

    @property
    def total(self) -> int:
        return self.issue_cycles + self.stall_cycles


@dataclasses.dataclass
class MemStats:
    """Aggregate memory-system statistics."""

    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    local_misses: int = 0
    remote_2hop: int = 0
    remote_3hop: int = 0
    invalidations: int = 0
    writebacks: int = 0
    write_stall_cycles: int = 0
    read_stall_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.local_misses + self.remote_2hop + self.remote_3hop


class _WriteBuffer:
    """Finite write buffer: writes retire asynchronously."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._pending: List[Tuple[float, int]] = []  # (completion, line_addr)

    def drain(self, now: float) -> None:
        self._pending = [p for p in self._pending if p[0] > now]

    def stall_for_slot(self, now: float) -> float:
        """Cycles to wait for a free entry."""
        self.drain(now)
        if len(self._pending) < self.capacity:
            return 0.0
        oldest = min(p[0] for p in self._pending)
        return max(0.0, oldest - now)

    def push(self, completion: float, line_addr: int) -> None:
        self._pending.append((completion, line_addr))

    def conflict(self, now: float, line_addr: int) -> float:
        """Cycles a read of ``line_addr`` must wait for a pending write."""
        self.drain(now)
        times = [c for (c, la) in self._pending if la == line_addr]
        if not times:
            return 0.0
        return max(0.0, max(times) - now)

    def flush_time(self, now: float) -> float:
        self.drain(now)
        if not self._pending:
            return 0.0
        return max(0.0, max(c for c, _ in self._pending) - now)


class MemorySystem:
    """All caches and directories of the machine, plus the protocol."""

    def __init__(
        self,
        params: MachineParams,
        address_space: AddressSpace,
        hooks: Optional[SpeculationHooks] = None,
    ) -> None:
        self.params = params
        self.space = address_space
        self.hooks = hooks or SpeculationHooks()
        self.caches: List[CacheHierarchy] = [
            CacheHierarchy(params.l1, params.l2) for _ in range(params.num_processors)
        ]
        self.directories: List[Directory] = [
            Directory(
                node,
                params.contention.directory_occupancy,
                params.contention.enabled,
            )
            for node in range(params.num_nodes)
        ]
        self.write_buffers: List[_WriteBuffer] = [
            _WriteBuffer(params.write_buffer_entries)
            for _ in range(params.num_processors)
        ]
        self.stats = MemStats()
        #: telemetry bus (repro.obs.EventBus); None keeps emission free
        self.bus = None
        #: attached access trace, if any (repro.analysis.tracing.AccessTrace);
        #: records flow to it over the bus — this is just the attach marker
        self.trace = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def node_of(self, proc: int) -> int:
        return self.params.node_of_processor(proc)

    def home_of(self, line_addr: int) -> Directory:
        return self.directories[self.space.home_node(line_addr)]

    def set_hooks(self, hooks: Optional[SpeculationHooks]) -> None:
        self.hooks = hooks or SpeculationHooks()

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def read(self, proc: int, addr: int, now: float) -> AccessResult:
        """Simulate a load.  The processor stalls for the returned time."""
        self.stats.reads += 1
        lat = self.params.latency
        line_addr = self.space.line_addr(addr)
        wb_stall = self.write_buffers[proc].conflict(now, line_addr)
        now = now + wb_stall

        level, line = self.caches[proc].probe(line_addr)
        if line is not None:
            if level is HitLevel.L1:
                self.stats.l1_hits += 1
                base = lat.l1_hit
            else:
                self.stats.l2_hits += 1
                base = lat.l2_hit
                self.caches[proc].promote_to_l1(line)
            self.hooks.on_cache_hit(proc, line, addr, AccessKind.READ, now)
            stall = int(wb_stall) + (base - 1)
            self.stats.read_stall_cycles += stall
            result = AccessResult(1, stall, level)
            self._trace(now, proc, AccessKind.READ, addr, result)
            return result

        latency = self._fetch(proc, line_addr, addr, AccessKind.READ, now)
        stall = int(wb_stall) + (latency - 1)
        self.stats.read_stall_cycles += stall
        result = AccessResult(1, stall, HitLevel.MEMORY)
        self._trace(now, proc, AccessKind.READ, addr, result)
        return result

    def write(self, proc: int, addr: int, now: float) -> AccessResult:
        """Simulate a store.  Non-blocking via the write buffer."""
        self.stats.writes += 1
        lat = self.params.latency
        line_addr = self.space.line_addr(addr)

        level, line = self.caches[proc].probe(line_addr)
        if line is not None and line.state is LineState.DIRTY:
            # Write hit on an exclusive line: purely local (Fig 6-(c)
            # dirty branch: tags updated, "no need to tell directory").
            if level is HitLevel.L2:
                self.caches[proc].promote_to_l1(line)
                self.stats.l2_hits += 1
                base = lat.l2_hit
            else:
                self.stats.l1_hits += 1
                base = lat.l1_hit
            self.hooks.on_cache_hit(proc, line, addr, AccessKind.WRITE, now)
            result = AccessResult(1, base - 1, level)
            self._trace(now, proc, AccessKind.WRITE, addr, result)
            return result

        # Needs a coherence transaction: upgrade (line CLEAN here) or a
        # fetch-exclusive (miss).  Non-blocking: the processor pays only
        # the issue cost plus any write-buffer-full stall.
        buf = self.write_buffers[proc]
        slot_stall = buf.stall_for_slot(now)
        start = now + slot_stall

        if line is not None:
            # Upgrade: CLEAN -> DIRTY via home (Fig 6-(c) clean branch).
            # The tag-side test logic runs first, then the write request
            # travels to the home where the directory-side check runs.
            if level is HitLevel.L2:
                self.caches[proc].promote_to_l1(line)
            self.hooks.on_cache_hit(proc, line, addr, AccessKind.WRITE, now)
            latency = self._upgrade(proc, line, addr, start)
            hit = level
            if level is HitLevel.L1:
                self.stats.l1_hits += 1
            else:
                self.stats.l2_hits += 1
        else:
            latency = self._fetch(proc, line_addr, addr, AccessKind.WRITE, start)
            hit = HitLevel.MEMORY

        buf.push(start + latency, line_addr)
        self.stats.write_stall_cycles += int(slot_stall)
        result = AccessResult(1, int(slot_stall), hit)
        self._trace(now, proc, AccessKind.WRITE, addr, result)
        return result

    def _trace(self, now, proc, kind, addr, result) -> None:
        bus = self.bus
        if bus is not None and bus.wants_access:
            bus.emit(
                AccessEvent(now, proc, kind, addr, result.hit_level, result.total)
            )

    def drain_write_buffer(self, proc: int, now: float) -> float:
        """Cycles until all of ``proc``'s pending writes retire.

        Used at barriers and at loop end (release consistency fence).
        """
        return self.write_buffers[proc].flush_time(now)

    # ------------------------------------------------------------------
    # Coherence transactions
    # ------------------------------------------------------------------
    def _fetch(
        self, proc: int, line_addr: int, addr: int, kind: AccessKind, now: float
    ) -> int:
        """Miss: obtain the line from its home (and owner, if dirty)."""
        lat = self.params.latency
        home_node = self.space.home_node(line_addr)
        local = home_node == self.node_of(proc)
        base = lat.local_mem if local else lat.remote_2hop
        arrival = now + (0 if local else lat.network_one_way)
        queue = self.home_of(line_addr).occupy(arrival)

        entry = self.home_of(line_addr).entry(line_addr)
        prev_state = entry.state
        extra = 0
        if entry.state is DirState.DIRTY and entry.owner is not None:
            if entry.owner != proc:
                # Forward to the dirty owner, which supplies the line and
                # writes back.  A true 3-hop only when the owner sits on
                # another node; a same-node owner is a (cheaper)
                # cache-to-cache transfer within the node.
                owner_remote = self.node_of(entry.owner) != self.node_of(proc)
                extra += self._recall_owner(
                    entry.owner,
                    line_addr,
                    now,
                    invalidate=(kind is AccessKind.WRITE),
                )
                if kind is AccessKind.READ:
                    entry.state = DirState.SHARED
                    entry.sharers = {entry.owner}
                    entry.owner = None
                else:
                    entry.reset()
                if owner_remote:
                    self.stats.remote_3hop += 1
                    if local:
                        extra += lat.dirty_forward  # two extra messages
                    else:
                        base = lat.remote_3hop
                else:
                    self._count_miss(local)
                    extra += lat.dirty_forward // 2  # intra-node transfer
            else:
                # Our own dirty line missed the cache?  It must have been
                # evicted and written back already; treat as stale entry.
                entry.reset()
                self._count_miss(local)
        else:
            self._count_miss(local)

        if kind is AccessKind.WRITE and entry.sharers:
            extra += self._invalidate_sharers(proc, line_addr, entry.sharers, now)
            entry.sharers = set()

        # Speculation: directory-side checks (may raise through the
        # controller) and possible extra transactions (read-in).
        extra += self.hooks.on_dir_access(proc, line_addr, addr, kind, now)

        # Update directory and install the line.
        if kind is AccessKind.READ:
            entry.state = DirState.SHARED
            entry.sharers.add(proc)
            state = LineState.CLEAN
        else:
            entry.state = DirState.DIRTY
            entry.owner = proc
            entry.sharers = set()
            state = LineState.DIRTY
        bus = self.bus
        if bus is not None and bus.wants_dir and entry.state is not prev_state:
            bus.emit(
                DirTransitionEvent(
                    now, home_node, line_addr, prev_state, entry.state, proc, kind
                )
            )
        line = CacheLine(line_addr, state)
        self.hooks.fill_line_bits(proc, line, now)
        fill = self.caches[proc].fill(line)
        if fill.writeback is not None:
            self._victim_writeback(proc, fill.writeback, now)
        elif fill.dropped is not None:
            self._drop_clean(proc, fill.dropped)
        return base + queue + extra

    def _count_miss(self, local: bool) -> None:
        if local:
            self.stats.local_misses += 1
        else:
            self.stats.remote_2hop += 1

    def _upgrade(self, proc: int, line: CacheLine, addr: int, now: float) -> int:
        """CLEAN->DIRTY ownership upgrade through the home directory."""
        lat = self.params.latency
        line_addr = line.line_addr
        home_node = self.space.home_node(line_addr)
        local = home_node == self.node_of(proc)
        base = (lat.local_mem if local else lat.remote_2hop) // 2
        arrival = now + (0 if local else lat.network_one_way)
        queue = self.home_of(line_addr).occupy(arrival)

        entry = self.home_of(line_addr).entry(line_addr)
        prev_state = entry.state
        extra = 0
        others = {s for s in entry.sharers if s != proc}
        if others:
            extra += self._invalidate_sharers(proc, line_addr, others, now)
        extra += self.hooks.on_dir_access(proc, line_addr, addr, AccessKind.WRITE, now)
        entry.state = DirState.DIRTY
        entry.owner = proc
        entry.sharers = set()
        line.state = LineState.DIRTY
        bus = self.bus
        if bus is not None and bus.wants_dir and entry.state is not prev_state:
            bus.emit(
                DirTransitionEvent(
                    now,
                    home_node,
                    line_addr,
                    prev_state,
                    entry.state,
                    proc,
                    AccessKind.WRITE,
                )
            )
        # Fig 6-(d) ends by refreshing the requester's tag state from the
        # directory for every word of the line.
        self.hooks.fill_line_bits(proc, line, now)
        return base + queue + extra

    def _recall_owner(
        self, owner: int, line_addr: int, now: float, invalidate: bool
    ) -> int:
        """Pull a dirty line out of ``owner``'s cache (writeback)."""
        self.stats.writebacks += 1
        line = self.caches[owner].invalidate(line_addr)
        if line is not None:
            self.hooks.on_writeback(owner, line, now)
            if not invalidate:
                # Downgrade: owner keeps a CLEAN copy.
                line.state = LineState.CLEAN
                self.caches[owner].fill(line)
        return 0  # the 3-hop latency is charged by the caller

    def _invalidate_sharers(
        self, requester: int, line_addr: int, sharers: set, now: float
    ) -> int:
        """Invalidate every sharer; return added latency."""
        lat = self.params.latency
        count = 0
        for sharer in sharers:
            if sharer == requester:
                continue
            self.caches[sharer].invalidate(line_addr)
            count += 1
        self.stats.invalidations += count
        if count == 0:
            return 0
        # Invalidations fan out in parallel; acks return to the home.
        return lat.network_one_way + 2 * count

    def _victim_writeback(self, proc: int, victim: CacheLine, now: float) -> None:
        """A dirty line displaced from the L2 returns to its home."""
        self.stats.writebacks += 1
        self.hooks.on_writeback(proc, victim, now)
        home = self.home_of(victim.line_addr)
        home.occupy(now + self.params.latency.network_one_way)
        entry = home.entry(victim.line_addr)
        if entry.owner == proc:
            prev_state = entry.state
            entry.reset()
            bus = self.bus
            if bus is not None and bus.wants_dir:
                bus.emit(
                    DirTransitionEvent(
                        now,
                        home.node_id,
                        victim.line_addr,
                        prev_state,
                        entry.state,
                        proc,
                    )
                )

    def _drop_clean(self, proc: int, victim: CacheLine) -> None:
        """Replacement hint: remove a clean victim from the sharer set."""
        entry = self.home_of(victim.line_addr).peek(victim.line_addr)
        if entry is not None:
            entry.sharers.discard(proc)
            if not entry.sharers and entry.state is DirState.SHARED:
                entry.state = DirState.UNCACHED

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush_caches(self, merge_spec_state: bool = False, now: float = 0.0) -> None:
        """Empty all caches and directories (cold start between loop
        executions, paper §5.2).  Untimed.

        When ``merge_spec_state`` is set, dirty lines first merge their
        access-bit tag state into the directories, so the speculation
        state survives the flush.
        """
        for proc, hierarchy in enumerate(self.caches):
            dirty = hierarchy.flush()
            if merge_spec_state:
                for line in dirty:
                    self.hooks.on_writeback(proc, line, now)
        for directory in self.directories:
            directory.reset_all()
        for buf in self.write_buffers:
            self._pending_clear(buf)

    @staticmethod
    def _pending_clear(buf: _WriteBuffer) -> None:
        buf._pending.clear()
