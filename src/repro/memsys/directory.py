"""Per-node full-map directory with an occupancy-based contention model."""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..types import AccessKind, DirState

#: Legal directory state machine of the base coherence protocol, as the
#: access kinds allowed to drive each (prev -> new) transition.  An
#: empty set marks maintenance transitions (victim writeback, clean
#: drop) that no data request may produce.  Same-state "transitions"
#: are never emitted as events.  The invariant monitors
#: (``repro.obs.monitor``) check the ``DirTransitionEvent`` stream
#: against this table.
LEGAL_DIR_TRANSITIONS: Dict[Tuple[DirState, DirState], FrozenSet[AccessKind]] = {
    (DirState.UNCACHED, DirState.SHARED): frozenset({AccessKind.READ}),
    (DirState.UNCACHED, DirState.DIRTY): frozenset({AccessKind.WRITE}),
    (DirState.SHARED, DirState.DIRTY): frozenset({AccessKind.WRITE}),
    (DirState.DIRTY, DirState.SHARED): frozenset({AccessKind.READ}),
    (DirState.DIRTY, DirState.UNCACHED): frozenset(),
    (DirState.SHARED, DirState.UNCACHED): frozenset(),
}


def legal_transition(
    prev: DirState, new: DirState, kind: Optional[AccessKind] = None
) -> bool:
    """Whether ``prev -> new`` under request ``kind`` obeys the base
    protocol.  ``kind=None`` (maintenance traffic) is allowed on every
    legal edge."""
    kinds = LEGAL_DIR_TRANSITIONS.get((prev, new))
    if kinds is None:
        return False
    return kind is None or kind in kinds


def next_dir_state(prev: DirState, kind: AccessKind) -> DirState:
    """The directory state a data request of ``kind`` drives ``prev``
    to under the base protocol: reads end SHARED, writes end DIRTY.

    A pure transition function (no Directory instance, no occupancy)
    for external drivers such as the model checker
    (:mod:`repro.modelcheck`); it validates the move against
    :data:`LEGAL_DIR_TRANSITIONS` so an illegal request raises instead
    of silently producing an unreachable state.
    """
    new = DirState.SHARED if kind is AccessKind.READ else DirState.DIRTY
    if new is prev:
        return prev
    if not legal_transition(prev, new, kind):
        raise ValueError(f"illegal directory transition {prev} -> {new} on {kind}")
    return new


@dataclasses.dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one memory line."""

    state: DirState = DirState.UNCACHED
    owner: Optional[int] = None
    sharers: Set[int] = dataclasses.field(default_factory=set)

    def reset(self) -> None:
        self.state = DirState.UNCACHED
        self.owner = None
        self.sharers.clear()


class Directory:
    """The directory (plus memory module) of one NUMA node.

    All transactions touching a line homed here serialize at this
    object, matching the paper's protocol argument ("all transactions
    directed to the same cache line are serialized in the corresponding
    directory").  Serialization is provided by the simulation engine's
    global time order; this class additionally models *occupancy*: each
    transaction holds the directory for a fixed window, and overlapping
    transactions queue, producing contention delay.
    """

    def __init__(self, node_id: int, occupancy_cycles: int, enabled: bool = True):
        self.node_id = node_id
        self.occupancy_cycles = occupancy_cycles
        self.contention_enabled = enabled
        self._entries: Dict[int, DirectoryEntry] = {}
        self._busy_until: float = 0
        # Statistics
        self.transactions = 0
        self.queueing_cycles = 0

    # ------------------------------------------------------------------
    def entry(self, line_addr: int) -> DirectoryEntry:
        ent = self._entries.get(line_addr)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[line_addr] = ent
        return ent

    def peek(self, line_addr: int) -> Optional[DirectoryEntry]:
        return self._entries.get(line_addr)

    def known_lines(self) -> "List[int]":
        """Line addresses this directory has entries for (any state).
        Used by the differential conformance harness to snapshot the
        coherence end-state."""
        return list(self._entries.keys())

    # ------------------------------------------------------------------
    def occupy(self, arrival_time: float, cycles: "int | None" = None) -> int:
        """Reserve the directory for one transaction.

        Returns the queueing delay suffered (0 when the directory was
        idle at ``arrival_time``).  The transaction then holds the
        directory for ``cycles`` (default: the configured occupancy).
        """
        self.transactions += 1
        if not self.contention_enabled:
            return 0
        hold = self.occupancy_cycles if cycles is None else cycles
        if arrival_time >= self._busy_until:
            # Idle directory: no queueing, just reserve the window.
            self._busy_until = arrival_time + hold
            return 0
        start = self._busy_until
        delay = int(start - arrival_time)
        self._busy_until = start + hold
        self.queueing_cycles += delay
        return delay

    def bulk_install(self, items) -> None:
        """Install precomputed end-state entries (the vector engine's
        loop-end commit).  ``items`` is an iterable of ``(line_addr,
        state, owner, sharers)`` tuples, one per line homed here; each
        replaces whatever entry the line had.  Untimed maintenance — no
        occupancy, no transaction count, no events: the per-transaction
        bookkeeping belongs to the op-by-op engines."""
        entries = self._entries
        for line_addr, state, owner, sharers in items:
            ent = entries.get(line_addr)
            if ent is None:
                ent = DirectoryEntry()
                entries[line_addr] = ent
            ent.state = state
            ent.owner = owner
            ent.sharers = set(sharers)

    def reset_contention(self) -> None:
        self._busy_until = 0

    def reset_all(self) -> None:
        """Forget all sharing state (used when caches are flushed)."""
        self._entries.clear()
        self._busy_until = 0
