"""Cache line with per-word speculation state.

A line holds the usual tag/state pair plus the *access bits* of
Figure 10-(a): for every word of the line that belongs to an array
under test, a small per-element state object (owned by
:mod:`repro.core.accessbits`).  The memory system treats those objects
opaquely; only the speculation engine reads or writes them.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..types import LineState


class CacheLine:
    """One cache line: base address, coherence state, access bits."""

    __slots__ = ("line_addr", "state", "spec_bits")

    def __init__(self, line_addr: int, state: LineState) -> None:
        self.line_addr = line_addr
        self.state = state
        # word offset within the line -> per-element access-bit object
        self.spec_bits: Dict[int, object] = {}

    @property
    def dirty(self) -> bool:
        return self.state is LineState.DIRTY

    def get_bits(self, offset: int) -> Optional[object]:
        return self.spec_bits.get(offset)

    def set_bits(self, offset: int, bits: object) -> None:
        self.spec_bits[offset] = bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheLine({self.line_addr:#x}, {self.state.value})"
