"""Cross-validation of simulated outcomes against the exact oracle.

For anyone extending the protocols or the workloads, this module
answers: *did the hardware scheme decide this loop correctly?*  It runs
the oracle at the same virtual-iteration granularity the schedule uses
and classifies the expectation per array:

* ``MUST_PASS`` — the array satisfies the protocol's criterion under
  any processor assignment the schedule could produce;
* ``MUST_FAIL`` — it violates the criterion under every assignment
  (exactly computable for the privatization protocols, whose virtual
  numbering does not depend on which processor runs a block);
* ``SCHEDULE_DEPENDENT`` — a non-privatization array whose dependences
  cross block boundaries: whether they land on one processor depends on
  the emergent dynamic schedule, so either outcome is legitimate.

:func:`validate_hw_run` then checks the actual result for consistency:
an inconsistent report indicates a protocol bug (and is how several of
this repo's regression tests are phrased).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional

from .params import MachineParams
from .runtime.driver import RunConfig, RunResult, run_hw
from .runtime.schedule import SchedulePolicy, VirtualMode, cyclic_blocks, static_chunks
from .trace.loop import Loop
from .trace.oracle import DependenceOracle
from .types import ProtocolKind


class Expectation(enum.Enum):
    MUST_PASS = "must-pass"
    MUST_FAIL = "must-fail"
    SCHEDULE_DEPENDENT = "schedule-dependent"


@dataclasses.dataclass
class ArrayExpectation:
    name: str
    protocol: ProtocolKind
    expectation: Expectation
    reason: str


@dataclasses.dataclass
class ValidationReport:
    loop_name: str
    arrays: Dict[str, ArrayExpectation]
    hw_passed: Optional[bool] = None
    consistent: Optional[bool] = None

    @property
    def expectation(self) -> Expectation:
        """Loop-level expectation: fail dominates, then indeterminate."""
        kinds = {a.expectation for a in self.arrays.values()}
        if Expectation.MUST_FAIL in kinds:
            return Expectation.MUST_FAIL
        if Expectation.SCHEDULE_DEPENDENT in kinds:
            return Expectation.SCHEDULE_DEPENDENT
        return Expectation.MUST_PASS


def _block_map(loop: Loop, config: RunConfig, params: MachineParams) -> Dict[int, int]:
    """Iteration -> virtual number, as the schedule will assign them."""
    schedule = config.schedule
    if schedule.policy is SchedulePolicy.STATIC_CHUNK:
        blocks = static_chunks(loop.num_iterations, params.num_processors)
    else:
        blocks = cyclic_blocks(loop.num_iterations, schedule.chunk_iterations)
    mapping: Dict[int, int] = {}
    for i, block in enumerate(blocks):
        for it in block.iterations():
            if schedule.virtual_mode is VirtualMode.ITERATION:
                mapping[it] = it
            elif schedule.virtual_mode is VirtualMode.PROCESSOR:
                mapping[it] = i + 1  # static chunks: block i -> proc i
            else:
                mapping[it] = block.ordinal
    return mapping


def expected_outcome(
    loop: Loop, config: RunConfig, params: MachineParams
) -> ValidationReport:
    """Compute per-array expectations for a hardware run of ``loop``."""
    mapping = _block_map(loop, config, params)
    report = DependenceOracle(loop, iteration_map=mapping).analyze()
    static = config.schedule.policy is not SchedulePolicy.DYNAMIC
    arrays: Dict[str, ArrayExpectation] = {}
    for spec in loop.arrays_under_test():
        verdict = report.arrays[spec.name]
        if spec.protocol is ProtocolKind.NONPRIV:
            if verdict.is_doall:
                exp = ArrayExpectation(
                    spec.name, spec.protocol, Expectation.MUST_PASS,
                    "every element read-only or confined to one block",
                )
            elif static:
                # Blocks map to fixed processors: group by processor and
                # re-check (processor-wise exactness).
                chunks = static_chunks(loop.num_iterations, params.num_processors)
                proc_map = {
                    it: p + 1
                    for p, block in enumerate(chunks)
                    for it in block.iterations()
                }
                proc_report = DependenceOracle(loop, iteration_map=proc_map).analyze()
                if proc_report.arrays[spec.name].is_doall:
                    exp = ArrayExpectation(
                        spec.name, spec.protocol, Expectation.MUST_PASS,
                        "dependences stay within static per-processor chunks",
                    )
                else:
                    exp = ArrayExpectation(
                        spec.name, spec.protocol, Expectation.MUST_FAIL,
                        "cross-processor sharing under the static assignment",
                    )
            else:
                exp = ArrayExpectation(
                    spec.name, spec.protocol, Expectation.SCHEDULE_DEPENDENT,
                    "dependences cross dynamic blocks: outcome depends on "
                    "which processor grabs each block",
                )
        elif spec.protocol is ProtocolKind.PRIV:
            ok = verdict.is_doall or verdict.is_privatizable or verdict.is_priv_rico
            exp = ArrayExpectation(
                spec.name, spec.protocol,
                Expectation.MUST_PASS if ok else Expectation.MUST_FAIL,
                "max(read-first) <= min(write) per element"
                if ok else "a read-first follows a lower-numbered write",
            )
        else:  # PRIV_SIMPLE
            # The reduced protocol's sticky bits cannot implement the
            # LRPD's single-writer (Atw == Atm) rescue: an element that
            # is read-first *and* written fails even when all accesses
            # sit in one iteration.  Its exact criterion is therefore
            # the privatizability test alone (property-tested).
            ok = verdict.is_privatizable
            exp = ArrayExpectation(
                spec.name, spec.protocol,
                Expectation.MUST_PASS if ok else Expectation.MUST_FAIL,
                "no element both read-first and written"
                if ok else "an element is both read-first and written",
            )
        arrays[spec.name] = exp
    return ValidationReport(loop_name=loop.name, arrays=arrays)


def validate_hw_run(
    loop: Loop,
    params: MachineParams,
    config: Optional[RunConfig] = None,
    result: Optional[RunResult] = None,
) -> ValidationReport:
    """Run (or take) a hardware result and check it against expectation."""
    config = config or RunConfig()
    report = expected_outcome(loop, config, params)
    if result is None:
        result = run_hw(loop, params, config)
    report.hw_passed = result.passed
    expectation = report.expectation
    if expectation is Expectation.MUST_PASS:
        report.consistent = result.passed
    elif expectation is Expectation.MUST_FAIL:
        report.consistent = not result.passed
    else:
        report.consistent = True  # either outcome is legitimate
    return report
