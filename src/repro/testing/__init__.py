"""Test-support tooling shipped with the package.

The one resident so far is the differential conformance harness
(:mod:`repro.testing.diffcheck`), which checks that the scalar and
batch simulation engines produce identical protocol outcomes on
randomized workloads.  It lives in the package (not under ``tests/``)
so a failing seed can be replayed from any checkout with::

    python -m repro.testing.diffcheck --seed 12345
"""

__all__ = [
    "CaseSpec",
    "DiffMismatch",
    "build_case",
    "check_seed",
    "conformance_signature",
    "run_case",
]


def __getattr__(name):
    # Lazy re-export: keeps ``python -m repro.testing.diffcheck`` from
    # double-importing the submodule (runpy warns about that).
    if name in __all__:
        from . import diffcheck

        return getattr(diffcheck, name)
    raise AttributeError(name)
