"""Differential conformance harness: scalar engine vs batch/vector engine.

The batch execution engine (``RunConfig(engine="batch")``) re-implements
the processor op loop and the speculation protocols' tag-side state for
speed.  Its correctness contract is *observational equivalence* with the
scalar reference engine, and this module is the machine check of that
contract: build a seeded random case (loop shape x schedule x protocol
x injected dependence), run it through both engines, and compare

* the verdict (``passed``), the failure reason, culprit element,
  iteration and detecting processor, and the detection cycle;
* the final speculation-directory state (every element-state table of
  every registered array) and the final coherence-directory state;
* the timing surface — wall clock, per-phase durations — plus the
  protocol message count and the memory-system counters.  The engines
  are maintained *bit-identical*, which is stronger than the protocol
  equivalence the conformance suite strictly needs; comparing timing
  too means any future divergence is caught here first, with a seed,
  instead of surfacing as an unexplained figure shift.

The vector tier (``RunConfig(engine="vector")``, ``--engine vector``)
has a deliberately weaker contract — verdict/failure-attribution
conformance — so it is compared under the relaxed ``verdict``
*signature mode* (:func:`verdict_signature`): pass/fail, failure
reason/element/iteration/processor, detection cycle and iteration
assignment, with timing, tables and trace ordering left free.  The
signature mode is picked per engine by :func:`signature_mode_of` and
named in every mismatch message.

Every mismatch message embeds the seed and engine, so a failing
randomized test reproduces with one line::

    python -m repro.testing.diffcheck --seed 12345 --engine batch --verbose

``tests/test_differential.py`` sweeps seeds 0..N (N >= 200) through
:func:`check_seed`.  :func:`run_seeds` fans a seed batch out across
worker processes (``--jobs`` on the CLI); every case is derived purely
from its seed, so the parallel sweep's verdicts are bit-identical to
the serial sweep's and each failure still carries its one-line repro.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments.pool import PoolTask, run_tasks

from ..params import (
    ContentionModel,
    MachineParams,
    default_params,
    small_test_params,
)
from ..runtime.driver import RunConfig, RunResult, run_hw
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import compute, read, write
from ..types import ProtocolKind


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CaseSpec:
    """One generated conformance case (everything derived from ``seed``)."""

    seed: int
    loop: Loop
    params: MachineParams
    schedule: ScheduleSpec
    timestamp_bits: Optional[int]
    per_line_bits: bool
    protocol: ProtocolKind
    injected_dependence: bool
    #: corpus variant this case belongs to (see :data:`VARIANTS`)
    variant: str = "baseline"

    def describe(self) -> str:
        tag = "" if self.variant == "baseline" else f"variant={self.variant} "
        return (
            f"{tag}seed={self.seed} loop={self.loop.name!r} "
            f"procs={self.params.num_processors} "
            f"sched={self.schedule.policy.value}/chunk={self.schedule.chunk_iterations}"
            f"/{self.schedule.virtual_mode.value} "
            f"ts_bits={self.timestamp_bits} per_line={self.per_line_bits} "
            f"protocol={self.protocol.value} injected={self.injected_dependence}"
        )


def _random_body(
    rng: random.Random,
    protocol: ProtocolKind,
    elements: int,
    iterations: int,
) -> Tuple[List[List[object]], bool]:
    """Random per-iteration op lists for one array under test.

    The baseline pattern is well-formed for the chosen protocol (disjoint
    slices for the non-privatization test, write-before-read scratch for
    the privatization tests); with ~40% probability a cross-iteration
    dependence is injected so the FAIL paths — detection, culprit
    attribution, abort timing — get differential coverage too.
    """
    body: List[List[object]] = []
    per = max(1, elements // iterations)
    for i in range(iterations):
        ops: List[object] = []
        accesses = rng.randint(2, min(6, per * 2))
        if protocol is ProtocolKind.NONPRIV:
            # Each iteration owns a disjoint slice; random read/write mix.
            lo = (i * per) % elements
            for _ in range(accesses):
                j = lo + rng.randrange(per)
                if rng.random() < 0.5:
                    ops.append(read("A", j))
                else:
                    ops.append(write("A", j))
                if rng.random() < 0.7:
                    ops.append(compute(rng.randint(5, 60)))
        else:
            # Scratch usage: write a slot, compute, read it back.
            for _ in range(accesses):
                slot = rng.randrange(elements)
                ops.append(write("A", slot))
                if rng.random() < 0.7:
                    ops.append(compute(rng.randint(5, 60)))
                if rng.random() < 0.8:
                    ops.append(read("A", slot))
        body.append(ops)

    injected = iterations >= 2 and rng.random() < 0.4
    if injected:
        # A flow dependence between two distinct iterations on one
        # element: earlier iteration writes it, a later one touches it.
        i1 = rng.randrange(iterations - 1)
        i2 = rng.randrange(i1 + 1, iterations)
        elem = rng.randrange(elements)
        body[i1].append(write("A", elem))
        if protocol is ProtocolKind.NONPRIV and rng.random() < 0.5:
            body[i2].insert(0, read("A", elem))
        else:
            # For the privatization tests a read *before* any write in
            # the iteration is what breaks privatizability.
            body[i2].insert(0, read("A", elem))
            body[i2].append(write("A", elem))
    return body, injected


#: Corpus variants.  ``baseline`` is the original seeded corpus (its
#: 0..N cases are byte-identical across releases — baselines depend on
#: that).  ``dynamic-nocontention`` reshapes every case, *after* all
#: RNG draws, into a dynamically self-scheduled run on a contention-free
#: machine: the corpus the vector tier's dynamic-schedule replay must
#: decide natively (zero delegations), since the grab order is then
#: deterministic given the cost model.
VARIANTS = ("baseline", "dynamic-nocontention")


def build_case(seed: int, variant: str = "baseline") -> CaseSpec:
    """Deterministically derive a full case from ``seed`` (and corpus
    ``variant`` — every variant consumes the RNG identically, so a
    seed's loop body is shared across variants)."""
    if variant not in VARIANTS:
        raise ValueError(f"unknown diffcheck variant {variant!r}")
    rng = random.Random(seed)
    procs = rng.choice([2, 4])
    params = (
        small_test_params(procs) if rng.random() < 0.7 else default_params(procs)
    )
    protocol = rng.choice(
        [ProtocolKind.NONPRIV, ProtocolKind.PRIV, ProtocolKind.PRIV_SIMPLE]
    )
    elements = rng.randint(16, 64)
    iterations = rng.randint(4, 12)
    body, injected = _random_body(rng, protocol, elements, iterations)
    loop = Loop(
        f"diff-{seed}",
        [ArraySpec("A", elements, 8, protocol)],
        body,
    )

    policy = rng.choice([SchedulePolicy.DYNAMIC, SchedulePolicy.STATIC_CHUNK])
    chunk = rng.choice([1, 2, 4])
    if policy is SchedulePolicy.STATIC_CHUNK:
        virtual = rng.choice([VirtualMode.CHUNK, VirtualMode.ITERATION])
    else:
        virtual = VirtualMode.CHUNK
    schedule = ScheduleSpec(
        policy=policy, chunk_iterations=chunk, virtual_mode=virtual
    )
    # Time-stamp epochs require a static schedule with chunk numbering.
    timestamp_bits: Optional[int] = None
    if (
        policy is SchedulePolicy.STATIC_CHUNK
        and virtual is VirtualMode.CHUNK
        and rng.random() < 0.3
    ):
        timestamp_bits = rng.choice([2, 3])
    per_line_bits = protocol is ProtocolKind.NONPRIV and rng.random() < 0.1
    if variant == "dynamic-nocontention":
        # Reshape after every RNG draw so the loop body, machine size
        # and protocol stay byte-identical to the baseline case.
        params = dataclasses.replace(
            params, contention=ContentionModel(enabled=False)
        )
        schedule = ScheduleSpec(
            policy=SchedulePolicy.DYNAMIC,
            chunk_iterations=schedule.chunk_iterations,
            virtual_mode=VirtualMode.CHUNK,
        )
        timestamp_bits = None
    return CaseSpec(
        seed=seed,
        loop=loop,
        params=params,
        schedule=schedule,
        timestamp_bits=timestamp_bits,
        per_line_bits=per_line_bits,
        protocol=protocol,
        injected_dependence=injected,
        variant=variant,
    )


# ----------------------------------------------------------------------
# Running and comparing
# ----------------------------------------------------------------------
def _table_state(protocol_obj) -> Dict[str, Dict[str, list]]:
    """Every numpy-backed element-state table of one protocol object,
    as ``{array_name: {field: values}}``."""
    out: Dict[str, Dict[str, list]] = {}
    tables = getattr(protocol_obj, "_tables", None)
    if not tables:
        return out
    for name, table in sorted(tables.items()):
        fields: Dict[str, list] = {}
        for attr, value in vars(table).items():
            if isinstance(value, np.ndarray):
                fields[attr] = value.tolist()
        out[name] = fields
    return out


def _directory_state(machine) -> list:
    """Coherence-directory end-state: per node, per line, the stable
    (state, owner, sharers) triple."""
    snap = []
    for directory in machine.memsys.directories:
        lines = []
        for line_addr in sorted(directory.known_lines()):
            entry = directory.peek(line_addr)
            lines.append(
                (
                    line_addr,
                    entry.state.value,
                    entry.owner,
                    tuple(sorted(entry.sharers)),
                )
            )
        snap.append(lines)
    return snap


def conformance_signature(result: RunResult, machine) -> dict:
    """Everything the conformance contract compares, as one dict."""
    failure = result.failure
    mem = result.mem
    spec = machine.spec if machine is not None else None
    return {
        "passed": result.passed,
        "failure": (
            (failure.reason, failure.element, failure.iteration, failure.processor)
            if failure is not None
            else None
        ),
        "detection_cycle": result.detection_cycle,
        "wall": result.wall,
        "phases": dict(result.phases),
        "spec_messages": result.spec_messages,
        "mem": (
            (
                mem.reads, mem.writes, mem.l1_hits, mem.l2_hits,
                mem.local_misses, mem.remote_2hop, mem.remote_3hop,
                mem.writebacks, mem.invalidations,
            )
            if mem is not None
            else None
        ),
        "assignment": result.assignment,
        "nonpriv_tables": _table_state(spec.nonpriv) if spec else {},
        "priv_tables": _table_state(spec.priv) if spec else {},
        "priv_simple_tables": _table_state(spec.priv_simple) if spec else {},
        "coherence_dirs": (
            _directory_state(machine) if machine is not None else {}
        ),
    }


def result_signature(result: RunResult) -> dict:
    """The result-only projection of :func:`conformance_signature` —
    everything it compares that lives on the ``RunResult`` itself, no
    machine required.  This is the full-signature compare available to
    consumers holding only archived results (the run ledger's cache-hit
    bit-identity check): two results with equal ``result_signature`` are
    bit-identical in verdict, failure attribution, timing, phase times,
    traffic counters and realized assignment.
    """
    sig = conformance_signature(result, machine=None)
    return {
        k: v
        for k, v in sig.items()
        if k not in ("nonpriv_tables", "priv_tables", "priv_simple_tables",
                     "coherence_dirs")
    }


#: Signature fields the relaxed ``verdict`` mode compares: the
#: vector tier's contract (see runtime/vector.py) — everything a user
#: observes about the *outcome* of the speculation, nothing about how
#: the simulation got there.
VERDICT_KEYS = ("passed", "failure", "detection_cycle", "assignment")


def verdict_signature(sig: dict) -> dict:
    """Project a full conformance signature down to the relaxed
    verdict/failure-attribution subset."""
    return {key: sig[key] for key in VERDICT_KEYS}


def signature_mode_of(engine: str) -> str:
    """Which signature a candidate engine is held to against scalar:
    ``full`` (bit-identical, the batch contract) or ``verdict`` (the
    vector contract)."""
    return "verdict" if engine == "vector" else "full"


def _project(sig: dict, mode: str) -> dict:
    return verdict_signature(sig) if mode == "verdict" else sig


class DiffMismatch(AssertionError):
    """Raised when the two engines disagree; message carries the repro."""


def run_case(case: CaseSpec, engine: str = "batch") -> Tuple[dict, dict]:
    """Run one case through scalar and ``engine``; return both *full*
    signatures (callers project to the engine's signature mode)."""
    sigs = []
    for eng in ("scalar", engine):
        captured: List[object] = []
        config = RunConfig(
            engine=eng,
            schedule=case.schedule,
            timestamp_bits=case.timestamp_bits,
            per_line_bits=case.per_line_bits,
            machine_hook=captured.append,
        )
        result = run_hw(case.loop, case.params, config)
        sigs.append(conformance_signature(result, captured[0]))
    return sigs[0], sigs[1]


def _diff_keys(scalar_sig: dict, other_sig: dict, engine: str) -> List[str]:
    label = f"{engine}:".ljust(8)
    lines = []
    for key in scalar_sig:
        if scalar_sig[key] != other_sig[key]:
            lines.append(
                f"  {key}:\n    scalar: {scalar_sig[key]!r}\n"
                f"    {label}{other_sig[key]!r}"
            )
    return lines


def _mismatch_message(
    case: CaseSpec, scalar_sig: dict, other_sig: dict, engine: str = "batch"
) -> str:
    mode = signature_mode_of(engine)
    detail = "\n".join(_diff_keys(scalar_sig, other_sig, engine))
    return (
        f"scalar/{engine} divergence on {case.describe()} "
        f"(signature mode: {mode})\n{detail}\n"
        f"reproduce: python -m repro.testing.diffcheck "
        f"--seed {case.seed} --engine {engine} --verbose"
    )


def check_seed(
    seed: int, engine: str = "batch", variant: str = "baseline"
) -> CaseSpec:
    """Build, run and compare one seed under ``engine``'s signature
    mode; raise :class:`DiffMismatch` with a one-line repro on any
    disagreement."""
    case = build_case(seed, variant)
    scalar_sig, other_sig = run_case(case, engine)
    mode = signature_mode_of(engine)
    a, b = _project(scalar_sig, mode), _project(other_sig, mode)
    if a != b:
        raise DiffMismatch(_mismatch_message(case, a, b, engine))
    return case


def seed_verdict(
    seed: int, engine: str = "batch", variant: str = "baseline"
) -> Dict[str, object]:
    """One seed's sweep record, as plain data (pool-task friendly).

    Keys: ``seed``, ``describe``, ``conforms`` (the engines agree under
    ``engine``'s signature mode), ``passed`` (the scalar run's verdict),
    and — on a mismatch only — ``message`` carrying the detail plus the
    one-line repro.
    """
    case = build_case(seed, variant)
    scalar_sig, other_sig = run_case(case, engine)
    mode = signature_mode_of(engine)
    a, b = _project(scalar_sig, mode), _project(other_sig, mode)
    verdict: Dict[str, object] = {
        "seed": seed,
        "describe": case.describe(),
        "conforms": a == b,
        "passed": bool(scalar_sig["passed"]),
    }
    if not verdict["conforms"]:
        verdict["message"] = _mismatch_message(case, a, b, engine)
    return verdict


def run_seeds(
    seeds: Sequence[int],
    jobs: int = 1,
    timeout: Optional[float] = None,
    bus=None,
    engine: str = "batch",
    profile=None,
    variant: str = "baseline",
) -> List[Dict[str, object]]:
    """Sweep ``seeds`` through :func:`seed_verdict`, fanning out across
    ``jobs`` worker processes; verdicts come back in seed order and are
    identical to a serial sweep of the same seeds.  ``profile`` (a
    ``repro.obs.spans.ProfileSession``) enables per-task profiling
    capture without changing any verdict."""
    tasks = [
        PoolTask(seed_verdict, (seed, engine, variant), label=f"seed:{seed}")
        for seed in seeds
    ]
    return run_tasks(tasks, jobs=jobs, timeout=timeout, bus=bus,
                     profile=profile)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.diffcheck",
        description="Replay differential conformance cases "
        "(scalar vs batch/vector).",
    )
    parser.add_argument("--seed", type=int, help="run one specific seed")
    parser.add_argument(
        "--engine", choices=("batch", "vector"), default="batch",
        help="candidate engine compared against scalar; batch is held to "
        "the full bit-identical signature, vector to the relaxed "
        "verdict/failure-attribution signature",
    )
    parser.add_argument(
        "--variant", choices=VARIANTS, default="baseline",
        help="corpus variant: baseline keeps each seed's generated "
        "schedule/machine; dynamic-nocontention reshapes every case "
        "into dynamic self-scheduling on a contention-free machine "
        "(the vector tier's replayed fast path)",
    )
    parser.add_argument(
        "--count", type=int, default=50,
        help="without --seed: number of consecutive seeds to run",
    )
    parser.add_argument(
        "--start", type=int, default=0,
        help="without --seed: first seed of the sweep",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print each case description"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (0 = one per core); "
        "verdicts are identical to --jobs 1",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-seed timeout in seconds before the worker is retried",
    )
    parser.add_argument(
        "--verdicts-out", default=None,
        help="write per-seed {conforms, passed} verdicts as JSON (the "
        "CI parallel-conformance job diffs this against the committed "
        "serial baseline)",
    )
    args = parser.parse_args(argv)

    seeds = (
        [args.seed]
        if args.seed is not None
        else list(range(args.start, args.start + args.count))
    )
    verdicts = run_seeds(
        seeds, jobs=args.jobs, timeout=args.timeout, engine=args.engine,
        variant=args.variant,
    )
    failures = 0
    for verdict in verdicts:
        if not verdict["conforms"]:
            failures += 1
            print(f"FAIL {verdict['message']}")
        elif args.verbose:
            print(f"ok   {verdict['describe']}")
    mode = signature_mode_of(args.engine)
    print(
        f"{len(seeds) - failures}/{len(seeds)} cases conform "
        f"(scalar vs {args.engine}, {mode} signature)"
    )
    if args.verdicts_out:
        doc = {
            "harness": "diffcheck",
            "engine": args.engine,
            "variant": args.variant,
            "signature_mode": mode,
            "seeds": [seeds[0], seeds[-1]] if seeds else [],
            "verdicts": {
                str(v["seed"]): {"conforms": v["conforms"], "passed": v["passed"]}
                for v in verdicts
            },
        }
        with open(args.verdicts_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.verdicts_out}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
