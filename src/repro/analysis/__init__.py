"""Observability: access traces, message logs, and their analysis.

A production simulator needs to answer "why is this slow / why did this
fail" — this package provides:

* :class:`~repro.analysis.tracing.AccessTrace` — an opt-in record of
  every simulated memory access (time, processor, address, hit level,
  latency), attachable to a :class:`~repro.memsys.MemorySystem`;
* :class:`~repro.analysis.tracing.MessageLog` — an opt-in record of the
  speculative protocol messages (First_update, read-first signals, ...)
  attachable to a :class:`~repro.core.context.ProtocolContext`;
* :mod:`repro.analysis.summary` — aggregation into per-processor /
  per-array / per-node summaries and ASCII reports.
"""

from .tracing import AccessRecord, AccessTrace, MessageLog, MessageRecord
from .summary import (
    ArrayTraffic,
    TraceSummary,
    format_summary,
    summarize_trace,
)

__all__ = [
    "AccessRecord",
    "AccessTrace",
    "ArrayTraffic",
    "MessageLog",
    "MessageRecord",
    "TraceSummary",
    "format_summary",
    "summarize_trace",
]
