"""Opt-in traces of memory accesses and protocol messages."""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

from ..memsys.cache import HitLevel
from ..types import AccessKind


@dataclasses.dataclass(frozen=True)
class AccessRecord:
    """One simulated memory access."""

    time: float
    proc: int
    kind: AccessKind
    addr: int
    level: HitLevel
    latency: int


class AccessTrace:
    """Bounded in-memory access trace.

    Attach with :meth:`attach`; the memory system then appends a record
    per access.  ``capacity`` bounds memory use — the oldest records are
    dropped once exceeded (``dropped`` counts them).
    """

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self.records: List[AccessRecord] = []
        self.dropped = 0

    def append(self, record: AccessRecord) -> None:
        if len(self.records) >= self.capacity:
            # Drop the oldest half in one go (amortized O(1) per append).
            drop = self.capacity // 2
            del self.records[:drop]
            self.dropped += drop
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self.records)

    def attach(self, memsys) -> "AccessTrace":
        """Start recording on ``memsys`` (a MemorySystem)."""
        memsys.trace = self
        return self

    @staticmethod
    def detach(memsys) -> None:
        memsys.trace = None

    def for_proc(self, proc: int) -> List[AccessRecord]:
        return [r for r in self.records if r.proc == proc]

    def misses(self) -> List[AccessRecord]:
        return [r for r in self.records if r.level is HitLevel.MEMORY]


@dataclasses.dataclass(frozen=True)
class MessageRecord:
    """One speculative-protocol message."""

    time: float
    label: str
    proc: int
    array: str
    index: int


class MessageLog:
    """Record of the coherence-extension messages (Figs 6-9).

    Attach to a :class:`~repro.core.context.ProtocolContext` via
    ``ctx.message_log = log`` (or through
    :meth:`repro.core.engine.SpeculationEngine`'s ``ctx``)."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self.records: List[MessageRecord] = []
        self.dropped = 0

    def append(self, record: MessageRecord) -> None:
        if len(self.records) >= self.capacity:
            drop = self.capacity // 2
            del self.records[:drop]
            self.dropped += drop
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[MessageRecord]:
        return iter(self.records)

    def by_label(self) -> "dict[str, int]":
        counts: dict = {}
        for record in self.records:
            counts[record.label] = counts.get(record.label, 0) + 1
        return counts
