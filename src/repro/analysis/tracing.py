"""Opt-in traces of memory accesses and protocol messages.

These are thin subscribers over the telemetry layer (``repro.obs``):
the record types are aliases of the bus event types, and both trace
classes share the bounded-ring behavior of
:class:`~repro.obs.bus.BoundedLog` (oldest half dropped at capacity,
``dropped`` counting evictions).  The legacy attach points —
``trace.attach(machine.memsys)`` and ``ctx.message_log = log`` — keep
working; :meth:`AccessTrace.subscribe` / :meth:`MessageLog.subscribe`
are the bus-native equivalents.
"""

from __future__ import annotations

from typing import List

from ..memsys.cache import HitLevel
from ..obs.bus import BoundedLog, EventBus
from ..obs.events import AccessEvent, ProtocolMessageEvent

#: One simulated memory access; alias of the bus event (same fields,
#: same positional order) so old and new code interoperate.
AccessRecord = AccessEvent

#: One speculative-protocol message; alias of the bus event.
MessageRecord = ProtocolMessageEvent


class AccessTrace(BoundedLog):
    """Bounded in-memory access trace.

    Attach with :meth:`attach` (wires through the memory system's event
    bus, creating one if needed) or :meth:`subscribe` on an existing
    bus.  ``capacity`` bounds memory use — the oldest records are
    dropped once exceeded (``dropped`` counts them).
    """

    def attach(self, memsys) -> "AccessTrace":
        """Start recording on ``memsys`` (a MemorySystem)."""
        if memsys.bus is None:
            memsys.bus = EventBus()
        memsys.bus.subscribe(AccessEvent, self.append)
        memsys.trace = self
        return self

    @staticmethod
    def detach(memsys) -> None:
        if memsys.trace is not None and memsys.bus is not None:
            memsys.bus.unsubscribe(AccessEvent, memsys.trace.append)
        memsys.trace = None

    def subscribe(self, bus: EventBus) -> "AccessTrace":
        """Record every :class:`AccessEvent` published on ``bus``."""
        bus.subscribe(AccessEvent, self.append)
        return self

    def for_proc(self, proc: int) -> List[AccessRecord]:
        return [r for r in self.records if r.proc == proc]

    def misses(self) -> List[AccessRecord]:
        return [r for r in self.records if r.level is HitLevel.MEMORY]


class MessageLog(BoundedLog):
    """Record of the coherence-extension messages (Figs 6-9).

    Attach to a :class:`~repro.core.context.ProtocolContext` via
    ``ctx.message_log = log`` (or through
    :meth:`repro.core.engine.SpeculationEngine`'s ``ctx``), or record
    from any telemetry bus with :meth:`subscribe`."""

    def subscribe(self, bus: EventBus) -> "MessageLog":
        """Record every :class:`ProtocolMessageEvent` on ``bus``."""
        bus.subscribe(ProtocolMessageEvent, self.append)
        return self

    def by_label(self) -> "dict[str, int]":
        counts: dict = {}
        for record in self.records:
            counts[record.label] = counts.get(record.label, 0) + 1
        return counts
