"""Aggregation of access traces into human-readable summaries."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..address import AddressSpace
from ..memsys.cache import HitLevel
from ..types import AccessKind
from .tracing import AccessTrace


@dataclasses.dataclass
class ArrayTraffic:
    """Access counts of one array (or the anonymous remainder)."""

    array: str
    reads: int = 0
    writes: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    misses: int = 0
    stall_cycles: float = 0.0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclasses.dataclass
class TraceSummary:
    """Whole-trace aggregation."""

    total_accesses: int
    per_array: Dict[str, ArrayTraffic]
    per_proc_accesses: Dict[int, int]
    dropped: int = 0

    def hottest_arrays(self, limit: int = 5) -> List[ArrayTraffic]:
        return sorted(
            self.per_array.values(), key=lambda t: t.stall_cycles, reverse=True
        )[:limit]


def summarize_trace(trace: AccessTrace, space: AddressSpace) -> TraceSummary:
    """Aggregate an access trace by array and processor."""
    per_array: Dict[str, ArrayTraffic] = {}
    per_proc: Dict[int, int] = {}
    for record in trace:
        decl = space.find(record.addr)
        name = decl.name if decl is not None else "<unknown>"
        traffic = per_array.get(name)
        if traffic is None:
            traffic = ArrayTraffic(name)
            per_array[name] = traffic
        if record.kind is AccessKind.READ:
            traffic.reads += 1
        else:
            traffic.writes += 1
        if record.level is HitLevel.L1:
            traffic.l1_hits += 1
        elif record.level is HitLevel.L2:
            traffic.l2_hits += 1
        else:
            traffic.misses += 1
        traffic.stall_cycles += max(0, record.latency - 1)
        per_proc[record.proc] = per_proc.get(record.proc, 0) + 1
    return TraceSummary(
        total_accesses=len(trace),
        per_array=per_array,
        per_proc_accesses=per_proc,
        dropped=trace.dropped,
    )


def format_summary(summary: TraceSummary, limit: int = 10) -> str:
    """Render a summary as an aligned text table."""
    lines = [
        f"access trace: {summary.total_accesses} accesses"
        + (f" ({summary.dropped} dropped)" if summary.dropped else ""),
        f"{'array':<20} {'reads':>8} {'writes':>8} {'L1':>8} {'L2':>7} "
        f"{'miss':>7} {'miss%':>6} {'stall cyc':>10}",
        "-" * 78,
    ]
    ranked = sorted(
        summary.per_array.values(), key=lambda t: t.accesses, reverse=True
    )
    for t in ranked[:limit]:
        lines.append(
            f"{t.array:<20} {t.reads:>8} {t.writes:>8} {t.l1_hits:>8} "
            f"{t.l2_hits:>7} {t.misses:>7} {100 * t.miss_rate:>5.1f}% "
            f"{t.stall_cycles:>10.0f}"
        )
    if len(ranked) > limit:
        lines.append(f"... and {len(ranked) - limit} more arrays")
    return "\n".join(lines)
