"""Guarded-transition model of the three speculation protocols.

The model mirrors, transition for transition, what the scalar engine's
memory system (:mod:`repro.memsys.system`) and protocol implementations
(:mod:`repro.core.nonpriv`, :mod:`repro.core.privatization`) do to the
per-element access bits, the cache-line tag copies and the directory
tables — but over an abstract small configuration, with protocol
messages held in an explicitly explorable pending multiset instead of a
timed scheduler.  Geometry is fixed at one element per cache line and
caches large enough that nothing is ever evicted, which is exactly the
regime the equivalent concrete engine runs are configured for
(:mod:`repro.modelcheck.crosscheck`).

A state is: per-processor executed access history, the protocol's
directory tables, every cached line copy with its tag bits, the pending
message multiset, the time-stamp epoch and a run status.  Transitions:

* ``access`` — one processor executes its next read/write (in free mode
  the choice of element and kind branches, folding program enumeration
  into the state space); the full memsys hit/upgrade/fetch/recall
  sequence runs synchronously, exactly as in the engine;
* ``deliver`` — one pending protocol message is consumed.  Messages
  live in per-channel FIFO queues keyed by (hop, processor): protocol
  messages on one point-to-point channel share a constant network
  delay in the engine, so they can never overtake each other, while
  messages on *different* channels (another processor's signals, the
  cache->home vs home->shared hops) race freely.  The model delivers
  any channel head next — the exact superset of orderings the engine's
  timed scheduler can realize across configurations;
* ``epoch-sync`` — with ``timestamp_bits``, once every processor has
  drained the current epoch and no messages are pending (the engine
  flushes before syncing);
* ``commit`` / ``finish`` — all work done and messages drained: the
  non-privatization loop-end writeback merge runs (it can FAIL), the
  privatization variants simply complete.

Failure is terminal: the engine's controller keeps the first failure
and drops deliveries afterwards, so the model stops there too.

Every transition also yields the telemetry events the engine would emit
(directory updates on change only, protocol messages at send time,
coherence transitions, failures), so a terminal state's witness trace
can be replayed through the online monitors unchanged.

Injected faults (test-only): ``ModelConfig.faults`` names FAIL guards
to skip, turning a correct protocol into a subtly broken one so the
cross-checkers can prove they would catch a real bug.  Guard names:
``np-tag-read``, ``np-tag-write``, ``np-dir-read``, ``np-dir-write``,
``np-merge-ronly``, ``np-merge-first``, ``np-fu-race``, ``np-fuf-wrote``,
``np-ru-race``, ``pv-rf-past``, ``pv-rf-order``, ``pv-fw-order``,
``pv-readin-past``, ``pv-readin-order``, ``pv-readin-write``,
``ps-local-wany``, ``ps-shared-read``, ``ps-shared-write``.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..memsys.directory import next_dir_state
from ..obs.events import (
    DirTransitionEvent,
    EpochSyncEvent,
    FailureEvent,
    NonPrivDirUpdateEvent,
    PrivDirUpdateEvent,
    PrivSimpleDirUpdateEvent,
    ProtocolMessageEvent,
)
from ..runtime.phases import segment_of
from ..types import AccessKind, DirState, ProtocolKind

__all__ = ["ARRAY", "ModelConfig", "MState", "ProtocolModel", "RUN", "DONE", "FAILED"]

#: the single array under test
ARRAY = "A"

RUN, DONE, FAILED = 0, 1, 2

#: tag First summaries (NonPrivTagBits.first)
FS_NONE, FS_OWN, FS_OTHER = 0, 1, 2

_NO_PROC = -1
_NO_ITER = 0

#: synthetic element size / line size (one element per line)
_ELEM_BYTES = 8
#: address stride separating the shared array from each private copy
_COPY_STRIDE = 0x10000

#: program over one access slot: (is_write, element)
Access = Tuple[int, int]


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """One model-checking configuration (tiny by construction)."""

    protocol: ProtocolKind
    procs: int = 2
    elements: int = 2
    #: iterations per processor
    iters: int = 1
    #: access slots per iteration (free mode)
    ops_per_iter: int = 2
    #: PRIV only: time-stamp width; capacity ``2**bits - 1`` effective
    #: iterations per epoch, round-robin virtual numbering (the engine's
    #: BLOCK_CYCLIC/chunk=1/CHUNK schedule).  ``None``: unbounded
    #: stamps, contiguous numbering (STATIC_CHUNK/ITERATION).
    timestamp_bits: Optional[int] = None
    #: warm root: every processor starts with clean copies of its
    #: backup-phase segment resident (NONPRIV only)
    warm: bool = False
    #: fixed per-processor programs (minimization / fault repro mode);
    #: ``None`` explores every program of the free shape
    programs: Optional[Tuple[Tuple[Tuple[Access, ...], ...], ...]] = None
    #: FAIL guards to skip (test-only fault injection)
    faults: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.protocol not in (
            ProtocolKind.NONPRIV, ProtocolKind.PRIV, ProtocolKind.PRIV_SIMPLE
        ):
            raise ValueError(f"cannot model-check protocol {self.protocol}")
        if self.timestamp_bits is not None and self.protocol is not ProtocolKind.PRIV:
            raise ValueError("timestamp_bits only applies to the PRIV protocol")
        if self.warm and self.protocol is not ProtocolKind.NONPRIV:
            raise ValueError(
                "warm roots model the backup-phase residency of the shared "
                "array; privatized arrays are never backed up, so their "
                "private copies always start cold"
            )
        if self.programs is not None and len(self.programs) != self.procs:
            raise ValueError("programs must list one program per processor")

    # ------------------------------------------------------------------
    @property
    def round_robin(self) -> bool:
        return self.timestamp_bits is not None

    @property
    def capacity(self) -> int:
        """Effective iterations per time-stamp epoch."""
        if self.timestamp_bits is None:
            return 1 << 62
        return (1 << self.timestamp_bits) - 1

    def virt(self, proc: int, local_iter: int) -> int:
        """Virtual iteration number of ``proc``'s ``local_iter``-th
        (1-based) iteration under the equivalent concrete schedule."""
        if self.round_robin:
            return (local_iter - 1) * self.procs + proc + 1
        return proc * self.iters + local_iter

    def eff(self, virt: int) -> int:
        """Effective (post-overflow-reset) iteration number (§3.3)."""
        return (virt - 1) % self.capacity + 1

    def epoch_of(self, virt: int) -> int:
        return (virt - 1) // self.capacity

    def proc_of_virt(self, virt: int) -> int:
        if self.round_robin:
            return (virt - 1) % self.procs
        return (virt - 1) // self.iters

    def flat_program(self, proc: int) -> Optional[List[Tuple[int, int, int]]]:
        """Fixed mode: flat ``(local_iter, is_write, element)`` slots."""
        if self.programs is None:
            return None
        return [
            (j + 1, acc[0], acc[1])
            for j, body in enumerate(self.programs[proc])
            for acc in body
        ]


class MState:
    """One mutable model state (frozen to tuples for hashing)."""

    __slots__ = (
        "pos", "hist", "status", "failure", "msgs", "epoch",
        "np_dir", "np_line",
        "pv_shared", "pv_priv", "pv_line",
        "ps_shared", "ps_priv", "ps_pline", "ps_sline",
    )

    def __init__(self) -> None:
        self.pos: List[int] = []
        self.hist: List[Tuple[Access, ...]] = []
        self.status = RUN
        #: (reason, element_index, proc, iteration) of the first failure
        self.failure: Optional[Tuple[str, int, Optional[int], Optional[int]]] = None
        #: pending protocol messages: FIFO queue per point-to-point
        #: channel ``(hop-label, proc)``; empty channels are removed
        self.msgs: Dict[tuple, List[tuple]] = {}
        self.epoch = 0
        # NONPRIV: directory [first, priv, ronly] per element; cached
        # copy per (proc, element): None | [dirty, tfirst, tpriv, tronly]
        self.np_dir: List[List] = []
        self.np_line: List[List] = []
        # PRIV: shared [max_r1st, min_w, written_past]; private
        # [pmax_r1st, pmax_w]; line None | [dirty, r1st, write, tag_iter]
        self.pv_shared: List[List] = []
        self.pv_priv: List[List] = []
        self.pv_line: List[List] = []
        # PRIV_SIMPLE: shared [any_r1st, any_w]; private
        # [read1st, write, iter, write_any]; private line None | [1]
        # (always dirty) with tag in ps_ptag...
        self.ps_shared: List[List] = []
        self.ps_priv: List[List] = []
        #: private-copy line per (proc, element): None | [r1st, w, tag_iter]
        self.ps_pline: List[List] = []
        #: shared-copy clean line per (proc, element): None | [r1st, w, tag_iter]
        self.ps_sline: List[List] = []

    # ------------------------------------------------------------------
    def copy(self) -> "MState":
        st = MState.__new__(MState)
        st.pos = list(self.pos)
        st.hist = list(self.hist)
        st.status = self.status
        st.failure = self.failure
        st.msgs = {chan: list(queue) for chan, queue in self.msgs.items()}
        st.epoch = self.epoch
        st.np_dir = [list(d) for d in self.np_dir]
        st.np_line = [
            [None if c is None else list(c) for c in row] for row in self.np_line
        ]
        st.pv_shared = [list(d) for d in self.pv_shared]
        st.pv_priv = [[list(c) for c in row] for row in self.pv_priv]
        st.pv_line = [
            [None if c is None else list(c) for c in row] for row in self.pv_line
        ]
        st.ps_shared = [list(d) for d in self.ps_shared]
        st.ps_priv = [[list(c) for c in row] for row in self.ps_priv]
        st.ps_pline = [
            [None if c is None else list(c) for c in row] for row in self.ps_pline
        ]
        st.ps_sline = [
            [None if c is None else list(c) for c in row] for row in self.ps_sline
        ]
        return st


@dataclasses.dataclass
class Edge:
    """One explored transition: action label, emitted events (as
    ``(EventClass, kwargs)`` pairs, timeless — the witness builder
    stamps the BFS depth), successor state."""

    action: str
    events: Tuple[tuple, ...]
    state: MState


class ProtocolModel:
    """Transition relation for one :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig) -> None:
        self.cfg = config
        self._choices: List[Access] = [
            (w, e) for e in range(config.elements) for w in (0, 1)
        ]
        self._flat = (
            None
            if config.programs is None
            else [config.flat_program(p) for p in range(config.procs)]
        )

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------
    def initial_state(self) -> MState:
        cfg = self.cfg
        P, E = cfg.procs, cfg.elements
        st = MState()
        st.pos = [0] * P
        st.hist = [()] * P
        if cfg.protocol is ProtocolKind.NONPRIV:
            st.np_dir = [[_NO_PROC, False, False] for _ in range(E)]
            st.np_line = [[None] * E for _ in range(P)]
            if cfg.warm:
                # Backup-phase residency: each processor read its own
                # contiguous segment before arm(); arm() cleared the
                # spec tags but the clean copies stay resident and the
                # home directories remember the sharers.
                for p in range(P):
                    lo, hi = segment_of(E, p, P)
                    for e in range(lo, hi):
                        st.np_line[p][e] = [0, FS_NONE, False, False]
        elif cfg.protocol is ProtocolKind.PRIV:
            st.pv_shared = [[0, _NO_ITER, False] for _ in range(E)]
            st.pv_priv = [[[0, 0] for _ in range(E)] for _ in range(P)]
            st.pv_line = [[None] * E for _ in range(P)]
        else:
            st.ps_shared = [[False, False] for _ in range(E)]
            st.ps_priv = [[[False, False, -1, False] for _ in range(E)]
                          for _ in range(P)]
            st.ps_pline = [[None] * E for _ in range(P)]
            st.ps_sline = [[None] * E for _ in range(P)]
        return st

    # ------------------------------------------------------------------
    # Program shape
    # ------------------------------------------------------------------
    def total_ops(self, proc: int) -> int:
        if self._flat is not None:
            return len(self._flat[proc])
        return self.cfg.iters * self.cfg.ops_per_iter

    def _next_slot(self, st: MState, proc: int) -> Optional[Tuple[int, Optional[Access]]]:
        """``(local_iter, fixed_access | None)`` of the next slot, or
        ``None`` when the processor is done."""
        pos = st.pos[proc]
        if self._flat is not None:
            flat = self._flat[proc]
            if pos >= len(flat):
                return None
            j, w, e = flat[pos]
            return j, (w, e)
        if pos >= self.total_ops(proc):
            return None
        return pos // self.cfg.ops_per_iter + 1, None

    def _epoch_ok(self, st: MState, proc: int, local_iter: int) -> bool:
        return self.cfg.epoch_of(self.cfg.virt(proc, local_iter)) == st.epoch

    # ------------------------------------------------------------------
    # Transition enumeration
    # ------------------------------------------------------------------
    def successors(self, st: MState) -> List[Edge]:
        if st.status != RUN:
            return []
        cfg = self.cfg
        edges: List[Edge] = []
        # Message deliveries: the head of each non-empty FIFO channel.
        for chan in sorted(st.msgs):
            msg = st.msgs[chan][0]
            nxt = st.copy()
            queue = nxt.msgs[chan]
            queue.pop(0)
            if not queue:
                del nxt.msgs[chan]
            ev: List[tuple] = []
            self._deliver(nxt, msg, ev)
            edges.append(Edge(f"deliver:{msg[0]}", tuple(ev), nxt))
        # Processor accesses.
        any_runnable = False
        all_done = True
        for p in range(cfg.procs):
            slot = self._next_slot(st, p)
            if slot is None:
                continue
            all_done = False
            j, fixed = slot
            if not self._epoch_ok(st, p, j):
                continue
            any_runnable = True
            for (w, e) in ([fixed] if fixed is not None else self._choices):
                nxt = st.copy()
                nxt.pos[p] += 1
                nxt.hist[p] = nxt.hist[p] + ((w, e),)
                ev = []
                self._access(nxt, p, j, w, e, ev)
                kind = "w" if w else "r"
                edges.append(Edge(f"P{p}:{kind}{e}@{j}", tuple(ev), nxt))
        # Epoch synchronization: every processor stalled at the epoch
        # barrier, all messages flushed (the engine flushes first).
        if (not all_done and not any_runnable and not st.msgs
                and cfg.round_robin):
            nxt = st.copy()
            ev = []
            self._epoch_sync(nxt, ev)
            edges.append(Edge(f"epoch-sync:{st.epoch}", tuple(ev), nxt))
        # Loop end: all work executed, every message drained.
        if all_done and not st.msgs:
            nxt = st.copy()
            ev = []
            if cfg.protocol is ProtocolKind.NONPRIV:
                self._np_commit(nxt, ev)
            if nxt.status == RUN:
                nxt.status = DONE
            edges.append(Edge("commit", tuple(ev), nxt))
        return edges

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _guard(self, name: str) -> bool:
        """False when the named FAIL guard is fault-injected away."""
        return name not in self.cfg.faults

    @staticmethod
    def _send(st: MState, chan: tuple, msg: tuple) -> None:
        """Enqueue a protocol message on its point-to-point channel.
        Same-channel messages deliver in FIFO order (the engine's
        constant per-hop delays and time-ordered scheduler guarantee
        this; delivering them out of order would explore interleavings
        the hardware cannot produce)."""
        st.msgs.setdefault(chan, []).append(msg)

    def _fail(
        self, st: MState, ev: List[tuple], prefix: str, reason: str,
        elem: int, proc: Optional[int], iteration: Optional[int] = None,
    ) -> None:
        st.status = FAILED
        st.failure = (f"{prefix}{reason}", elem, proc, iteration)
        # In-flight deliveries are dropped once the controller failed.
        st.msgs = {}
        ev.append((FailureEvent, {
            "reason": f"{prefix}{reason}",
            "element": (ARRAY, elem),
            "proc": proc,
            "iteration": iteration,
        }))

    @staticmethod
    def _line_addr(elem: int, copy: int = 0) -> int:
        """Synthetic line address: copy 0 is the shared array, copy
        ``p + 1`` the private copy of processor ``p``."""
        return copy * _COPY_STRIDE + elem * _ELEM_BYTES

    def _dir_event(
        self, ev: List[tuple], elem: int, prev: DirState, new: DirState,
        proc: int, kind: AccessKind, copy: int = 0,
    ) -> None:
        if prev is not new:
            ev.append((DirTransitionEvent, {
                "node": 0,
                "line_addr": self._line_addr(elem, copy),
                "prev": prev,
                "new": new,
                "proc": proc,
                "kind": kind,
            }))

    @staticmethod
    def _msg_event(
        ev: List[tuple], label: str, proc: int, elem: int,
        iteration: Optional[int] = None,
    ) -> None:
        ev.append((ProtocolMessageEvent, {
            "label": label, "proc": proc, "array": ARRAY, "index": elem,
            "iteration": iteration,
        }))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _access(
        self, st: MState, p: int, j: int, w: int, e: int, ev: List[tuple]
    ) -> None:
        proto = self.cfg.protocol
        if proto is ProtocolKind.NONPRIV:
            self._np_access(st, p, w, e, ev)
        elif proto is ProtocolKind.PRIV:
            self._pv_access(st, p, j, w, e, ev)
        else:
            self._ps_access(st, p, j, w, e, ev)

    def _deliver(self, st: MState, msg: tuple, ev: List[tuple]) -> None:
        handler = {
            "FU": self._np_dir_first_update,
            "RU": self._np_dir_ronly_update,
            "FUF": self._np_cache_first_update_fail,
            "LRF": self._pv_private_read_first,
            "LFW": self._pv_private_first_write,
            "SRF": self._pv_shared_read_first,
            "SFW": self._pv_shared_first_write,
            "LR": self._ps_private_read,
            "LW": self._ps_private_write,
            "SR": self._ps_shared_read,
            "SW": self._ps_shared_write,
        }[msg[0]]
        handler(st, *msg[1:], ev)

    # ==================================================================
    # NONPRIV (Figs 6/7)
    # ==================================================================
    def _np_access(self, st: MState, p: int, w: int, e: int, ev: List[tuple]) -> None:
        line = st.np_line[p][e]
        if line is not None:
            self._np_hit(st, p, e, w, line, ev)
            if st.status != RUN:
                return
            if w and not line[0]:
                # Write hit on a clean copy: upgrade through the home.
                prev = self._np_dir_state(st, e)
                for q in range(self.cfg.procs):
                    if q != p:
                        st.np_line[q][e] = None
                self._np_dir_access(st, p, e, w, ev)
                if st.status != RUN:
                    return
                self._dir_event(ev, e, prev, DirState.DIRTY, p, AccessKind.WRITE)
                line[0] = 1
                line[1], line[2], line[3] = self._np_tag_view(st, e, p)
            return
        # Miss: fetch through the home directory.
        prev = self._np_dir_state(st, e)
        owner = next(
            (q for q in range(self.cfg.procs)
             if st.np_line[q][e] is not None and st.np_line[q][e][0]),
            None,
        )
        if owner is not None:
            # Recall the dirty copy; its tag state merges at the home.
            ob = st.np_line[owner][e]
            st.np_line[owner][e] = None
            self._np_merge_word(
                st, owner, e, ob[1] == FS_OWN, ob[2], ob[3], ev
            )
            if st.status != RUN:
                return
            if not w:
                # Read recall: the owner keeps a clean copy, tags intact.
                st.np_line[owner][e] = [0, ob[1], ob[2], ob[3]]
        if w:
            for q in range(self.cfg.procs):
                if q != p and st.np_line[q][e] is not None:
                    st.np_line[q][e] = None
        self._np_dir_access(st, p, e, w, ev)
        if st.status != RUN:
            return
        kind = AccessKind.WRITE if w else AccessKind.READ
        self._dir_event(ev, e, prev, next_dir_state(prev, kind), p, kind)
        st.np_line[p][e] = [w, *self._np_tag_view(st, e, p)]

    def _np_dir_state(self, st: MState, e: int) -> DirState:
        """Coherence state of the shared line, derived from the copies."""
        states = [row[e] for row in st.np_line if row[e] is not None]
        if any(c[0] for c in states):
            return DirState.DIRTY
        return DirState.SHARED if states else DirState.UNCACHED

    def _np_tag_view(self, st: MState, e: int, p: int) -> List:
        first, priv, ronly = st.np_dir[e]
        if first == _NO_PROC:
            fs = FS_NONE
        elif first == p:
            fs = FS_OWN
        else:
            fs = FS_OTHER
        return [fs, priv, ronly]

    def _np_hit(
        self, st: MState, p: int, e: int, w: int, line: List, ev: List[tuple]
    ) -> None:
        """Fig 6-(a)/(c): the tag-side check on a cache hit."""
        dirty, fs = line[0], line[1]
        if not w:
            if fs == FS_OTHER and line[2] and self._guard("np-tag-read"):
                self._fail(st, ev, "non-privatization: ",
                           "read of element written by another processor (tag)",
                           e, p)
                return
            if fs == FS_NONE:
                line[1] = FS_OWN
                if not dirty:
                    self._msg_event(ev, "First_update", p, e)
                    self._send(st, ("cd", p), ("FU", p, e))
            elif fs == FS_OTHER and not line[3]:
                line[3] = True
                if not dirty:
                    self._msg_event(ev, "ROnly_update", p, e)
                    self._send(st, ("cd", p), ("RU", p, e))
        else:
            if (fs == FS_OTHER or line[3]) and self._guard("np-tag-write"):
                self._fail(st, ev, "non-privatization: ",
                           "write to element read/written by another "
                           "processor (tag)", e, p)
                return
            line[1] = FS_OWN
            line[2] = True

    def _np_dir_access(
        self, st: MState, p: int, e: int, w: int, ev: List[tuple]
    ) -> None:
        """Fig 6-(b)/(d): the home-side check on a data request."""
        d = st.np_dir[e]
        snap = tuple(d)
        if not w:
            if d[0] != p and d[0] != _NO_PROC and d[1] and self._guard("np-dir-read"):
                self._fail(st, ev, "non-privatization: ",
                           "read of element written by another processor (dir)",
                           e, p)
                return
            if d[0] == _NO_PROC:
                d[0] = p
            elif d[0] != p and not d[2]:
                d[2] = True
        else:
            if ((d[0] not in (p, _NO_PROC)) or d[2]) and self._guard("np-dir-write"):
                self._fail(st, ev, "non-privatization: ",
                           "write to element read/written by another "
                           "processor (dir)", e, p)
                return
            if d[0] in (p, _NO_PROC) and not d[2]:
                d[0] = p
                d[1] = True
        cause = "write-req" if w else "read-req"
        self._np_update_event(ev, e, p, cause, snap, d)

    @staticmethod
    def _np_update_event(
        ev: List[tuple], e: int, p: int, cause: str, snap: tuple, d: List
    ) -> None:
        if tuple(d) != snap:
            ev.append((NonPrivDirUpdateEvent, {
                "array": ARRAY, "index": e, "proc": p, "cause": cause,
                "prev_first": snap[0], "prev_priv": snap[1],
                "prev_ronly": snap[2],
                "first": d[0], "priv": d[1], "ronly": d[2],
            }))

    def _np_merge_word(
        self, st: MState, p: int, e: int, own: bool, priv: bool, ronly: bool,
        ev: List[tuple],
    ) -> None:
        """Fig 6-(e): fold one recalled/committed dirty word's tag state
        into the home directory."""
        d = st.np_dir[e]
        snap = tuple(d)
        if own:
            if priv:
                if d[2] and self._guard("np-merge-ronly"):
                    self._fail(st, ev, "non-privatization: ",
                               "writeback reveals write to read-only element",
                               e, p)
                    return
                if d[0] not in (_NO_PROC, p) and self._guard("np-merge-first"):
                    self._fail(st, ev, "non-privatization: ",
                               "writeback reveals write to element first "
                               "accessed by another processor", e, p)
                    return
                d[0] = p
                d[1] = True
            else:
                if d[0] == _NO_PROC:
                    d[0] = p
                elif d[0] != p:
                    d[2] = True
        if ronly:
            d[2] = True
        self._np_update_event(ev, e, p, "writeback", snap, d)

    def _np_dir_first_update(self, st: MState, p: int, e: int, ev: List[tuple]) -> None:
        """Fig 6-(f): the home receives a First_update."""
        d = st.np_dir[e]
        snap = tuple(d)
        if d[1]:
            if d[0] != p and self._guard("np-fu-race"):
                self._fail(st, ev, "non-privatization: ",
                           "race between a First_update and a write", e, p)
            return
        if d[0] == _NO_PROC:
            d[0] = p
            self._np_update_event(ev, e, p, "first-update", snap, d)
        elif d[0] != p:
            d[2] = True
            self._np_update_event(ev, e, p, "first-update", snap, d)
            self._msg_event(ev, "First_update_fail", p, e)
            self._send(st, ("dc", p), ("FUF", p, e))

    def _np_cache_first_update_fail(
        self, st: MState, p: int, e: int, ev: List[tuple]
    ) -> None:
        """Fig 6-(g): the losing cache corrects its First summary."""
        line = st.np_line[p][e]
        if line is None:
            return
        if line[1] == FS_OWN and line[2] and self._guard("np-fuf-wrote"):
            self._fail(st, ev, "non-privatization: ",
                       "race between two First_updates: processor read and "
                       "then wrote before losing the race", e, p)
            return
        line[1] = FS_OTHER
        line[3] = True

    def _np_dir_ronly_update(self, st: MState, p: int, e: int, ev: List[tuple]) -> None:
        """Fig 7-(h): the home receives a ROnly_update."""
        d = st.np_dir[e]
        if d[1]:
            if self._guard("np-ru-race"):
                self._fail(st, ev, "non-privatization: ",
                           "race between a ROnly_update and a write", e, p)
            return
        snap = tuple(d)
        d[2] = True
        self._np_update_event(ev, e, p, "ronly-update", snap, d)

    def _np_commit(self, st: MState, ev: List[tuple]) -> None:
        """Loop-end commit: write back every dirty line, merging its tag
        state at the home (the merge itself can FAIL)."""
        for p in range(self.cfg.procs):
            for e in range(self.cfg.elements):
                line = st.np_line[p][e]
                if line is not None and line[0]:
                    self._np_merge_word(
                        st, p, e, line[1] == FS_OWN, line[2], line[3], ev
                    )
                    if st.status != RUN:
                        return

    # ==================================================================
    # PRIV (Figs 8/9)
    # ==================================================================
    def _pv_access(
        self, st: MState, p: int, j: int, w: int, e: int, ev: List[tuple]
    ) -> None:
        it = self.cfg.eff(self.cfg.virt(p, j))
        line = st.pv_line[p][e]
        if line is not None:
            self._pv_hit(st, p, e, w, it, line, ev)
            if st.status != RUN:
                return
            if w and not line[0]:
                # Upgrade of the private line through its (local) home.
                self._pv_dir_access(st, p, e, w, it, ev)
                if st.status != RUN:
                    return
                self._dir_event(ev, e, DirState.SHARED, DirState.DIRTY, p,
                                AccessKind.WRITE, copy=p + 1)
                line[0] = 1
                self._pv_fill(st, p, e, it, line)
            return
        # Miss: a never-cached private line (nothing evicts, nobody else
        # touches it), so the directory is UNCACHED.
        self._pv_dir_access(st, p, e, w, it, ev)
        if st.status != RUN:
            return
        kind = AccessKind.WRITE if w else AccessKind.READ
        self._dir_event(ev, e, DirState.UNCACHED, next_dir_state(DirState.UNCACHED, kind),
                        p, kind, copy=p + 1)
        line = [w, False, False, -1]
        self._pv_fill(st, p, e, it, line)
        st.pv_line[p][e] = line

    @staticmethod
    def _tag_get(line: List, it: int) -> Tuple[bool, bool]:
        if line[3] == it:
            return line[1], line[2]
        return False, False

    @staticmethod
    def _tag_set(line: List, it: int, read1st: bool = False, write: bool = False) -> None:
        if line[3] != it:
            line[1] = line[2] = False
            line[3] = it
        line[1] = line[1] or read1st
        line[2] = line[2] or write

    def _pv_fill(self, st: MState, p: int, e: int, it: int, line: List) -> None:
        t = st.pv_priv[p][e]
        read1st = t[0] == it
        wrote = t[1] == it
        if read1st or wrote:
            line[1], line[2], line[3] = read1st, wrote, it
        else:
            line[1], line[2], line[3] = False, False, -1

    def _pv_hit(
        self, st: MState, p: int, e: int, w: int, it: int, line: List,
        ev: List[tuple],
    ) -> None:
        """Fig 8-(a)/9-(f): per-iteration tag bits gate the signals."""
        read1st, wrote = self._tag_get(line, it)
        if not w:
            if not read1st and not wrote:
                self._tag_set(line, it, read1st=True)
                self._msg_event(ev, "read-first", p, e, it)
                self._send(st, ("L", p), ("LRF", p, e, it))
        else:
            if not wrote:
                self._tag_set(line, it, write=True)
                self._msg_event(ev, "first-write", p, e, it)
                self._send(st, ("L", p), ("LFW", p, e, it))

    def _pv_dir_access(
        self, st: MState, p: int, e: int, w: int, it: int, ev: List[tuple]
    ) -> None:
        """Fig 8-(c)/9-(h): the private home on a data request.  One
        element per line, so ``line_untouched`` is just this element's
        private stamps."""
        t = st.pv_priv[p][e]
        untouched = t[0] == 0 and t[1] == 0
        if not w:
            if untouched:
                self._pv_read_in(st, p, e, it, False, ev)
                t[0] = it
            elif t[0] < it and t[1] < it:
                self._send(st, ("S", p), ("SRF", p, e, it))
                t[0] = it
        else:
            if t[1] == _NO_ITER:
                if untouched:
                    self._pv_read_in(st, p, e, it, True, ev)
                else:
                    self._send(st, ("S", p), ("SFW", p, e, it))
                t[1] = it
            elif t[1] < it:
                t[1] = it

    def _pv_shared_event(
        self, ev: List[tuple], e: int, p: int, it: int, cause: str,
        snap: tuple, d: List,
    ) -> None:
        after = (d[0], d[1] if d[1] != _NO_ITER else None)
        if after != snap:
            ev.append((PrivDirUpdateEvent, {
                "array": ARRAY, "index": e, "proc": p, "iteration": it,
                "cause": cause,
                "prev_max_r1st": snap[0], "prev_min_w": snap[1],
                "max_r1st": after[0], "min_w": after[1],
            }))

    def _pv_snap(self, st: MState, e: int) -> tuple:
        d = st.pv_shared[e]
        return (d[0], d[1] if d[1] != _NO_ITER else None)

    def _pv_read_in(
        self, st: MState, p: int, e: int, it: int, for_write: bool,
        ev: List[tuple],
    ) -> None:
        """Fig 8-(e)/9-(j): the blocking read-in check at the shared home."""
        self._msg_event(ev, "read-in-for-write" if for_write else "read-in",
                        p, e, it)
        d = st.pv_shared[e]
        snap = self._pv_snap(st, e)
        if for_write:
            if it < d[0] and self._guard("pv-readin-write"):
                self._fail(st, ev, "privatization: ",
                           f"write in iteration {it} of element read-first "
                           f"in later iteration {d[0]} (read-in for write)",
                           e, p, it)
                return
            if d[1] == _NO_ITER or it < d[1]:
                d[1] = it
            self._pv_shared_event(ev, e, p, it, "read-in-for-write", snap, d)
        else:
            if d[2] and self._guard("pv-readin-past"):
                self._fail(st, ev, "privatization: ",
                           "read-first of element written in an earlier "
                           "time-stamp epoch (read-in)", e, p, it)
                return
            if d[1] != _NO_ITER and it > d[1] and self._guard("pv-readin-order"):
                self._fail(st, ev, "privatization: ",
                           f"read-first in iteration {it} of element written "
                           f"in earlier iteration {d[1]} (read-in)", e, p, it)
                return
            if it > d[0]:
                d[0] = it
            self._pv_shared_event(ev, e, p, it, "read-in", snap, d)

    def _pv_private_read_first(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        """Fig 8-(b): the private home learns of a read-first."""
        t = st.pv_priv[p][e]
        t[0] = max(t[0], it)
        self._send(st, ("S", p), ("SRF", p, e, it))

    def _pv_private_first_write(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        """Fig 9-(g): forward only the first write in the whole loop."""
        t = st.pv_priv[p][e]
        if t[1] == _NO_ITER:
            t[1] = it
            self._send(st, ("S", p), ("SFW", p, e, it))
        elif t[1] < it:
            t[1] = it

    def _pv_shared_read_first(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        """Fig 8-(d): FAIL if a lower-numbered iteration already wrote."""
        d = st.pv_shared[e]
        if d[2] and self._guard("pv-rf-past"):
            self._fail(st, ev, "privatization: ",
                       "read-first of element written in an earlier "
                       "time-stamp epoch", e, p, it)
            return
        if d[1] != _NO_ITER and it > d[1] and self._guard("pv-rf-order"):
            self._fail(st, ev, "privatization: ",
                       f"read-first in iteration {it} of element written "
                       f"in earlier iteration {d[1]}", e, p, it)
            return
        snap = self._pv_snap(st, e)
        if it > d[0]:
            d[0] = it
        self._pv_shared_event(ev, e, p, it, "read-first", snap, d)

    def _pv_shared_first_write(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        """Fig 9-(i): FAIL if a higher-numbered iteration already
        read-first."""
        d = st.pv_shared[e]
        if it < d[0] and self._guard("pv-fw-order"):
            self._fail(st, ev, "privatization: ",
                       f"write in iteration {it} of element read-first "
                       f"in later iteration {d[0]}", e, p, it)
            return
        snap = self._pv_snap(st, e)
        if d[1] == _NO_ITER or it < d[1]:
            d[1] = it
        self._pv_shared_event(ev, e, p, it, "first-write", snap, d)

    def _epoch_sync(self, st: MState, ev: List[tuple]) -> None:
        """§3.3 time-stamp overflow synchronization, post-flush: bump
        the epoch, carry writes as ``written_past``, restart the private
        stamps and clear every cached tag (the engine's address-
        qualified tag reset walks all resident lines)."""
        synced = st.epoch
        st.epoch += 1
        for d in st.pv_shared:
            if d[1] != _NO_ITER:
                d[2] = True
            d[0] = 0
            d[1] = _NO_ITER
        for row in st.pv_priv:
            for t in row:
                t[0] = t[1] = 0
        for row in st.pv_line:
            for line in row:
                if line is not None:
                    line[1], line[2], line[3] = False, False, -1
        ev.append((EpochSyncEvent, {"epoch": synced, "flushed_messages": 0}))

    # ==================================================================
    # PRIV_SIMPLE (§4.1, Fig 5-(b))
    # ==================================================================
    def _ps_wrote_before(self, st: MState, p: int, e: int) -> bool:
        """Synchronous write knowledge: the engine's resolve() routes a
        read to the private copy iff this processor already executed a
        write of the element (its ``_sync_written`` set)."""
        return any(w and x == e for (w, x) in st.hist[p][:-1])

    def _ps_access(
        self, st: MState, p: int, j: int, w: int, e: int, ev: List[tuple]
    ) -> None:
        it = self.cfg.virt(p, j)
        if w or self._ps_wrote_before(st, p, e):
            self._ps_private_access(st, p, w, e, it, ev)
        else:
            self._ps_shared_access(st, p, e, it, ev)

    def _ps_private_access(
        self, st: MState, p: int, w: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        line = st.ps_pline[p][e]
        if line is not None:
            # Private lines are created dirty by the first write and are
            # never recalled, so every later routed access hits dirty.
            self._ps_hit(st, p, e, w, it, line, ev)
            return
        # First write to the private copy: write miss, UNCACHED home.
        t = st.ps_priv[p][e]
        _, wrote = self._ps_table_get(t, it)
        if not wrote:
            self._msg_event(ev, "first-write", p, e, it)
            self._send(st, ("L", p), ("LW", p, e, it))
        self._dir_event(ev, e, DirState.UNCACHED, DirState.DIRTY, p,
                        AccessKind.WRITE, copy=p + 1)
        line = [False, False, -1]
        self._ps_fill(st, p, e, it, line)
        st.ps_pline[p][e] = line

    def _ps_shared_access(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        line = st.ps_sline[p][e]
        if line is not None:
            self._ps_hit(st, p, e, 0, it, line, ev, shared_line=True)
            return
        # Read miss on the (loop-wide read-only) shared copy.
        t = st.ps_priv[p][e]
        read1st, wrote = self._ps_table_get(t, it)
        if not read1st and not wrote:
            self._msg_event(ev, "read-first", p, e, it)
            self._send(st, ("L", p), ("LR", p, e, it))
        prev = (DirState.SHARED
                if any(row[e] is not None for row in st.ps_sline)
                else DirState.UNCACHED)
        self._dir_event(ev, e, prev, DirState.SHARED, p, AccessKind.READ)
        line = [False, False, -1]
        self._ps_fill(st, p, e, it, line)
        st.ps_sline[p][e] = line

    def _ps_hit(
        self, st: MState, p: int, e: int, w: int, it: int, line: List,
        ev: List[tuple], shared_line: bool = False,
    ) -> None:
        """Tag check on a hit; ``line`` is ``[r1st, write, tag_iter]``
        for shared-copy lines and ``ps_pline`` private lines alike (the
        private line's dirty coherence state is implicit)."""
        if line[2] == it:
            read1st, wrote = line[0], line[1]
        else:
            read1st, wrote = False, False
        if not w:
            if not read1st and not wrote:
                if line[2] != it:
                    line[0] = line[1] = False
                    line[2] = it
                line[0] = True
                self._msg_event(ev, "read-first", p, e, it)
                self._send(st, ("L", p), ("LR", p, e, it))
        else:
            if not wrote:
                if line[2] != it:
                    line[0] = line[1] = False
                    line[2] = it
                line[1] = True
                self._msg_event(ev, "first-write", p, e, it)
                self._send(st, ("L", p), ("LW", p, e, it))

    @staticmethod
    def _ps_table_get(t: List, it: int) -> Tuple[bool, bool]:
        if t[2] == it:
            return t[0], t[1]
        return False, False

    @staticmethod
    def _ps_table_set(t: List, it: int, read1st: bool = False, write: bool = False) -> None:
        if t[2] != it:
            t[0] = t[1] = False
            t[2] = it
        if read1st:
            t[0] = True
        if write:
            t[1] = True
            t[3] = True

    def _ps_fill(self, st: MState, p: int, e: int, it: int, line: List) -> None:
        read1st, wrote = self._ps_table_get(st.ps_priv[p][e], it)
        if read1st or wrote:
            line[0], line[1], line[2] = read1st, wrote, it
        else:
            line[0], line[1], line[2] = False, False, -1

    def _ps_private_read(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        """Private home receives a read-first signal."""
        t = st.ps_priv[p][e]
        read1st, wrote = self._ps_table_get(t, it)
        if wrote or read1st:
            return
        if t[3] and self._guard("ps-local-wany"):
            self._fail(st, ev, "privatization-simple: ",
                       "read-first of element written in an earlier "
                       "iteration (local WriteAny)", e, p, it)
            return
        self._ps_table_set(t, it, read1st=True)
        self._send(st, ("S", p), ("SR", p, e, it))

    def _ps_private_write(
        self, st: MState, p: int, e: int, it: int, ev: List[tuple]
    ) -> None:
        """Private home receives a first-write signal."""
        t = st.ps_priv[p][e]
        _, wrote = self._ps_table_get(t, it)
        if wrote:
            return
        was_any = t[3]
        self._ps_table_set(t, it, write=True)
        if not was_any:
            self._send(st, ("S", p), ("SW", p, e, it))

    def _ps_shared_update(
        self, st: MState, p: int, e: int, it: int, is_write: bool,
        ev: List[tuple],
    ) -> None:
        d = st.ps_shared[e]
        snap = (d[0], d[1])
        if is_write:
            d[1] = True
            if d[0] and self._guard("ps-shared-write"):
                self._fail(st, ev, "privatization-simple: ",
                           "element both read-first and written "
                           "(AnyW after AnyR1st)", e, p, it)
        else:
            d[0] = True
            if d[1] and self._guard("ps-shared-read"):
                self._fail(st, ev, "privatization-simple: ",
                           "element both read-first and written "
                           "(AnyR1st after AnyW)", e, p, it)
        # The engine snapshots before the check and emits after it, so
        # the update event trails the failure event on the FAIL path.
        if (d[0], d[1]) != snap:
            ev.append((PrivSimpleDirUpdateEvent, {
                "array": ARRAY, "index": e, "proc": p, "iteration": it,
                "cause": "write" if is_write else "read-first",
                "prev_any_r1st": snap[0], "prev_any_w": snap[1],
                "any_r1st": d[0], "any_w": d[1],
            }))

    def _ps_shared_read(self, st: MState, p: int, e: int, it: int, ev: List[tuple]) -> None:
        self._ps_shared_update(st, p, e, it, False, ev)

    def _ps_shared_write(self, st: MState, p: int, e: int, it: int, ev: List[tuple]) -> None:
        self._ps_shared_update(st, p, e, it, True, ev)

    # ==================================================================
    # Canonical hashing and symmetry reduction
    # ==================================================================
    @property
    def symmetric(self) -> bool:
        """Processor permutations are a sound reduction only when the
        processors are interchangeable: free programs and a cold root.
        The PRIV shared stamps aggregate (min/max) *across* processors,
        which a pointwise value remap cannot reproduce, so PRIV always
        explores un-reduced."""
        return (
            self.cfg.programs is None
            and not self.cfg.warm
            and self.cfg.protocol is not ProtocolKind.PRIV
        )

    def canon(self, st: MState) -> tuple:
        """Canonical hash key: the minimum frozen encoding over the
        sound processor permutations (identity only when asymmetric)."""
        if not self.symmetric:
            return self._freeze(st, None)
        return min(
            self._freeze(st, perm)
            for perm in itertools.permutations(range(self.cfg.procs))
        )

    def _remap_virt(self, v: int, perm: Sequence[int]) -> int:
        """Remap a virtual-iteration value owned by one processor under
        a processor permutation (contiguous numbering; the symmetric
        protocols never run round-robin)."""
        if v <= 0:
            return v
        I = self.cfg.iters
        return perm[(v - 1) // I] * I + (v - 1) % I + 1

    def _freeze(self, st: MState, perm: Optional[Sequence[int]]) -> tuple:
        cfg = self.cfg
        P = cfg.procs
        idx = list(range(P)) if perm is None else [perm.index(p) for p in range(P)]
        # idx[q] = source processor whose data lands in slot q

        def rv(v: int) -> int:
            return v if perm is None else self._remap_virt(v, perm)

        def rp(p):
            return p if (perm is None or p is None or p < 0) else perm[p]

        pos = tuple(st.pos[idx[q]] for q in range(P))
        hist = tuple(st.hist[idx[q]] for q in range(P))
        failure = st.failure
        if failure is not None:
            failure = (failure[0], failure[1], rp(failure[2]),
                       rv(failure[3]) if failure[3] else failure[3])
        msgs = tuple(sorted(
            (
                (chan[0], rp(chan[1])),
                tuple(
                    (m[0], rp(m[1]), m[2]) + tuple(rv(x) for x in m[3:])
                    for m in queue
                ),
            )
            for chan, queue in st.msgs.items()
        ))
        body: tuple
        if cfg.protocol is ProtocolKind.NONPRIV:
            npd = tuple((rp(d[0]), d[1], d[2]) for d in st.np_dir)
            npl = tuple(
                tuple(None if c is None else tuple(c)
                      for c in st.np_line[idx[q]])
                for q in range(P)
            )
            body = (npd, npl)
        elif cfg.protocol is ProtocolKind.PRIV:
            pvs = tuple(tuple(d) for d in st.pv_shared)
            pvp = tuple(tuple(tuple(t) for t in row) for row in st.pv_priv)
            pvl = tuple(
                tuple(
                    None if c is None
                    else (c[0], c[1], c[2],
                          # a tag whose iteration already passed can
                          # never read valid again: normalize it away
                          -1 if c[3] != -1 and c[3] < self._pv_next_eff(st, q)
                          else c[3])
                    for c in row
                )
                for q, row in enumerate(st.pv_line)
            )
            body = (pvs, pvp, pvl)
        else:
            pss = tuple(tuple(d) for d in st.ps_shared)
            psp = tuple(
                tuple((t[0], t[1], rv(t[2]) if t[2] > 0 else t[2], t[3])
                      for t in st.ps_priv[idx[q]])
                for q in range(P)
            )

            def norm_line(c, src):
                if c is None:
                    return None
                stale = c[2] != -1 and c[2] < self._ps_next_virt(st, src)
                if stale:
                    return (False, False, -1)
                return (c[0], c[1], rv(c[2]) if c[2] > 0 else c[2])

            psl = tuple(
                tuple(norm_line(c, idx[q]) for c in st.ps_pline[idx[q]])
                for q in range(P)
            )
            pssl = tuple(
                tuple(norm_line(c, idx[q]) for c in st.ps_sline[idx[q]])
                for q in range(P)
            )
            body = (pss, psp, psl, pssl)
        return (st.status, failure, st.epoch, pos, hist, msgs, body)

    def _pv_next_eff(self, st: MState, p: int) -> int:
        slot = self._next_slot(st, p)
        if slot is None:
            return 1 << 62
        return self.cfg.eff(self.cfg.virt(p, slot[0]))

    def _ps_next_virt(self, st: MState, p: int) -> int:
        slot = self._next_slot(st, p)
        if slot is None:
            return 1 << 62
        return self.cfg.virt(p, slot[0])
