"""Exhaustive small-config model checking of the speculation protocols.

The package expresses the NONPRIV, PRIV and PRIV_SIMPLE state machines
of the paper (Figs 6-9 plus the reduced variant of §4.1) as explicit
guarded transitions over per-element access-bit state, derived
directory state and a pending-message multiset, then explores *all*
interleavings (and, in free-program mode, all programs) of tiny
configurations by BFS with canonical state hashing and symmetry
reduction over processor permutations.

Every reachable terminal state is cross-checked four ways:

* against the iteration-serial predicate each protocol decides
  (:func:`repro.lrpd.analysis.serial_access_verdict`);
* against the dependence oracle (:mod:`repro.trace.oracle`);
* against the online invariant monitors (:mod:`repro.obs.monitor`),
  by replaying the witness transition trace through a fresh event bus;
* against the real scalar engine run on the equivalent concrete
  schedule, compared through the differential harness's verdict
  signature (:mod:`repro.testing.diffcheck`).

Any divergence is minimized and emitted as a standalone reproducer in
the style of :mod:`repro.obs.forensics`.  See ``docs/correctness.md``.
"""

from .crosscheck import CheckReport, check_config
from .explorer import ExploreResult, explore
from .model import ModelConfig, ProtocolModel
from .reproduce import DivergenceReport

__all__ = [
    "CheckReport",
    "DivergenceReport",
    "ExploreResult",
    "ModelConfig",
    "ProtocolModel",
    "check_config",
    "explore",
]
