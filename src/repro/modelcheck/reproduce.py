"""Divergence reports with minimized standalone reproducers.

When a cross-check disagrees with the model — the serial predicate, the
dependence oracle, a monitor replay or the concrete engine run — the
divergence is packaged in the style of
:class:`repro.obs.forensics.ForensicReport`: what was expected, what
was observed, the per-processor program, the interleaving (action
trace) that reached the state, and a **minimized reproducer**: the
smallest access subset (iteration structure preserved) whose
fixed-program exploration still shows a divergence.  The minimized
program is re-checked, so ``minimized_reproduces`` is ground truth, not
hope.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

from ..types import ProtocolKind
from .model import Access, ModelConfig

__all__ = ["DivergenceReport", "minimize_programs"]

Programs = Tuple[Tuple[Tuple[Access, ...], ...], ...]


def _strip(programs: Programs, flat_index: int) -> Programs:
    """Remove the ``flat_index``-th access (program order across
    processors, then iterations) keeping the iteration structure."""
    k = 0
    out: List[Tuple[Tuple[Access, ...], ...]] = []
    for body in programs:
        new_body: List[Tuple[Access, ...]] = []
        for it in body:
            new_it: List[Access] = []
            for acc in it:
                if k != flat_index:
                    new_it.append(acc)
                k += 1
            new_body.append(tuple(new_it))
        out.append(tuple(new_body))
    return tuple(out)


def _size(programs: Programs) -> int:
    return sum(len(it) for body in programs for it in body)


def minimize_programs(
    programs: Programs,
    still_diverges: Callable[[Programs], bool],
) -> Programs:
    """Greedy one-at-a-time access removal (ddmin-lite): repeatedly try
    dropping each access and keep any removal under which
    ``still_diverges`` holds, until a fixed point.  The caller's
    predicate re-runs the exploration and cross-checks, so the result
    provably still reproduces."""
    current = programs
    changed = True
    while changed:
        changed = False
        i = 0
        while i < _size(current):
            candidate = _strip(current, i)
            if still_diverges(candidate):
                current = candidate
                changed = True
            else:
                i += 1
    return current


def _fmt_programs(programs: Programs) -> List[str]:
    lines = []
    for p, body in enumerate(programs):
        its = []
        for j, it in enumerate(body, start=1):
            ops = " ".join(f"{'W' if w else 'R'}{e}" for (w, e) in it)
            its.append(f"it{j}[{ops or '-'}]")
        lines.append(f"P{p}: " + (" ".join(its) or "(empty)"))
    return lines


@dataclasses.dataclass
class DivergenceReport:
    """One cross-check disagreement, minimized and replayable."""

    #: which cross-check disagreed: "facts", "oracle", "monitor", "engine"
    kind: str
    protocol: str
    #: the exploration configuration (size knobs, root, faults)
    config: dict
    #: one-line statement of the disagreement
    detail: str
    expected: object
    observed: object
    #: the per-processor program of the divergent terminal state
    programs: Programs
    #: the interleaving (action labels) that reached the state
    actions: Tuple[str, ...]
    #: the model's failure attribution, if it failed
    failure: Optional[tuple] = None
    #: monitor violations (stringified), for kind="monitor"
    violations: Tuple[str, ...] = ()
    #: the engine's diffcheck verdict signature, for kind="engine"
    verdict: Optional[dict] = None
    #: minimized access subset that still diverges
    minimized: Optional[Programs] = None
    minimized_reproduces: Optional[bool] = None

    # ------------------------------------------------------------------
    def minimize(self, still_diverges: Callable[[Programs], bool]) -> None:
        self.minimized = minimize_programs(self.programs, still_diverges)
        self.minimized_reproduces = bool(still_diverges(self.minimized))

    def reproducer_config(self) -> ModelConfig:
        """A fixed-program :class:`ModelConfig` replaying the minimized
        (or original) divergent program — the standalone reproducer."""
        cfg = dict(self.config)
        return ModelConfig(
            protocol=ProtocolKind(self.protocol),
            procs=cfg["procs"],
            elements=cfg["elements"],
            iters=cfg["iters"],
            ops_per_iter=cfg["ops_per_iter"],
            timestamp_bits=cfg.get("timestamp_bits"),
            warm=cfg.get("warm", False),
            programs=self.minimized or self.programs,
            faults=frozenset(cfg.get("faults", ())),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "protocol": self.protocol,
            "config": dict(self.config),
            "detail": self.detail,
            "expected": self.expected,
            "observed": self.observed,
            "programs": [
                [[list(a) for a in it] for it in body] for body in self.programs
            ],
            "actions": list(self.actions),
            "failure": list(self.failure) if self.failure else None,
            "violations": list(self.violations),
            "verdict": self.verdict,
            "minimized": (
                [[[list(a) for a in it] for it in body] for body in self.minimized]
                if self.minimized is not None
                else None
            ),
            "minimized_reproduces": self.minimized_reproduces,
        }

    def to_text(self) -> str:
        lines = [
            f"== modelcheck divergence: {self.kind} ({self.protocol}) ==",
            f"detail: {self.detail}",
            f"expected: {self.expected!r}   observed: {self.observed!r}",
            "config: " + ", ".join(f"{k}={v}" for k, v in sorted(self.config.items())),
            "program:",
        ]
        lines += ["  " + s for s in _fmt_programs(self.programs)]
        if self.failure is not None:
            lines.append(f"model failure: {self.failure}")
        if self.violations:
            lines.append(f"monitor violations ({len(self.violations)}):")
            lines += [f"  {v}" for v in self.violations[:8]]
        if self.verdict is not None:
            lines.append(f"engine verdict: {self.verdict}")
        if self.actions:
            lines.append(f"interleaving ({len(self.actions)} steps):")
            lines.append("  " + " -> ".join(self.actions))
        if self.minimized is not None:
            status = {
                True: "re-diverges",
                False: "does NOT re-diverge",
                None: "unvalidated",
            }[self.minimized_reproduces]
            lines.append(f"minimized reproducer ({_size(self.minimized)} accesses, {status}):")
            lines += ["  " + s for s in _fmt_programs(self.minimized)]
        return "\n".join(lines)
