"""The ``modelcheck`` command-line verb.

Usage::

    python -m repro modelcheck --protocol priv --procs 2 --elements 2
    python -m repro modelcheck --protocol all --json-out report.json
    python -m repro modelcheck --protocol priv --timestamp-bits 2 --iters 2

One exhaustive exploration plus four-way cross-check
(:func:`repro.modelcheck.check_config`) runs per selected
``(protocol, root)`` pair: every protocol picked by ``--protocol``,
the cold root always, and additionally the warm root for NONPRIV when
``--roots`` asks for it.  The exit status is the number of divergent
configurations (0 = every reachable terminal state agreed with the
serial predicate, the monitors, the dependence oracle and the scalar
engine).

The JSON report mirrors the run ledger's style: per-config state and
transition counts plus divergence details, stamped with the SHA-256
fingerprint of its own canonical rendering
(:func:`repro.obs.provenance.fingerprint`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from ..obs.provenance import fingerprint
from ..types import ProtocolKind
from .crosscheck import CheckReport, check_config
from .model import ModelConfig

__all__ = ["main"]

_PROTOCOLS = {
    "nonpriv": ProtocolKind.NONPRIV,
    "priv": ProtocolKind.PRIV,
    "priv-simple": ProtocolKind.PRIV_SIMPLE,
    # underscore spelling accepted for shell convenience
    "priv_simple": ProtocolKind.PRIV_SIMPLE,
}


def _configs(args: argparse.Namespace) -> List[ModelConfig]:
    if args.protocol == "all":
        protocols = [
            ProtocolKind.NONPRIV, ProtocolKind.PRIV, ProtocolKind.PRIV_SIMPLE
        ]
    else:
        protocols = [_PROTOCOLS[args.protocol]]
    faults = frozenset(args.fault or ())
    configs: List[ModelConfig] = []
    for protocol in protocols:
        ts: Optional[int] = (
            args.timestamp_bits if protocol is ProtocolKind.PRIV else None
        )
        roots = [False]
        if protocol is ProtocolKind.NONPRIV and args.roots in ("warm", "both"):
            roots = [True] if args.roots == "warm" else [False, True]
        for warm in roots:
            configs.append(
                ModelConfig(
                    protocol=protocol,
                    procs=args.procs,
                    elements=args.elements,
                    iters=args.iters,
                    ops_per_iter=args.ops,
                    timestamp_bits=ts,
                    warm=warm,
                    faults=faults,
                )
            )
    return configs


def _summary_line(report: CheckReport, elapsed: float) -> str:
    cfg = report.config
    root = "warm" if cfg.warm else "cold"
    ts = f" ts={cfg.timestamp_bits}" if cfg.timestamp_bits else ""
    verdict = "OK" if report.ok else f"DIVERGED({len(report.divergences)})"
    trunc = " TRUNCATED" if report.truncated else ""
    return (
        f"{cfg.protocol.value:12s} {root}{ts}  "
        f"states={report.states} transitions={report.transitions} "
        f"terminals={report.terminals} (done={report.done} "
        f"failed={report.failed}) programs={report.programs} "
        f"engine={report.engine_runs}run/{report.engine_skipped}skip  "
        f"{verdict}{trunc} [{elapsed:.1f}s]"
    )


def main(argv: "List[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro modelcheck",
        description="Exhaustively model-check the speculation protocols "
        "on tiny configurations and cross-check every reachable terminal "
        "state against the serial predicate, the online monitors, the "
        "dependence oracle and the scalar engine.",
    )
    parser.add_argument(
        "--protocol", default="all",
        choices=("nonpriv", "priv", "priv-simple", "priv_simple", "all"),
        help="which speculation protocol(s) to check",
    )
    parser.add_argument("--procs", type=int, default=2,
                        help="number of processors (2-3 is exhaustive-sized)")
    parser.add_argument("--elements", type=int, default=2,
                        help="array elements (2-4)")
    parser.add_argument("--iters", type=int, default=1,
                        help="iterations per processor")
    parser.add_argument("--ops", type=int, default=2,
                        help="accesses per iteration (free-program mode "
                        "enumerates all read/write x element choices)")
    parser.add_argument(
        "--timestamp-bits", type=int, default=None,
        help="PRIV only: time-stamp width; switches the priv config to "
        "the round-robin (BLOCK_CYCLIC) numbering with epoch syncs",
    )
    parser.add_argument(
        "--roots", default="cold", choices=("cold", "warm", "both"),
        help="NONPRIV root state(s): cold caches, warm (pre-shared "
        "lines, exercises the First/ROnly update races), or both",
    )
    parser.add_argument(
        "--max-states", type=int, default=None,
        help="truncate the exploration at this many states (flagged in "
        "the report; tier-1 configs never need it)",
    )
    parser.add_argument(
        "--engine-cap", type=int, default=200,
        help="max concrete scalar-engine runs per config (0 = no cap; "
        "programs are deduplicated first)",
    )
    parser.add_argument("--no-engine", action="store_true",
                        help="skip the concrete engine cross-check")
    parser.add_argument("--no-minimize", action="store_true",
                        help="report divergences without minimizing them")
    parser.add_argument(
        "--fault", action="append", default=None, metavar="NAME",
        help="disable the named FAIL guard (repeatable; test-only — "
        "the cross-checks must then catch the seeded bug)",
    )
    parser.add_argument("--json-out", default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)

    reports: List[dict] = []
    total_div = 0
    for config in _configs(args):
        start = time.perf_counter()
        report = check_config(
            config,
            max_states=args.max_states,
            engine=not args.no_engine,
            engine_cap=args.engine_cap or None,
            minimize=not args.no_minimize,
        )
        elapsed = time.perf_counter() - start
        print(_summary_line(report, elapsed))
        for div in report.divergences:
            print()
            print(div.to_text())
        total_div += len(report.divergences)
        payload = report.to_dict()
        payload["elapsed_seconds"] = round(elapsed, 3)
        reports.append(payload)

    document = {
        "command": "modelcheck",
        "ok": total_div == 0,
        "divergences": total_div,
        "reports": reports,
    }
    document["fingerprint"] = fingerprint(document)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json_out} "
              f"(fingerprint {document['fingerprint'][:12]})")
    print(
        ("all configurations agree" if total_div == 0
         else f"{total_div} divergence(s) found")
        + f" across {len(reports)} configuration(s)"
    )
    return min(total_div, 125)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
