"""Cross-check every reachable terminal state of a model four ways.

For each terminal state of an exploration (:mod:`.explorer`):

1. **facts** — the model's verdict must equal the pure iteration-serial
   predicate (:func:`repro.lrpd.analysis.serial_access_verdict`) on the
   executed program (the prefix, for FAILed runs — the predicates are
   monotone over prefixes, so a detected violation is already visible
   in the executed accesses);
2. **monitor** — the witness event trace replayed through the online
   invariant monitors (:mod:`repro.obs.monitor`) on a fresh event bus
   must produce zero violations;
3. **oracle** — per distinct program, the dependence oracle
   (:mod:`repro.trace.oracle`) on the equivalent concrete loop must
   agree: processor-wise ``is_doall`` for NONPRIV, ``is_priv_rico``
   for PRIV (max read-first vs min write), ``is_privatizable`` for
   PRIV_SIMPLE;
4. **engine** — per distinct program (deduplicated, optionally
   capped), the real scalar engine run on the equivalent concrete
   schedule must reach the same pass/fail verdict; disagreements are
   recorded with the differential harness's verdict signature
   (:mod:`repro.testing.diffcheck`).

The equivalent concrete schedule: contiguous virtual numbering is
``STATIC_CHUNK`` + iteration-wise virtuals; round-robin (time-stamped
PRIV) is ``BLOCK_CYCLIC`` with one-iteration chunks + chunk-wise
virtuals.  Engine runs use one-element cache lines and caches big
enough to never evict — the regime the model describes.  Cold-root
NONPRIV programs that write are skipped (counted): a concrete run
would back up the written array, which warms the caches into the warm
root's regime instead.

Any disagreement becomes a :class:`repro.modelcheck.reproduce.
DivergenceReport`, minimized by re-exploration until the access subset
no longer diverges.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..lrpd.analysis import serial_access_verdict
from ..obs.bus import EventBus
from ..obs.events import RunStartEvent
from ..obs.monitor import (
    CoherenceMonitor,
    NonPrivMonitor,
    PrivMonitor,
    PrivSimpleMonitor,
)
from ..params import CacheGeometry, small_test_params
from ..runtime.driver import RunConfig, run_hw
from ..runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from ..testing.diffcheck import result_signature, verdict_signature
from ..trace.loop import ArraySpec, Loop
from ..trace.ops import read, write
from ..trace.oracle import DependenceOracle
from ..types import ProtocolKind
from .explorer import explore
from .model import ARRAY, DONE, FAILED, ModelConfig
from .reproduce import DivergenceReport, Programs

__all__ = ["CheckReport", "check_config"]


# ----------------------------------------------------------------------
# Program -> rows / loop / oracle
# ----------------------------------------------------------------------
def program_rows(cfg: ModelConfig, programs: Programs) -> List[Tuple[int, int, int, int]]:
    """``(proc, virt, elem, is_write)`` rows in per-processor program
    order, for :func:`serial_access_verdict`."""
    rows = []
    for p, body in enumerate(programs):
        for j, it in enumerate(body, start=1):
            v = cfg.virt(p, j)
            for (w, e) in it:
                rows.append((p, v, e, w))
    return rows


def program_loop(
    cfg: ModelConfig, programs: Programs, name: str, modified: bool = True
) -> Loop:
    """The concrete loop equivalent to ``programs``: iterations laid
    out in virtual-iteration order, so the equivalent schedule deals
    iteration ``v`` to processor ``cfg.proc_of_virt(v)``."""
    iterations: List[List[object]] = [[] for _ in range(cfg.procs * cfg.iters)]
    for p, body in enumerate(programs):
        for j, it in enumerate(body, start=1):
            iterations[cfg.virt(p, j) - 1] = [
                write(ARRAY, e) if w else read(ARRAY, e) for (w, e) in it
            ]
    spec = ArraySpec(
        ARRAY, cfg.elements, elem_bytes=8, protocol=cfg.protocol, modified=modified
    )
    return Loop(name, [spec], iterations)


def oracle_passes(cfg: ModelConfig, loop: Loop) -> bool:
    """What the dependence oracle says the protocol's verdict must be."""
    if cfg.protocol is ProtocolKind.NONPRIV:
        imap = {
            g: cfg.proc_of_virt(g) + 1 for g in range(1, loop.num_iterations + 1)
        }
        return DependenceOracle(loop, imap).analyze().arrays[ARRAY].is_doall
    verdict = DependenceOracle(loop).analyze().arrays[ARRAY]
    if cfg.protocol is ProtocolKind.PRIV:
        return verdict.is_priv_rico
    return verdict.is_privatizable


# ----------------------------------------------------------------------
# Monitor replay
# ----------------------------------------------------------------------
def replay_monitors(cfg: ModelConfig, events: List[object], failed: bool) -> List[object]:
    """Replay a witness trace through the online monitors on a fresh
    bus; returns the violations (empty on a clean protocol)."""
    bus = EventBus()
    monitors = [CoherenceMonitor()]
    if cfg.protocol is ProtocolKind.NONPRIV:
        monitors.append(NonPrivMonitor())
    elif cfg.protocol is ProtocolKind.PRIV:
        monitors.append(PrivMonitor())
    else:
        monitors.append(PrivSimpleMonitor())
    for m in monitors:
        m.subscribe(bus)
    bus.emit(RunStartEvent(0.0, "modelcheck", "modelcheck", cfg.procs))
    for event in events:
        bus.emit(event)
    violations: List[object] = []
    for m in monitors:
        m.finish(failed)
        violations.extend(m.take_violations())
    return violations


# ----------------------------------------------------------------------
# Engine run on the equivalent concrete schedule
# ----------------------------------------------------------------------
def _engine_schedule(cfg: ModelConfig) -> ScheduleSpec:
    if cfg.round_robin:
        return ScheduleSpec(
            policy=SchedulePolicy.BLOCK_CYCLIC,
            chunk_iterations=1,
            virtual_mode=VirtualMode.CHUNK,
        )
    return ScheduleSpec(
        policy=SchedulePolicy.STATIC_CHUNK,
        virtual_mode=VirtualMode.ITERATION,
    )


def engine_run(cfg: ModelConfig, loop: Loop):
    """Scalar-engine run of the equivalent concrete configuration:
    one element per line, nothing ever evicted."""
    params = dataclasses.replace(
        small_test_params(cfg.procs),
        l1=CacheGeometry(1024, 8),
        l2=CacheGeometry(4096, 8),
    )
    config = RunConfig(
        schedule=_engine_schedule(cfg),
        engine="scalar",
        timestamp_bits=cfg.timestamp_bits,
    )
    return run_hw(loop, params, config)


def _writes(programs: Programs) -> bool:
    return any(w for body in programs for it in body for (w, _) in it)


def _engine_modified(cfg: ModelConfig, programs: Programs) -> Optional[bool]:
    """The ``modified`` flag of the engine loop, or ``None`` when no
    equivalent concrete run exists (cold NONPRIV with writes: the
    engine would back the array up, warming the caches)."""
    if cfg.protocol is not ProtocolKind.NONPRIV:
        return True
    if cfg.warm:
        return True
    return None if _writes(programs) else False


# ----------------------------------------------------------------------
# The full check
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CheckReport:
    """Aggregate result of one exhaustively cross-checked config."""

    config: ModelConfig
    states: int
    transitions: int
    terminals: int
    done: int
    failed: int
    #: distinct terminal programs (the dedup unit for oracle/engine)
    programs: int
    engine_runs: int
    engine_skipped: int
    max_depth: int
    truncated: bool
    symmetry: bool
    divergences: List[DivergenceReport]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        cfg = self.config
        return {
            "protocol": cfg.protocol.value,
            "procs": cfg.procs,
            "elements": cfg.elements,
            "iters": cfg.iters,
            "ops_per_iter": cfg.ops_per_iter,
            "timestamp_bits": cfg.timestamp_bits,
            "root": "warm" if cfg.warm else "cold",
            "faults": sorted(cfg.faults),
            "states": self.states,
            "transitions": self.transitions,
            "terminals": self.terminals,
            "done": self.done,
            "failed": self.failed,
            "programs": self.programs,
            "engine_runs": self.engine_runs,
            "engine_skipped": self.engine_skipped,
            "max_depth": self.max_depth,
            "truncated": self.truncated,
            "symmetry": self.symmetry,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def _config_desc(cfg: ModelConfig) -> dict:
    return {
        "procs": cfg.procs,
        "elements": cfg.elements,
        "iters": cfg.iters,
        "ops_per_iter": cfg.ops_per_iter,
        "timestamp_bits": cfg.timestamp_bits,
        "warm": cfg.warm,
        "faults": sorted(cfg.faults),
    }


def _still_diverges(
    base: ModelConfig, programs: Programs, with_engine: bool
) -> bool:
    """Does the fixed-program exploration of ``programs`` still show
    *any* facts/monitor/oracle (and optionally engine) divergence?
    The minimizer's re-test predicate."""
    cfg = dataclasses.replace(base, programs=programs)
    result = explore(cfg)
    seen: set = set()
    for key in result.terminals:
        st = result.nodes[key].state
        executed = result.program_of(key)
        facts = serial_access_verdict(cfg.protocol, program_rows(cfg, executed))
        if facts != (st.status == DONE):
            return True
        if replay_monitors(cfg, result.witness(key), st.status == FAILED):
            return True
        if executed in seen:
            continue
        seen.add(executed)
        loop = program_loop(cfg, executed, "modelcheck-min")
        if oracle_passes(cfg, loop) != facts:
            return True
        if with_engine:
            modified = _engine_modified(cfg, executed)
            if modified is not None:
                engine_loop = (
                    loop
                    if modified
                    else program_loop(cfg, executed, "modelcheck-min", modified=False)
                )
                if engine_run(cfg, engine_loop).passed != facts:
                    return True
    return False


def check_config(
    config: ModelConfig,
    max_states: Optional[int] = None,
    engine: bool = True,
    engine_cap: Optional[int] = None,
    minimize: bool = True,
    max_divergences: int = 10,
) -> CheckReport:
    """Exhaustively explore ``config`` and cross-check every terminal.

    ``engine_cap`` bounds the number of concrete engine runs (dedup by
    program happens first); ``max_divergences`` stops the scan early
    once that many disagreements are collected (each still minimized
    unless ``minimize=False``).
    """
    result = explore(config, max_states=max_states)
    desc = _config_desc(config)
    divergences: List[DivergenceReport] = []
    done = failed = 0
    engine_runs = engine_skipped = 0
    seen_programs: set = set()

    def diverge(kind: str, key: tuple, detail: str, expected, observed,
                violations=(), verdict=None) -> None:
        node = result.nodes[key]
        report = DivergenceReport(
            kind=kind,
            protocol=config.protocol.value,
            config=desc,
            detail=detail,
            expected=expected,
            observed=observed,
            programs=result.program_of(key),
            actions=tuple(result.actions(key)),
            failure=node.state.failure,
            violations=tuple(str(v) for v in violations),
            verdict=verdict,
        )
        if minimize:
            report.minimize(
                lambda progs: _still_diverges(config, progs, kind == "engine")
            )
        divergences.append(report)

    for key in result.terminals:
        st = result.nodes[key].state
        is_done = st.status == DONE
        if is_done:
            done += 1
        else:
            failed += 1
        if len(divergences) >= max_divergences:
            continue
        programs = result.program_of(key)
        facts = serial_access_verdict(config.protocol, program_rows(config, programs))
        if facts != is_done:
            diverge(
                "facts", key,
                "model verdict disagrees with the iteration-serial predicate",
                expected="pass" if facts else "fail",
                observed="pass" if is_done else "fail",
            )
            continue
        violations = replay_monitors(config, result.witness(key), not is_done)
        if violations:
            diverge(
                "monitor", key,
                "witness trace raises monitor violations",
                expected=0, observed=len(violations), violations=violations,
            )
            continue
        if programs in seen_programs:
            continue
        seen_programs.add(programs)
        loop = program_loop(config, programs, "modelcheck")
        opass = oracle_passes(config, loop)
        if opass != facts:
            diverge(
                "oracle", key,
                "dependence oracle disagrees with the model verdict",
                expected="pass" if facts else "fail",
                observed="pass" if opass else "fail",
            )
            continue
        if not engine:
            continue
        modified = _engine_modified(config, programs)
        if modified is None or (engine_cap is not None and engine_runs >= engine_cap):
            engine_skipped += 1
            continue
        engine_loop = (
            loop if modified else program_loop(config, programs, "modelcheck", modified=False)
        )
        engine_result = engine_run(config, engine_loop)
        engine_runs += 1
        if engine_result.passed != facts:
            diverge(
                "engine", key,
                "scalar engine verdict disagrees with the model",
                expected="pass" if facts else "fail",
                observed="pass" if engine_result.passed else "fail",
                verdict=verdict_signature(result_signature(engine_result)),
            )
    return CheckReport(
        config=config,
        states=result.states,
        transitions=result.transitions,
        terminals=len(result.terminals),
        done=done,
        failed=failed,
        programs=len(seen_programs),
        engine_runs=engine_runs,
        engine_skipped=engine_skipped,
        max_depth=result.max_depth,
        truncated=result.truncated,
        symmetry=result.symmetry,
        divergences=divergences,
    )
