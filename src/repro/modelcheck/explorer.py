"""Breadth-first exhaustive exploration of a protocol model.

States are deduplicated by their canonical hash key
(:meth:`repro.modelcheck.model.ProtocolModel.canon`), which folds the
sound processor permutations into one representative.  The *stored*
state for each key is always the first concrete representative
encountered, and successors are always expanded from it — so every
stored edge connects two concrete, engine-realizable states and the
parent-chain walk reconstructs a genuine execution (a witness trace)
for any reachable state.

Terminal states are the runs that finished: ``DONE`` (commit succeeded)
or ``FAILED`` (a protocol guard fired).  A ``max_states`` cap turns an
exhaustive run into a truncated one, flagged in the result; the tier-1
configurations are small enough to never truncate.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, List, Optional, Tuple

from .model import DONE, FAILED, Access, ModelConfig, MState, ProtocolModel

__all__ = ["ExploreResult", "Node", "explore"]


@dataclasses.dataclass
class Node:
    """One canonical state plus the BFS tree edge that first reached it."""

    state: MState
    depth: int
    parent: Optional[tuple]
    action: Optional[str]
    #: timeless ``(EventClass, kwargs)`` pairs emitted on the in-edge
    events: Tuple[tuple, ...]


@dataclasses.dataclass
class ExploreResult:
    """Outcome of one exhaustive (or capped) exploration."""

    config: ModelConfig
    nodes: Dict[tuple, Node]
    #: canonical keys of terminal states (DONE or FAILED)
    terminals: List[tuple]
    transitions: int
    max_depth: int
    truncated: bool
    symmetry: bool

    @property
    def states(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    def witness(self, key: tuple) -> List[object]:
        """Instantiate the event trace of the BFS path reaching ``key``,
        stamping each event with the depth of the edge that emitted it
        (a strictly increasing pseudo-clock, good enough for the
        monitors' ordering expectations)."""
        edges: List[Node] = []
        cur: Optional[tuple] = key
        while cur is not None:
            node = self.nodes[cur]
            edges.append(node)
            cur = node.parent
        edges.reverse()
        out: List[object] = []
        for node in edges:
            for cls, kwargs in node.events:
                out.append(cls(time=float(node.depth), **kwargs))
        return out

    def actions(self, key: tuple) -> List[str]:
        """The action labels along the BFS path reaching ``key``."""
        labels: List[str] = []
        cur: Optional[tuple] = key
        while cur is not None:
            node = self.nodes[cur]
            if node.action is not None:
                labels.append(node.action)
            cur = node.parent
        labels.reverse()
        return labels

    def program_of(self, key: tuple) -> Tuple[Tuple[Tuple[Access, ...], ...], ...]:
        """The per-processor program (accesses grouped by iteration)
        that the state at ``key`` executed.  For a FAILED state this is
        the executed *prefix* — exactly the program whose concrete run
        the engine cross-check replays."""
        st = self.nodes[key].state
        cfg = self.config
        programs: List[Tuple[Tuple[Access, ...], ...]] = []
        for p in range(cfg.procs):
            accesses = st.hist[p]
            if cfg.programs is not None:
                shape = [len(body) for body in cfg.programs[p]]
            else:
                shape = [cfg.ops_per_iter] * cfg.iters
            body: List[Tuple[Access, ...]] = []
            taken = 0
            for n in shape:
                if taken >= len(accesses):
                    break
                body.append(tuple(accesses[taken:taken + n]))
                taken += n
            programs.append(tuple(body))
        return tuple(programs)


def explore(
    config_or_model: "ModelConfig | ProtocolModel",
    max_states: Optional[int] = None,
) -> ExploreResult:
    """Exhaustively enumerate the reachable states of a model by BFS."""
    model = (
        config_or_model
        if isinstance(config_or_model, ProtocolModel)
        else ProtocolModel(config_or_model)
    )
    root = model.initial_state()
    root_key = model.canon(root)
    nodes: Dict[tuple, Node] = {
        root_key: Node(state=root, depth=0, parent=None, action=None, events=())
    }
    queue = deque([root_key])
    terminals: List[tuple] = []
    transitions = 0
    max_depth = 0
    truncated = False
    while queue:
        key = queue.popleft()
        node = nodes[key]
        edges = model.successors(node.state)
        if not edges:
            terminals.append(key)
            continue
        for edge in edges:
            transitions += 1
            child_key = model.canon(edge.state)
            if child_key in nodes:
                continue
            if max_states is not None and len(nodes) >= max_states:
                truncated = True
                continue
            nodes[child_key] = Node(
                state=edge.state,
                depth=node.depth + 1,
                parent=key,
                action=edge.action,
                events=edge.events,
            )
            max_depth = max(max_depth, node.depth + 1)
            queue.append(child_key)
    return ExploreResult(
        config=model.cfg,
        nodes=nodes,
        terminals=terminals,
        transitions=transitions,
        max_depth=max_depth,
        truncated=truncated,
        symmetry=model.symmetric,
    )
