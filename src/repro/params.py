"""Machine and cost-model parameters.

The defaults reproduce the architecture of the paper's §5.1: 200-MHz
RISC processors, a 32-KByte direct-mapped on-chip primary cache, a
512-KByte direct-mapped off-chip secondary cache, 64-byte lines, a
DASH-like invalidation protocol, per-node memory + directory, and
unloaded round-trip latencies of 1 / 12 / 60 / 208 / 291 cycles for the
primary cache, secondary cache, local memory, remote memory with 2 hops
and remote memory with 3 hops.  Contention is modeled in the whole
system except the global network, which is a constant latency — exactly
the abstraction the paper uses.
"""

from __future__ import annotations

import dataclasses

from .errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache.

    The paper's caches are direct-mapped (``ways=1``, the default);
    higher associativity is supported as an ablation axis (LRU within
    each set).
    """

    size_bytes: int
    line_bytes: int = 64
    ways: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ConfigurationError(
                f"cache size {self.size_bytes} not a multiple of the "
                f"line size {self.line_bytes}"
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("line size must be a power of two")
        if self.ways < 1:
            raise ConfigurationError("associativity must be >= 1")
        if self.num_lines % self.ways:
            raise ConfigurationError(
                f"{self.num_lines} lines not divisible into {self.ways}-way sets"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclasses.dataclass(frozen=True)
class LatencyTable:
    """Unloaded round-trip latencies, in processor cycles (paper §5.1).

    ``remote_2hop`` is a clean miss served by a remote home node
    (requester → home → requester).  ``remote_3hop`` adds a forward to a
    dirty third-party owner (requester → home → owner → requester).
    Queueing delays from contention are added on top of these.
    """

    l1_hit: int = 1
    l2_hit: int = 12
    local_mem: int = 60
    remote_2hop: int = 208
    remote_3hop: int = 291

    # Derived one-way quantities used to time protocol-only messages
    # (speculative state updates, invalidations, acknowledgements).  A
    # 2-hop round trip is two network traversals plus a directory+memory
    # access, so one network traversal costs roughly
    # (remote_2hop - local_mem) / 2.
    @property
    def network_one_way(self) -> int:
        return max(1, (self.remote_2hop - self.local_mem) // 2)

    @property
    def dirty_forward(self) -> int:
        """Extra cycles a 3-hop transaction adds over a 2-hop one."""
        return max(0, self.remote_3hop - self.remote_2hop)


@dataclasses.dataclass(frozen=True)
class ContentionModel:
    """Occupancy windows that create queueing delay.

    Every transaction that reaches a directory/memory module occupies it
    for ``directory_occupancy`` cycles; overlapping transactions queue.
    The secondary cache has a smaller occupancy.  The network itself is
    contention-free (constant latency), as in the paper.
    """

    directory_occupancy: int = 8
    l2_occupancy: int = 2
    enabled: bool = True
    #: Occupancy multiplier for the *speculative* protocol transactions
    #: (First_update, read-first signals, ...).  1.0 models the
    #: dedicated test logic of Fig 10; a software protocol processor
    #: handling those messages (the alternative Fig 10-(c) mentions)
    #: would be several times slower per message.
    spec_occupancy_factor: float = 1.0


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Instruction-level costs for the runtime schemes.

    These calibrate the *software* LRPD instrumentation (extra
    instructions per marked access, per-element analysis work) and the
    fixed overheads both schemes pay (system calls, backup copies).
    Values are processor cycles per event and follow the LRPD papers'
    published per-access overheads; they only need to be *relatively*
    right for the evaluation's shape to hold.
    """

    # Software scheme (§2.2): shadow bookkeeping around each access to an
    # array under test.  Each markread/markwrite also performs real
    # memory accesses to the shadow arrays (simulated through the cache
    # hierarchy); these constants cover only the arithmetic around them.
    sw_mark_read_instrs: int = 6
    sw_mark_write_instrs: int = 4
    sw_iter_end_instrs: int = 8          # per-iteration Atw accumulation
    sw_analysis_per_element: int = 3     # merge + analysis work per shadow elem
    sw_zero_per_element: int = 1         # shadow zero-out per elem
    sw_bitmap_word_elems: int = 64       # processor-wise test packs 64 elems/word

    # Both schemes: checkpointing of modifiable shared arrays.
    backup_per_element: int = 2          # plus the real copy memory traffic
    restore_per_element: int = 2
    copy_out_per_element: int = 2

    # Hardware scheme fixed overheads (§4.1): system calls to clear cache
    # tags / directory access bits and to load the address-range
    # comparator at loop entry.
    hw_loop_setup_cycles: int = 400
    hw_iter_tag_clear_cycles: int = 2    # address-qualified reset line

    # Loop scheduling overheads.
    sched_static_per_proc: int = 30
    sched_dynamic_per_grab: int = 24     # fetch&add on a shared counter
    barrier_base: int = 60
    barrier_per_proc: int = 14
    loop_iter_overhead: int = 4          # branch/induction update per iteration


@dataclasses.dataclass(frozen=True)
class MachineParams:
    """Complete description of the simulated CC-NUMA machine."""

    num_processors: int = 16
    processors_per_node: int = 1
    l1: CacheGeometry = dataclasses.field(
        default_factory=lambda: CacheGeometry(32 * 1024)
    )
    l2: CacheGeometry = dataclasses.field(
        default_factory=lambda: CacheGeometry(512 * 1024)
    )
    latency: LatencyTable = dataclasses.field(default_factory=LatencyTable)
    contention: ContentionModel = dataclasses.field(default_factory=ContentionModel)
    cost: CostModel = dataclasses.field(default_factory=CostModel)
    page_bytes: int = 4096
    write_buffer_entries: int = 8

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ConfigurationError("need at least one processor")
        if self.processors_per_node < 1:
            raise ConfigurationError("need at least one processor per node")
        if self.num_processors % self.processors_per_node:
            raise ConfigurationError(
                "num_processors must be a multiple of processors_per_node"
            )
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigurationError("L1 and L2 must share a line size")
        if self.page_bytes % self.l1.line_bytes:
            raise ConfigurationError("page size must be a multiple of line size")

    @property
    def num_nodes(self) -> int:
        return self.num_processors // self.processors_per_node

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes

    def node_of_processor(self, proc_id: int) -> int:
        return proc_id // self.processors_per_node

    def elems_per_line(self, elem_bytes: int) -> int:
        return elems_per_line(self.line_bytes, elem_bytes)


def elems_per_line(line_bytes: int, elem_bytes: int) -> int:
    """Array elements that fit in one cache line, never below one.

    An element wider than a line (``elem_bytes > line_bytes``) spans
    multiple lines; clamping to one keeps line-granular walkers and the
    access-bit geometry well-defined — each line maps to the single
    element it starts in.
    """
    return max(1, line_bytes // elem_bytes)


def default_params(num_processors: int = 16) -> MachineParams:
    """The paper's machine with a configurable processor count."""
    return MachineParams(num_processors=num_processors)


def small_test_params(num_processors: int = 4) -> MachineParams:
    """A tiny machine for unit tests: small caches force evictions."""
    return MachineParams(
        num_processors=num_processors,
        l1=CacheGeometry(1024, 64),
        l2=CacheGeometry(4096, 64),
        page_bytes=256,
    )
