"""Tests for the dependence-injection framework."""

import pytest

from repro.errors import ConfigurationError
from repro.params import MachineParams
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode, run_hw
from repro.trace.oracle import DependenceOracle
from repro.workloads.faults import (
    InjectedDependence,
    free_element,
    inject,
    inject_each_kind,
)
from repro.workloads.synthetic import parallel_nonpriv_loop

PARAMS = MachineParams(num_processors=4)
# Single-iteration cyclic blocks: dependent iterations land on
# different processors, so every injected kind must be detected.
CFG = RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK))


@pytest.fixture
def base_loop():
    return parallel_nonpriv_loop(iterations=16, work_cycles=60)


class TestInjection:
    def test_injection_makes_loop_non_doall(self, base_loop):
        for variant in inject_each_kind(base_loop, "A", src=3, dst=9):
            report = DependenceOracle(variant).analyze()
            assert not report.is_doall, variant.name

    def test_base_loop_untouched(self, base_loop):
        before = [list(ops) for ops in base_loop.iterations]
        inject_each_kind(base_loop, "A", src=3, dst=9)
        assert base_loop.iterations == before

    def test_injected_kind_matches_oracle(self, base_loop):
        element = free_element(base_loop, "A")
        for kind in ("flow", "anti", "output"):
            dep = InjectedDependence(kind, "A", element, 3, 9)
            report = DependenceOracle(inject(base_loop, dep)).analyze()
            kinds = {d.kind for d in report.dependences()}
            assert kind in kinds, (kind, kinds)

    def test_free_element_untouched(self, base_loop):
        element = free_element(base_loop, "A")
        assert element not in base_loop.written_elements("A")

    def test_validation(self, base_loop):
        with pytest.raises(ConfigurationError):
            InjectedDependence("raw", "A", 0, 1, 2)
        with pytest.raises(ConfigurationError):
            InjectedDependence("flow", "A", 0, 5, 5)
        with pytest.raises(ConfigurationError):
            inject(base_loop, InjectedDependence("flow", "A", 0, 1, 99))


class TestDetection:
    @pytest.mark.parametrize("kind", ["flow", "anti", "output"])
    def test_every_kind_detected_by_hw(self, base_loop, kind):
        element = free_element(base_loop, "A")
        dep = InjectedDependence(kind, "A", element, 3, 9)
        result = run_hw(inject(base_loop, dep), PARAMS, CFG)
        assert not result.passed, kind
        assert result.failure.element == ("A", element)

    def test_same_processor_injection_passes(self, base_loop):
        """Both iterations in one dynamic block: legal processor-wise."""
        element = free_element(base_loop, "A")
        dep = InjectedDependence("flow", "A", element, 3, 4)
        cfg = RunConfig(
            schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 4, VirtualMode.CHUNK)
        )
        result = run_hw(inject(base_loop, dep), PARAMS, cfg)
        assert result.passed
