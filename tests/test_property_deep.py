"""Deeper property tests: more processors, cross-layer equivalences.

The main property file pins the protocols against the oracle at 2
processors; these push further:

* the non-privatization protocol at 3 processors (three-way races);
* the *simulated* software scheme (run_sw, with all its instrumented
  memory traffic) agrees with directly-driven LRPD marking;
* multi-array value-level runs always match serial execution.
"""

from __future__ import annotations

import numpy as np
from hypothesis import example, given, settings, strategies as st

from repro.lrpd.analysis import analyze
from repro.lrpd.shadow import LRPDState
from repro.params import MachineParams, small_test_params
from repro.runtime import (
    RunConfig,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    run_sw,
)
from repro.runtime.schedule import static_chunks
from repro.semantics import ConcreteLoop, speculative_run
from repro.semantics.arrays import TraceRecorder, make_proxies
from repro.sim.machine import Machine
from repro.trace import ArraySpec, Loop, read, write
from repro.trace.oracle import DependenceOracle
from repro.types import AccessKind, ProtocolKind

N_ELEMS = 5
N_PROCS3 = 3

op3 = st.tuples(st.booleans(), st.integers(0, N_ELEMS - 1))
trace3 = st.lists(st.lists(op3, max_size=4), min_size=1, max_size=9)


def build_loop(trace, protocol):
    iters = [
        [write("A", e) if w else read("A", e) for (w, e) in ops]
        for ops in trace
    ]
    return Loop("deep", [ArraySpec("A", N_ELEMS, 8, protocol)], iters)


def proc3_of(iteration_0based: int) -> int:
    return (iteration_0based // 2) % N_PROCS3  # blocks of 2, cyclic


@settings(max_examples=80, deadline=None)
@given(trace3)
def test_nonpriv_exact_three_processors(trace):
    loop = build_loop(trace, ProtocolKind.NONPRIV)
    m = Machine(small_test_params(N_PROCS3))
    a = m.space.allocate("A", N_ELEMS, 8, protocol=ProtocolKind.NONPRIV)
    m.spec.register_nonpriv(a)
    m.spec.arm()
    t = 0.0
    for it, ops in enumerate(loop.iterations, start=1):
        p = proc3_of(it - 1)
        m.spec.set_iteration(p, it)
        for op in ops:
            addr = a.addr_of(op.index)
            if op.kind is AccessKind.READ:
                m.memsys.read(p, addr, t)
            else:
                m.memsys.write(p, addr, t)
            t += 40.0
            m.engine.drain()
    m.engine.drain()
    passed = not m.spec.controller.failed
    mapping = {
        it: proc3_of(it - 1) + 1 for it in range(1, loop.num_iterations + 1)
    }
    expected = DependenceOracle(loop, iteration_map=mapping).analyze().is_doall
    assert passed == expected


@settings(max_examples=30, deadline=None)
@given(trace3, st.booleans())
def test_simulated_sw_agrees_with_direct_marking(trace, privatized):
    """run_sw drives marking through generators, schedulers and the
    memory system; its verdict must equal direct shadow marking."""
    protocol = ProtocolKind.PRIV_SIMPLE if privatized else ProtocolKind.NONPRIV
    loop = build_loop(trace, protocol)
    params = MachineParams(num_processors=2)
    cfg = RunConfig(
        schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.ITERATION)
    )
    simulated = run_sw(loop, params, cfg)

    # Direct marking with the same static-chunk assignment.
    state = LRPDState(2)
    state.register("A", N_ELEMS, privatized)
    chunks = static_chunks(loop.num_iterations, 2)
    owner = {it: p for p, b in enumerate(chunks) for it in b.iterations()}
    for it, ops in enumerate(loop.iterations, start=1):
        shadow = state.shadow("A", owner[it])
        for op in ops:
            if op.kind is AccessKind.READ:
                shadow.markread(op.index, it)
            else:
                shadow.markwrite(op.index, it)
    assert simulated.passed == analyze(state).passed


@settings(max_examples=20, deadline=None)
@given(
    st.lists(  # per iteration: (array 0/1, is_write, index)
        st.lists(
            st.tuples(st.booleans(), st.booleans(), st.integers(0, 4)),
            min_size=1, max_size=3,
        ),
        min_size=1, max_size=6,
    )
)
# Regression: under dynamic self-scheduling one processor grabbed both
# writing iterations (so the hardware test passed), but the value-level
# commit replayed a guessed round-robin assignment that split them —
# fixed by replaying RunResult.assignment, the realized grab order.
@example(trace=[[(True, False, 0)], [(False, True, 0)], [(False, True, 0)]])
def test_two_array_values_match_serial(trace):
    """Value-level contract with two arrays (one possibly privatized)."""

    def body(i, arrays):
        for use_b, is_write, idx in trace[i]:
            name = "B" if use_b else "A"
            if is_write:
                arrays[name][idx] = arrays[name][idx] * 0.5 + i + 1
            else:
                _ = arrays[name][idx]

    initial = {
        "A": np.arange(5, dtype=float),
        "B": np.arange(5, dtype=float) * 10,
    }
    ref = {k: v.copy() for k, v in initial.items()}
    recorder = TraceRecorder()
    proxies = make_proxies(ref, recorder)
    for i in range(len(trace)):
        body(i, proxies)
        recorder.take()

    loop = ConcreteLoop(
        body, len(trace), {k: v.copy() for k, v in initial.items()},
        protocols={"A": ProtocolKind.NONPRIV, "B": ProtocolKind.PRIV},
    )
    out = speculative_run(
        loop,
        MachineParams(num_processors=2),
        RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK)),
    )
    for name in ("A", "B"):
        np.testing.assert_allclose(out.arrays[name], ref[name])
