"""Deep model-checking sweeps (3 processors / 4 elements) — ``slow``.

Excluded from tier-1 by the ``-m "not slow"`` default; run locally or
in the nightly CI job with ``pytest -m slow``.  Each case is the same
four-way cross-check as the gating suite, just over configurations
large enough to take tens of seconds each.
"""

from __future__ import annotations

import pytest

from repro.modelcheck import ModelConfig, check_config
from repro.types import ProtocolKind

pytestmark = pytest.mark.slow


def _check(config: ModelConfig, max_states=None, engine_cap=40):
    report = check_config(config, max_states=max_states, engine_cap=engine_cap)
    assert report.ok, [d.to_text() for d in report.divergences]
    return report


def test_nonpriv_cold_3procs_4elems_two_ops():
    report = _check(ModelConfig(ProtocolKind.NONPRIV, procs=3, elements=4,
                                iters=1, ops_per_iter=2))
    assert not report.truncated
    assert report.done > 0 and report.failed > 0


def test_nonpriv_warm_3procs_4elems_two_ops_capped():
    # The warm root roughly quadruples the space; a capped frontier
    # still cross-checks every terminal reached (flagged as truncated).
    report = _check(
        ModelConfig(ProtocolKind.NONPRIV, procs=3, elements=4,
                    iters=1, ops_per_iter=2, warm=True),
        max_states=120_000,
    )
    assert report.terminals > 0


def test_priv_3procs_3elems_two_ops():
    report = _check(ModelConfig(ProtocolKind.PRIV, procs=3, elements=3,
                                iters=1, ops_per_iter=2))
    assert not report.truncated
    assert report.done > 0 and report.failed > 0


def test_priv_round_robin_2procs_4elems_capped():
    report = _check(
        ModelConfig(ProtocolKind.PRIV, procs=2, elements=4, iters=2,
                    ops_per_iter=2, timestamp_bits=2),
        max_states=100_000,
    )
    assert report.terminals > 0


def test_priv_simple_2procs_4elems_two_ops():
    report = _check(ModelConfig(ProtocolKind.PRIV_SIMPLE, procs=2, elements=4,
                                iters=1, ops_per_iter=2))
    assert not report.truncated
    assert report.done > 0 and report.failed > 0


def test_priv_simple_3procs_4elems_one_op():
    report = _check(ModelConfig(ProtocolKind.PRIV_SIMPLE, procs=3, elements=4,
                                iters=1, ops_per_iter=1))
    assert not report.truncated
