"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.params import MachineParams, small_test_params
from repro.sim.machine import Machine


@pytest.fixture
def params2() -> MachineParams:
    return small_test_params(2)


@pytest.fixture
def params4() -> MachineParams:
    return small_test_params(4)


@pytest.fixture
def machine2(params2) -> Machine:
    return Machine(params2)


@pytest.fixture
def machine4(params4) -> Machine:
    return Machine(params4)
