"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random
import zlib

import pytest

from repro.params import MachineParams, small_test_params
from repro.sim.machine import Machine


@pytest.fixture
def seeded_rng(request) -> random.Random:
    """Deterministic per-test RNG for randomized (property-style) tests.

    The seed is derived from the test's node id, so every test gets a
    distinct but *stable* stream: a failure replays exactly on re-run.
    Set ``REPRO_TEST_SEED`` to force one specific seed (e.g. to replay
    a seed a CI failure reported).  The seed is printed (pytest shows
    captured output for failing tests) and recorded as a junit user
    property, so any randomized failure carries its own repro recipe.
    """
    env = os.environ.get("REPRO_TEST_SEED")
    if env is not None:
        seed = int(env)
    else:
        seed = zlib.crc32(request.node.nodeid.encode()) & 0x7FFFFFFF
    request.node.user_properties.append(("seeded_rng_seed", seed))
    print(f"seeded_rng: seed={seed} (override with REPRO_TEST_SEED={seed})")
    return random.Random(seed)


@pytest.fixture
def params2() -> MachineParams:
    return small_test_params(2)


@pytest.fixture
def params4() -> MachineParams:
    return small_test_params(4)


@pytest.fixture
def machine2(params2) -> Machine:
    return Machine(params2)


@pytest.fixture
def machine4(params4) -> Machine:
    return Machine(params4)
