"""Tests for the unified telemetry layer (repro.obs)."""

import dataclasses
import json

import pytest

from repro.analysis import AccessTrace, MessageLog
from repro.memsys.cache import HitLevel
from repro.obs import (
    AccessEvent,
    EventBus,
    EventRecorder,
    MetricsRegistry,
    PhaseBeginEvent,
    PhaseEndEvent,
    ProtocolMessageEvent,
    RunStartEvent,
    Telemetry,
    chrome_trace,
    phase_report,
    run_provenance,
    write_jsonl,
)
from repro.obs.bus import BoundedLog
from repro.params import default_params, small_test_params
from repro.runtime.driver import RunConfig, run_hw, run_serial
from repro.runtime.schedule import SchedulePolicy, ScheduleSpec, VirtualMode
from repro.sim.machine import Machine
from repro.types import AccessKind, ProtocolKind
from repro.workloads import AdmWorkload


def _hw_result_with_telemetry(procs=4):
    workload = AdmWorkload(seed=7, scale=0.25)
    loop = next(workload.executions(1))
    telemetry = Telemetry()
    config = dataclasses.replace(workload.hw_config(), telemetry=telemetry)
    result = run_hw(loop, default_params(procs), config)
    return result, telemetry


# ----------------------------------------------------------------------
# EventBus
# ----------------------------------------------------------------------
class TestEventBus:
    def test_typed_dispatch(self):
        bus = EventBus()
        seen = []
        bus.subscribe(AccessEvent, seen.append)
        bus.emit(AccessEvent(0.0, 0, AccessKind.READ, 64, HitLevel.L1, 1))
        bus.emit(PhaseBeginEvent(0.0, "loop"))  # different type: not seen
        assert len(seen) == 1 and type(seen[0]) is AccessEvent

    def test_catch_all_subscriber(self):
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        bus.emit(PhaseBeginEvent(0.0, "loop"))
        bus.emit(AccessEvent(1.0, 0, AccessKind.READ, 64, HitLevel.L1, 1))
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        fn = bus.subscribe(PhaseBeginEvent, seen.append)
        bus.emit(PhaseBeginEvent(0.0, "a"))
        bus.unsubscribe(PhaseBeginEvent, fn)
        bus.emit(PhaseBeginEvent(1.0, "b"))
        assert len(seen) == 1
        assert bus.subscriber_count == 0

    def test_hot_path_flags(self):
        bus = EventBus()
        assert not bus.wants_access
        fn = bus.subscribe(PhaseBeginEvent, lambda e: None)
        assert not bus.wants_access  # coarse subscriber only
        bus.subscribe(AccessEvent, lambda e: None)
        assert bus.wants_access
        bus.subscribe(None, lambda e: None)
        assert bus.wants_access and bus.wants_dir

    def test_events_are_frozen(self):
        event = PhaseBeginEvent(0.0, "loop")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.phase = "other"

    def test_active_flag_tracks_subscriptions(self):
        bus = EventBus()
        assert not bus.active
        fn = bus.subscribe(PhaseBeginEvent, lambda e: None)
        assert bus.active
        bus.unsubscribe(PhaseBeginEvent, fn)
        assert not bus.active
        fn = bus.subscribe(None, lambda e: None)
        assert bus.active
        bus.unsubscribe(None, fn)
        assert not bus.active

    def test_zero_subscriber_bus_constructs_no_events(self, monkeypatch):
        """An attached bus with no subscribers must not cost anything:
        every emission site guards event construction on ``bus.active``,
        so a full hardware run emits exactly zero events."""
        emitted = []
        real_emit = EventBus.emit
        monkeypatch.setattr(
            EventBus, "emit", lambda self, event: (emitted.append(event),
                                                   real_emit(self, event))[1]
        )
        workload = AdmWorkload(seed=7, scale=0.25)
        loop = next(workload.executions(1))
        bus = EventBus()
        config = dataclasses.replace(workload.hw_config(), telemetry=bus)
        result = run_hw(loop, small_test_params(4), config)
        assert result.passed
        assert emitted == []
        # Control: the same run with one subscriber flows events again.
        bus2 = EventBus()
        recorder = EventRecorder().subscribe(bus2)
        config2 = dataclasses.replace(workload.hw_config(), telemetry=bus2)
        run_hw(loop, small_test_params(4), config2)
        assert emitted and len(recorder) == len(emitted)


class _Boom:
    """Stand-in event class: any instantiation means an event object was
    allocated on a path whose guard said no subscriber wanted it."""

    def __init__(self, *args, **kwargs):
        raise AssertionError("event allocated on a zero-subscriber path")


class TestGuardedEmissionSites:
    """Pin each guard class found by the EventBus call-site audit: the
    event object must not even be *constructed* unless a subscriber of
    that family exists (``wants_access`` / ``wants_dir`` / ``wants_spec``
    / ``active``).  Each test booby-traps the event class and drives the
    emission site with a bus that is active but does not want that
    family; the control then subscribes and expects the trap to fire."""

    def _machine_with_bus(self, bus):
        m = Machine(small_test_params(2))
        m.attach_bus(bus)
        return m

    def test_access_trace_sites_guard_on_wants_access(self, monkeypatch):
        from repro.memsys import system as memsys_system

        monkeypatch.setattr(memsys_system, "AccessEvent", _Boom)
        bus = EventBus()
        bus.subscribe(PhaseBeginEvent, lambda e: None)  # active, no access
        assert bus.active and not bus.wants_access
        m = self._machine_with_bus(bus)
        a = m.space.allocate("A", 64, elem_bytes=8)
        # L1 hit, L2/memory miss and write-buffer paths all pass their
        # hoisted ``wants_access`` check without allocating.
        m.memsys.read(0, a.addr_of(0), 0.0)
        m.memsys.read(0, a.addr_of(0), 1.0)
        m.memsys.write(0, a.addr_of(0), 2.0)
        m.memsys.write(1, a.addr_of(8), 3.0)
        # Control: an access subscriber re-arms allocation.
        bus.subscribe(AccessEvent, lambda e: None)
        with pytest.raises(AssertionError, match="zero-subscriber"):
            m.memsys.read(0, a.addr_of(0), 4.0)

    def test_dir_transition_sites_guard_on_wants_dir(self, monkeypatch):
        from repro.memsys import system as memsys_system

        monkeypatch.setattr(memsys_system, "DirTransitionEvent", _Boom)
        bus = EventBus()
        bus.subscribe(AccessEvent, lambda e: None)  # active, no dir
        assert bus.active and not bus.wants_dir
        m = self._machine_with_bus(bus)
        a = m.space.allocate("A", 64, elem_bytes=8)
        m.memsys.read(0, a.addr_of(0), 0.0)   # CLEAN fill
        m.memsys.write(1, a.addr_of(0), 1.0)  # upgrade to DIRTY
        m.engine.drain()
        bus.subscribe(None, lambda e: None)
        assert bus.wants_dir
        with pytest.raises(AssertionError, match="zero-subscriber"):
            m.memsys.read(0, a.addr_of(16), 2.0)
            m.engine.drain()

    def test_spec_dir_update_sites_guard_on_wants_spec(self, monkeypatch):
        from repro.core import nonpriv as core_nonpriv

        monkeypatch.setattr(core_nonpriv, "NonPrivDirUpdateEvent", _Boom)
        bus = EventBus()
        bus.subscribe(AccessEvent, lambda e: None)  # active, no spec
        assert bus.active and not bus.wants_spec
        m = self._machine_with_bus(bus)
        a = m.space.allocate("A", 64, elem_bytes=8, protocol=ProtocolKind.NONPRIV)
        m.spec.register_nonpriv(a)
        m.spec.arm()
        m.memsys.read(0, a.addr_of(3), 0.0)
        m.engine.drain()
        bus.subscribe(None, lambda e: None)
        assert bus.wants_spec
        with pytest.raises(AssertionError, match="zero-subscriber"):
            m.memsys.read(1, a.addr_of(11), 1.0)
            m.engine.drain()

    def test_protocol_message_guard_on_active(self, monkeypatch):
        from repro.core import context as core_context

        monkeypatch.setattr(core_context, "ProtocolMessageEvent", _Boom)
        bus = EventBus()  # attached but zero subscribers
        m = self._machine_with_bus(bus)
        a = m.space.allocate("A", 64, elem_bytes=8, protocol=ProtocolKind.NONPRIV)
        m.spec.register_nonpriv(a)
        m.spec.arm()
        m.memsys.read(0, a.addr_of(3), 0.0)
        # Clean-hit read: marks First locally and sends a deferred
        # First_update — the message-log guard sees no subscriber.
        m.memsys.read(0, a.addr_of(4), 1.0)
        m.engine.drain()
        bus.subscribe(None, lambda e: None)
        with pytest.raises(AssertionError, match="zero-subscriber"):
            m.memsys.read(0, a.addr_of(5), 2.0)
            m.engine.drain()

    def test_failure_event_guard_on_active(self, monkeypatch):
        import repro.obs.events as obs_events

        monkeypatch.setattr(obs_events, "FailureEvent", _Boom)
        bus = EventBus()  # attached but zero subscribers
        m = self._machine_with_bus(bus)
        a = m.space.allocate("A", 64, elem_bytes=8, protocol=ProtocolKind.NONPRIV)
        m.spec.register_nonpriv(a)
        m.spec.arm()
        m.memsys.read(0, a.addr_of(3), 0.0)
        m.memsys.write(1, a.addr_of(3), 10.0)
        m.engine.drain()
        # The failure was detected without constructing a FailureEvent.
        assert m.spec.controller.failed


# ----------------------------------------------------------------------
# BoundedLog / legacy trace classes as bus subscribers
# ----------------------------------------------------------------------
class TestBoundedLog:
    def test_eviction_and_dropped_accounting(self):
        log = BoundedLog(capacity=10)
        for i in range(25):
            log.append(i)
        assert len(log) <= 15
        assert log.dropped > 0
        assert log.dropped + len(log) == 25
        # survivors are the newest records, in order
        assert list(log)[-1] == 24

    def test_clear_resets(self):
        log = BoundedLog(capacity=4)
        for i in range(9):
            log.append(i)
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_access_trace_eviction(self):
        trace = AccessTrace(capacity=10)
        for i in range(25):
            trace.append(
                AccessEvent(float(i), 0, AccessKind.READ, i, HitLevel.L1, 1)
            )
        assert len(trace) <= 15
        assert trace.dropped > 0

    def test_message_log_by_label_over_bus(self):
        bus = EventBus()
        log = MessageLog().subscribe(bus)
        for i in range(3):
            bus.emit(ProtocolMessageEvent(float(i), "First_update", 0, "A", i))
        bus.emit(ProtocolMessageEvent(3.0, "read-first", 1, "A", 0))
        assert log.by_label() == {"First_update": 3, "read-first": 1}

    def test_access_trace_subscribes_to_machine_bus(self):
        m = Machine(small_test_params(2), with_speculation=False)
        a = m.space.allocate("A", 64, elem_bytes=8)
        trace = AccessTrace().attach(m.memsys)
        m.memsys.read(0, a.addr_of(0), 0.0)
        assert len(trace) == 1 and trace.records[0].level is HitLevel.MEMORY
        AccessTrace.detach(m.memsys)
        m.memsys.read(0, a.addr_of(1), 1.0)
        assert len(trace) == 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_totals(self):
        reg = MetricsRegistry()
        reg.counter("mem.accesses", proc=0, kind="rd").inc(3)
        reg.counter("mem.accesses", proc=1, kind="rd").inc()
        reg.counter("mem.accesses", proc=1, kind="wr").inc()
        assert reg.value("mem.accesses", proc=0, kind="rd") == 3
        assert reg.total("mem.accesses") == 5
        assert reg.total("mem.accesses", proc=1) == 2
        assert reg.total("mem.accesses", kind="rd") == 4

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1, 2, 4, 9):
            h.observe(v)
        assert h.count == 4 and h.min == 1 and h.max == 9
        assert h.mean == pytest.approx(4.0)
        d = h.as_dict()
        assert sum(d["buckets"].values()) == 4

    def test_as_dict_round_trips_json(self):
        reg = MetricsRegistry()
        reg.counter("a", x=1).inc()
        reg.histogram("b").observe(2.0)
        text = json.dumps(reg.as_dict())
        assert json.loads(text)["counters"]["a"] == {"x=1": 1}

    def test_collector_aggregates_a_run(self):
        result, telemetry = _hw_result_with_telemetry()
        reg = telemetry.registry
        assert reg.total("mem.accesses") > 0
        # phase labels flowed from the runtime events into the labels
        phases = {
            labels["phase"] for labels, _ in reg.series("mem.accesses")
        }
        assert "loop" in phases
        # array names resolved through the machine's address space
        arrays = {
            labels["array"] for labels, _ in reg.series("mem.accesses")
        }
        assert any(a != "<unknown>" for a in arrays)


class TestMetricsSnapshot:
    """Cross-process state transfer: snapshot() -> pickle -> merge()."""

    def test_counter_snapshot_merge(self):
        from repro.obs.metrics import Counter

        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        b.merge(a.snapshot())
        assert b.value == 7
        assert a.value == 3  # snapshot is a copy, not shared state

    def test_histogram_snapshot_merge(self):
        from repro.obs.metrics import Histogram

        a, b = Histogram(), Histogram()
        for v in (1, 2, 9):
            a.observe(v)
        b.observe(100)
        b.merge(a.snapshot())
        assert b.count == 4
        assert b.min == 1 and b.max == 100
        assert b.total == pytest.approx(112.0)
        assert sum(b.buckets.values()) == 4

    def test_empty_histogram_snapshot_merges_as_noop(self):
        from repro.obs.metrics import Histogram

        a, b = Histogram(), Histogram()
        b.observe(5)
        snap = a.snapshot()
        assert snap["min"] is None and snap["max"] is None
        b.merge(snap)
        assert b.count == 1 and b.min == 5 and b.max == 5

    def test_registry_round_trip_through_pickle(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("mem.accesses", proc=0, kind="rd").inc(3)
        reg.counter("mem.accesses", proc=1, kind="wr").inc(2)
        reg.histogram("lat", phase="loop").observe(4.0)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        rebuilt = MetricsRegistry.from_snapshot(snap)
        assert rebuilt.as_dict() == reg.as_dict()
        assert rebuilt.total("mem.accesses") == 5
        assert rebuilt.value("mem.accesses", proc=0, kind="rd") == 3

    def test_registry_merge_adds_labeled_series(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("mem.accesses", proc=0).inc(1)
        worker.counter("mem.accesses", proc=0).inc(10)
        worker.counter("mem.accesses", proc=1).inc(5)
        worker.histogram("lat").observe(2.0)
        parent.merge(worker.snapshot())
        assert parent.value("mem.accesses", proc=0) == 11
        assert parent.value("mem.accesses", proc=1) == 5
        assert parent.total("mem.accesses") == 16
        assert parent.histogram("lat").count == 1


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------
class TestProvenance:
    def test_hash_stable_across_identical_configs(self):
        p1, p2 = default_params(8), default_params(8)
        c1, c2 = RunConfig(), RunConfig()
        assert run_provenance(p1, c1).config_hash == run_provenance(p2, c2).config_hash
        assert run_provenance(p1).params_hash == run_provenance(p2).params_hash

    def test_hash_changes_with_config(self):
        params = default_params(8)
        base = run_provenance(params, RunConfig())
        sparse = run_provenance(params, RunConfig(sparse_backup=True))
        other_sched = run_provenance(
            params,
            RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 8, VirtualMode.CHUNK)),
        )
        assert base.config_hash != sparse.config_hash
        assert base.config_hash != other_sched.config_hash
        assert base.params_hash == sparse.params_hash

    def test_hooks_do_not_affect_hash(self):
        params = default_params(8)
        plain = run_provenance(params, RunConfig())
        hooked = run_provenance(
            params, RunConfig(machine_hook=lambda m: None, telemetry=Telemetry())
        )
        assert plain.config_hash == hooked.config_hash

    def test_run_result_is_stamped(self):
        result, _ = _hw_result_with_telemetry()
        assert result.provenance is not None
        assert len(result.provenance.config_hash) == 64
        assert result.provenance.scenario == "HW"
        assert result.metrics is not None
        assert "counters" in result.metrics

    def test_serialize_includes_provenance(self):
        from repro.experiments.serialize import run_result_to_dict

        result, _ = _hw_result_with_telemetry()
        doc = json.loads(json.dumps(run_result_to_dict(result)))
        assert doc["provenance"]["config_hash"] == result.provenance.config_hash
        assert "metrics" in doc

    def test_sets_canonicalize_as_sorted_lists(self):
        # Sets used to fall through _jsonable to repr(), whose
        # iteration order is hash-seed dependent — the same value would
        # fingerprint differently across processes.
        from repro.obs import canonical_json, fingerprint

        assert canonical_json({"s": {"c", "a", "b"}}) == '{"s":["a","b","c"]}'
        assert canonical_json(frozenset({3, 1, 2})) == "[1,2,3]"
        assert fingerprint({"s": frozenset({"x", "y"})}) == fingerprint(
            {"s": ["x", "y"]}
        )

    def test_set_fingerprint_stable_across_hash_seeds(self):
        # Rendering must not depend on the interpreter's string hash
        # seed (it changes per process unless PYTHONHASHSEED is pinned).
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "from repro.obs import fingerprint; "
            "print(fingerprint({'procs': frozenset(['p%d' % i "
            "for i in range(32)])}))"
        )
        digests = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": src, "PYTHONHASHSEED": seed},
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for seed in ("1", "2026")
        }
        assert len(digests) == 1, digests


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class TestExport:
    def test_chrome_trace_round_trip(self, tmp_path):
        result, telemetry = _hw_result_with_telemetry()
        out = tmp_path / "trace.json"
        count = telemetry.write_chrome_trace(
            str(out), metadata=result.provenance.as_dict()
        )
        doc = json.load(open(out))
        events = doc["traceEvents"]
        assert len(events) == count > 0
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert doc["metadata"]["config_hash"] == result.provenance.config_hash

    def test_trace_covers_four_subsystems(self):
        _, telemetry = _hw_result_with_telemetry()
        doc = chrome_trace(telemetry.events)
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert {"memsys", "core", "sim", "runtime"} <= cats
        # and the raw stream agrees
        assert {"memsys", "core", "sim", "runtime"} <= set(
            telemetry.events.subsystems()
        )

    def test_phase_slices_nest(self):
        _, telemetry = _hw_result_with_telemetry()
        doc = chrome_trace(telemetry.events)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) >= 2  # backup + loop at least

    def test_jsonl_lines_parse(self, tmp_path):
        _, telemetry = _hw_result_with_telemetry()
        out = tmp_path / "events.jsonl"
        count = write_jsonl(telemetry.events, str(out))
        lines = open(out).read().splitlines()
        assert len(lines) == count > 0
        first = json.loads(lines[0])
        assert {"event", "subsystem", "time"} <= set(first)

    def test_jsonl_filters_hits_by_default(self, tmp_path):
        _, telemetry = _hw_result_with_telemetry()
        filtered = write_jsonl(telemetry.events, str(tmp_path / "a.jsonl"))
        full = write_jsonl(
            telemetry.events, str(tmp_path / "b.jsonl"), include_hits=True
        )
        assert full > filtered

    def test_phase_report_text(self):
        result, telemetry = _hw_result_with_telemetry()
        text = telemetry.phase_report()
        assert "loop" in text and "%" in text
        assert "adm" in text  # run header names the loop


# ----------------------------------------------------------------------
# Driver / engine integration
# ----------------------------------------------------------------------
class TestDriverIntegration:
    def test_serial_run_emits_runtime_events(self):
        workload = AdmWorkload(seed=7, scale=0.25)
        loop = next(workload.executions(1))
        telemetry = Telemetry()
        result = run_serial(
            loop, default_params(8), RunConfig(telemetry=telemetry)
        )
        starts = telemetry.events.of_type(RunStartEvent)
        assert len(starts) == 1 and starts[0].scenario == "Serial"
        phases = telemetry.events.of_type(PhaseEndEvent)
        assert phases and phases[0].duration == result.phases["loop"]

    def test_bare_bus_as_telemetry(self):
        workload = AdmWorkload(seed=7, scale=0.25)
        loop = next(workload.executions(1))
        bus = EventBus()
        recorder = EventRecorder().subscribe(bus)
        run_serial(loop, default_params(8), RunConfig(telemetry=bus))
        assert len(recorder) > 0

    def test_failure_events_on_dependent_loop(self):
        m = Machine(small_test_params(2))
        a = m.space.allocate("A", 64, elem_bytes=8, protocol=ProtocolKind.NONPRIV)
        m.spec.register_nonpriv(a)
        recorder = EventRecorder()
        bus = EventBus()
        recorder.subscribe(bus)
        m.attach_bus(bus)
        m.spec.arm()
        # proc 1 writes what proc 0 read: cross-iteration dependence
        m.memsys.read(0, a.addr_of(3), 0.0)
        m.memsys.write(1, a.addr_of(3), 10.0)
        m.engine.drain()
        assert m.spec.controller.failed
        failures = [e for e in recorder if e.name == "failure"]
        assert failures and failures[0].subsystem == "core"

    def test_no_bus_means_no_overhead_paths(self):
        # machines without telemetry must keep all bus fields None
        m = Machine(small_test_params(2))
        assert m.bus is None and m.memsys.bus is None and m.engine.bus is None
        assert m.spec.ctx.bus is None and m.spec.controller.bus is None

    def test_phase_report_composes(self):
        result, telemetry = _hw_result_with_telemetry()
        report = phase_report(telemetry.events)
        for phase in result.phases:
            if phase != "serial-reexec":
                assert phase in report
