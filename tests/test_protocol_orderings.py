"""Explicit message-ordering tests via the ManualScheduler.

The time-driven tests exercise races as they emerge from latencies;
these tests instead pin exact delivery orders of the speculative
signals, so every branch of the race-resolution algorithms is reached
deterministically.
"""

import pytest

from repro.address import AddressSpace
from repro.core.controller import SpeculationController
from repro.core.engine import SpeculationEngine
from repro.core.messages import ManualScheduler
from repro.params import small_test_params
from repro.types import AccessKind, ProtocolKind


def make_priv_engine(n=2):
    """A speculation engine with a manual scheduler and no memory system
    (driving the protocol objects directly)."""
    params = small_test_params(n)
    space = AddressSpace(params.num_nodes, params.page_bytes, params.line_bytes)
    scheduler = ManualScheduler()
    engine = SpeculationEngine(params, space, scheduler=scheduler)
    shared = space.allocate("A", 32, 8, protocol=ProtocolKind.PRIV)
    privs = [
        space.allocate(
            f"A@p{p}", 32, 8, protocol=ProtocolKind.PRIV,
            home_policy="local", local_node=params.node_of_processor(p),
        )
        for p in range(n)
    ]
    engine.register_priv(shared, privs)
    engine.arm()
    return engine, scheduler


class TestPrivSignalOrderings:
    """Both orders of a conflicting (write@1 by P0, read-first@2 by P1)
    pair must FAIL — whichever signal reaches the shared home first."""

    def _issue(self, engine):
        # P0 writes element 3 in iteration 1 (via the private dir path).
        # Pre-touch the line so the write takes the deferred first-write
        # signal path rather than the inline read-in-for-write.
        entry0 = engine.table.lookup(engine.space.array("A@p0").addr_of(3))[0]
        table0 = engine.priv.private_table("A", 0)
        table0.pmax_w[4] = 1
        engine.priv.on_dir_access(
            0, entry0, 3, AccessKind.WRITE, 1, line_first=0, line_count=8, now=0.0
        )
        # P1 reads element 3 in iteration 2 — but NOT as a whole-line
        # first touch (pre-touch another element so no read-in happens
        # and the conflict flows through the deferred signals).
        entry1 = engine.table.lookup(engine.space.array("A@p1").addr_of(3))[0]
        table1 = engine.priv.private_table("A", 1)
        table1.pmax_w[4] = 1  # line already touched by p1
        engine.priv.on_dir_access(
            1, entry1, 3, AccessKind.READ, 2, line_first=0, line_count=8, now=1.0
        )

    def test_write_signal_first(self):
        engine, scheduler = make_priv_engine()
        self._issue(engine)
        # Deliver in issue order: first-write (iter 1) then read-first
        # (iter 2): read-first finds MinW == 1 < 2 -> FAIL.
        assert scheduler.deliver_all() >= 2
        assert engine.controller.failed
        assert "read-first" in engine.controller.failure.reason

    def test_read_first_signal_first(self):
        engine, scheduler = make_priv_engine()
        # Reverse issue order: P1's read-first at t=0, P0's write at t=1.
        entry1 = engine.table.lookup(engine.space.array("A@p1").addr_of(3))[0]
        table1 = engine.priv.private_table("A", 1)
        table1.pmax_w[4] = 1
        engine.priv.on_dir_access(
            1, entry1, 3, AccessKind.READ, 2, line_first=0, line_count=8, now=0.0
        )
        entry0 = engine.table.lookup(engine.space.array("A@p0").addr_of(3))[0]
        table0 = engine.priv.private_table("A", 0)
        table0.pmax_w[4] = 1  # avoid read-in on the write path too
        engine.priv.on_dir_access(
            0, entry0, 3, AccessKind.WRITE, 1, line_first=0, line_count=8, now=1.0
        )
        scheduler.deliver_all()
        # Now the write's shared-home check sees MaxR1st == 2 > 1 -> FAIL.
        assert engine.controller.failed
        assert "write in iteration 1" in engine.controller.failure.reason

    def test_benign_order_passes_both_ways(self):
        # write@1, read-first@2 on DIFFERENT elements: no conflict.
        engine, scheduler = make_priv_engine()
        entry0 = engine.table.lookup(engine.space.array("A@p0").addr_of(3))[0]
        engine.priv.on_dir_access(
            0, entry0, 3, AccessKind.WRITE, 1, line_first=0, line_count=8, now=0.0
        )
        entry1 = engine.table.lookup(engine.space.array("A@p1").addr_of(5))[0]
        table1 = engine.priv.private_table("A", 1)
        table1.pmax_w[4] = 1
        engine.priv.on_dir_access(
            1, entry1, 5, AccessKind.READ, 2, line_first=0, line_count=8, now=1.0
        )
        scheduler.deliver_all()
        assert not engine.controller.failed


class TestSignalDrops:
    def test_messages_dropped_after_failure(self):
        """In-flight signals are discarded once the speculation failed
        (the paper's abort squashes outstanding work)."""
        engine, scheduler = make_priv_engine()
        engine.controller.fail("forced", detected_at=0.0)
        entry0 = engine.table.lookup(engine.space.array("A@p0").addr_of(3))[0]
        table0 = engine.priv.private_table("A", 0)
        table0.pmax_w[4] = 1
        engine.priv.on_dir_access(
            0, entry0, 3, AccessKind.WRITE, 1, line_first=0, line_count=8, now=1.0
        )
        delivered = scheduler.deliver_all()
        # Handlers ran but were no-ops; the original failure stands.
        assert engine.controller.failure.reason == "forced"
        shared = engine.priv.shared_table("A")
        assert shared.min_w_of(3) is None
