"""Tests for the application-level program model."""

import pytest

from repro.params import MachineParams
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode
from repro.runtime.program import (
    LoopExecution,
    Policy,
    Program,
    SerialSection,
    compare_policies,
    run_program,
)
from repro.workloads import TrackWorkload
from repro.workloads.synthetic import failing_loop, parallel_nonpriv_loop

PARAMS = MachineParams(num_processors=4)
CFG = RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK))


def good_program(executions=3, serial=5_000.0):
    sections = []
    for _ in range(executions):
        sections.append(SerialSection(serial))
        sections.append(
            LoopExecution("good", parallel_nonpriv_loop(iterations=32, work_cycles=300))
        )
    return Program(sections)


def bad_program(executions=4):
    sections = [
        LoopExecution("bad", failing_loop(4, iterations=32, work_cycles=300))
        for _ in range(executions)
    ]
    return Program(sections)


class TestProgramStructure:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_from_workload(self):
        program = Program.from_workload(TrackWorkload(scale=0.5), executions=2)
        loops = program.loop_executions()
        assert len(loops) == 2
        assert all(le.site == "Track" for le in loops)


class TestPolicies:
    def test_speculate_beats_serial_on_parallel_loops(self):
        serial = run_program(good_program(), PARAMS, CFG, Policy.SERIAL)
        spec = run_program(good_program(), PARAMS, CFG, Policy.SPECULATE)
        assert spec.total_cycles < serial.total_cycles

    def test_serial_sections_charged_identically(self):
        serial = run_program(good_program(), PARAMS, CFG, Policy.SERIAL)
        spec = run_program(good_program(), PARAMS, CFG, Policy.SPECULATE)
        assert serial.serial_section_cycles == spec.serial_section_cycles == 15_000.0

    def test_amdahl_bound(self):
        """Huge serial sections bound the application speedup near 1."""
        big = 2_000_000.0
        serial = run_program(good_program(serial=big), PARAMS, CFG, Policy.SERIAL)
        spec = run_program(good_program(serial=big), PARAMS, CFG, Policy.SPECULATE)
        assert serial.total_cycles / spec.total_cycles < 1.2

    def test_adaptive_learns_on_failing_site(self):
        adaptive = run_program(
            bad_program(), PARAMS, CFG, Policy.ADAPTIVE, explore_after=50
        )
        always = run_program(bad_program(), PARAMS, CFG, Policy.SPECULATE)
        assert adaptive.total_cycles < always.total_cycles
        summary = adaptive.sites["bad"]
        assert summary.speculated < summary.executions

    def test_site_summaries(self):
        result = run_program(good_program(), PARAMS, CFG, Policy.SPECULATE)
        summary = result.sites["good"]
        assert summary.executions == 3
        assert summary.speculated == 3 and summary.passed == 3
        assert result.loop_fraction > 0

    def test_compare_policies_builds_fresh_programs(self):
        results = compare_policies(lambda: good_program(), PARAMS, CFG)
        assert set(results) == {Policy.SERIAL, Policy.SPECULATE, Policy.ADAPTIVE}
        assert results[Policy.SPECULATE].total_cycles <= results[
            Policy.SERIAL
        ].total_cycles
