"""Property-based tests: the protocols against the exact oracle.

For random loops we check the defining properties of each scheme:

* **soundness** (always, even under message races): if the run-time
  test passes, the loop really is parallel by the scheme's own
  criterion — a false pass would produce silently wrong programs;
* **exactness** (when messages are drained after every access, i.e. no
  races): the test passes *iff* the criterion holds.

The criteria, per the paper:

* non-privatization (§3.2): every element under test is read-only or
  accessed by a single processor (processor-wise by construction);
* privatization with read-in/copy-out (§3.3): per element,
  ``max read-first iteration <= min writing iteration``;
* simple privatization (§4.1): per element, never both read-first
  somewhere and written somewhere;
* software LRPD (§2.2.2): the documented shadow-array analysis.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.lrpd.analysis import analyze
from repro.lrpd.shadow import LRPDState
from repro.params import small_test_params
from repro.sim.machine import Machine
from repro.trace import ArraySpec, Loop, read, write
from repro.trace.oracle import DependenceOracle
from repro.types import AccessKind, ProtocolKind

N_ELEMS = 6
N_PROCS = 2

# One op: (is_write, element index)
op_strategy = st.tuples(st.booleans(), st.integers(0, N_ELEMS - 1))
iteration_strategy = st.lists(op_strategy, min_size=0, max_size=5)
trace_strategy = st.lists(iteration_strategy, min_size=1, max_size=8)


def build_loop(trace, protocol: ProtocolKind) -> Loop:
    iters = [
        [write("A", e) if w else read("A", e) for (w, e) in ops]
        for ops in trace
    ]
    return Loop("prop", [ArraySpec("A", N_ELEMS, 8, protocol)], iters)


def proc_of(iteration: int) -> int:
    """Block-cyclic assignment (blocks of N_PROCS iterations)."""
    return 0 if iteration % (2 * N_PROCS) < N_PROCS else 1


def proc_of_contiguous(iteration: int, total: int) -> int:
    """Static contiguous chunks — required by the processor-wise test
    (§2.2.3: "chunks of contiguous iterations")."""
    half = (total + 1) // 2
    return 0 if iteration < half else 1


def execute_hw(
    loop: Loop, protocol: ProtocolKind, drain_each: bool, simple: bool = False
) -> bool:
    """Run the trace through the machine; returns True when it passed."""
    m = Machine(small_test_params(N_PROCS))
    a = m.space.allocate("A", N_ELEMS, 8, protocol=protocol)
    if protocol is ProtocolKind.NONPRIV:
        m.spec.register_nonpriv(a)
    else:
        privs = [
            m.space.allocate(
                f"A@p{p}", N_ELEMS, 8, protocol=protocol,
                home_policy="local", local_node=m.params.node_of_processor(p),
            )
            for p in range(N_PROCS)
        ]
        m.spec.register_priv(a, privs, simple=simple)
    m.spec.arm()
    t = 0.0
    for it, ops in enumerate(loop.iterations, start=1):
        p = proc_of(it - 1)
        m.spec.set_iteration(p, it)
        for op in ops:
            addr = m.spec.resolve(p, "A", op.index, op.kind)
            if op.kind is AccessKind.READ:
                m.memsys.read(p, addr, t)
            else:
                m.memsys.write(p, addr, t)
            t += 40.0
            if drain_each:
                m.engine.drain()
    m.engine.drain()
    m.spec.commit(m.engine.now)  # loop-end merge of dirty tag state
    return not m.spec.controller.failed


def oracle_report(loop: Loop, grouping: str = "iteration"):
    """grouping: 'iteration' (identity), 'blocked' (the block-cyclic
    assignment execute_hw uses — legal for the non-privatization test,
    which is processor-wise under any schedule), or 'contiguous' (what
    the processor-wise software test requires)."""
    total = loop.num_iterations
    if grouping == "iteration":
        iteration_map = None
    elif grouping == "blocked":
        iteration_map = {it: proc_of(it - 1) + 1 for it in range(1, total + 1)}
    else:
        iteration_map = {
            it: proc_of_contiguous(it - 1, total) + 1 for it in range(1, total + 1)
        }
    return DependenceOracle(loop, iteration_map=iteration_map).analyze()


# ----------------------------------------------------------------------
# Non-privatization
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(trace_strategy)
def test_nonpriv_exact_without_races(trace):
    loop = build_loop(trace, ProtocolKind.NONPRIV)
    passed = execute_hw(loop, ProtocolKind.NONPRIV, drain_each=True)
    report = oracle_report(loop, grouping="blocked")
    assert passed == report.is_doall


@settings(max_examples=60, deadline=None)
@given(trace_strategy)
def test_nonpriv_sound_under_races(trace):
    loop = build_loop(trace, ProtocolKind.NONPRIV)
    passed = execute_hw(loop, ProtocolKind.NONPRIV, drain_each=False)
    report = oracle_report(loop, grouping="blocked")
    if passed:
        assert report.is_doall  # a pass must never hide a dependence


# ----------------------------------------------------------------------
# Privatization (full, read-in/copy-out)
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(trace_strategy)
def test_priv_exact_without_races(trace):
    loop = build_loop(trace, ProtocolKind.PRIV)
    passed = execute_hw(loop, ProtocolKind.PRIV, drain_each=True)
    report = oracle_report(loop, grouping="iteration")
    assert passed == report.arrays["A"].is_priv_rico


@settings(max_examples=60, deadline=None)
@given(trace_strategy)
def test_priv_sound_under_races(trace):
    loop = build_loop(trace, ProtocolKind.PRIV)
    passed = execute_hw(loop, ProtocolKind.PRIV, drain_each=False)
    report = oracle_report(loop, grouping="iteration")
    if passed:
        assert report.arrays["A"].is_priv_rico


# ----------------------------------------------------------------------
# Privatization (simple variant)
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(trace_strategy)
def test_priv_simple_exact_without_races(trace):
    loop = build_loop(trace, ProtocolKind.PRIV_SIMPLE)
    passed = execute_hw(
        loop, ProtocolKind.PRIV_SIMPLE, drain_each=True, simple=True
    )
    report = oracle_report(loop, grouping="iteration")
    assert passed == report.arrays["A"].is_privatizable


# ----------------------------------------------------------------------
# Software LRPD marking vs the oracle
# ----------------------------------------------------------------------
def run_lrpd(loop: Loop, privatized: bool, processor_wise: bool):
    state = LRPDState(N_PROCS)
    state.register("A", N_ELEMS, privatized)
    total = loop.num_iterations
    for it, ops in enumerate(loop.iterations, start=1):
        # The processor-wise test requires static contiguous chunks.
        p = proc_of_contiguous(it - 1, total) if processor_wise else proc_of(it - 1)
        virt = (p + 1) if processor_wise else it
        shadow = state.shadow("A", p)
        for op in ops:
            if op.kind is AccessKind.READ:
                shadow.markread(op.index, virt)
            else:
                shadow.markwrite(op.index, virt)
    return analyze(state)


@settings(max_examples=120, deadline=None)
@given(trace_strategy, st.booleans())
def test_lrpd_iteration_wise_matches_oracle(trace, privatized):
    loop = build_loop(trace, ProtocolKind.PRIV if privatized else ProtocolKind.NONPRIV)
    outcome = run_lrpd(loop, privatized, processor_wise=False)
    report = oracle_report(loop, grouping="iteration")
    verdict = report.arrays["A"]
    expected = verdict.is_doall or (privatized and verdict.is_privatizable)
    assert outcome.passed == expected


@settings(max_examples=120, deadline=None)
@given(trace_strategy, st.booleans())
def test_lrpd_processor_wise_matches_oracle(trace, privatized):
    loop = build_loop(trace, ProtocolKind.PRIV if privatized else ProtocolKind.NONPRIV)
    outcome = run_lrpd(loop, privatized, processor_wise=True)
    report = oracle_report(loop, grouping="contiguous")
    verdict = report.arrays["A"]
    expected = verdict.is_doall or (privatized and verdict.is_privatizable)
    assert outcome.passed == expected


# ----------------------------------------------------------------------
# Cross-scheme relations the paper states
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(trace_strategy)
def test_read_in_protocol_at_least_as_permissive_as_simple(trace):
    """§3.3: the full protocol 'is more aggressive' than the simple one."""
    loop_s = build_loop(trace, ProtocolKind.PRIV_SIMPLE)
    loop_f = build_loop(trace, ProtocolKind.PRIV)
    simple = execute_hw(loop_s, ProtocolKind.PRIV_SIMPLE, drain_each=True, simple=True)
    full = execute_hw(loop_f, ProtocolKind.PRIV, drain_each=True)
    if simple:
        assert full


@settings(max_examples=80, deadline=None)
@given(trace_strategy)
def test_processor_wise_at_least_as_permissive_as_iteration_wise(trace):
    """§2.2.3: chunking dependent iterations together can only help."""
    loop = build_loop(trace, ProtocolKind.NONPRIV)
    iter_wise = run_lrpd(loop, privatized=False, processor_wise=False)
    proc_wise = run_lrpd(loop, privatized=False, processor_wise=True)
    if iter_wise.passed:
        assert proc_wise.passed


def run_lrpd_awmin(loop: Loop, privatized: bool):
    state = LRPDState(N_PROCS, with_awmin=True)
    state.register("A", N_ELEMS, privatized)
    for it, ops in enumerate(loop.iterations, start=1):
        shadow = state.shadow("A", proc_of(it - 1))
        for op in ops:
            if op.kind is AccessKind.READ:
                shadow.markread(op.index, it)
            else:
                shadow.markwrite(op.index, it)
    return analyze(state)


@settings(max_examples=120, deadline=None)
@given(trace_strategy)
def test_lrpd_awmin_matches_rico_oracle(trace):
    """§2.2.3: with the Awmin shadow array, the software test accepts
    exactly the loops that are parallel with read-in/copy-out."""
    loop = build_loop(trace, ProtocolKind.PRIV)
    outcome = run_lrpd_awmin(loop, privatized=True)
    verdict = oracle_report(loop, grouping="iteration").arrays["A"]
    expected = verdict.is_doall or verdict.is_privatizable or verdict.is_priv_rico
    assert outcome.passed == expected


@settings(max_examples=80, deadline=None)
@given(trace_strategy)
def test_lrpd_awmin_agrees_with_hw_priv_protocol(trace):
    """The software Awmin test and the hardware read-in protocol accept
    the same loops (both implement the §2.2.3 criterion)."""
    loop = build_loop(trace, ProtocolKind.PRIV)
    sw = run_lrpd_awmin(loop, privatized=True).passed
    hw = execute_hw(loop, ProtocolKind.PRIV, drain_each=True)
    assert sw == hw


# ----------------------------------------------------------------------
# Fixture-seeded randomized sweeps (shared ``seeded_rng`` from conftest)
# ----------------------------------------------------------------------
def _random_trace(rng) -> List[List[Tuple[bool, int]]]:
    """Same shape as ``trace_strategy`` draws, from the shared fixture
    so a failing trace replays exactly (REPRO_TEST_SEED=<seed>)."""
    return [
        [(rng.random() < 0.5, rng.randrange(N_ELEMS))
         for _ in range(rng.randint(0, 5))]
        for _ in range(rng.randint(1, 8))
    ]


def test_nonpriv_exactness_on_seeded_traces(seeded_rng):
    for _ in range(25):
        trace = _random_trace(seeded_rng)
        loop = build_loop(trace, ProtocolKind.NONPRIV)
        passed = execute_hw(loop, ProtocolKind.NONPRIV, drain_each=True)
        assert passed == oracle_report(loop, grouping="blocked").is_doall, trace


def test_priv_soundness_on_seeded_traces(seeded_rng):
    for _ in range(25):
        trace = _random_trace(seeded_rng)
        loop = build_loop(trace, ProtocolKind.PRIV)
        if execute_hw(loop, ProtocolKind.PRIV, drain_each=False):
            verdict = oracle_report(loop, grouping="iteration").arrays["A"]
            assert (
                verdict.is_doall or verdict.is_privatizable or verdict.is_priv_rico
            ), trace
