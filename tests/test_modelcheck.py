"""Gating model-checking tests (tier-1 sizes: 2 processors, 2 elements).

Every reachable terminal state of each protocol model is cross-checked
four ways (serial predicate, monitor replay, dependence oracle, scalar
engine); these suites assert zero divergences at the smallest
configurations, plus the machinery itself: canonicalization, witness
traces, program minimization, fault injection (a seeded protocol bug
must be caught with a minimized reproducer) and the CLI verb.

The deeper enumerations (3 processors, 4 elements) live in
``test_modelcheck_deep.py`` under the ``slow`` marker.
"""

from __future__ import annotations

import json

import pytest

from repro.lrpd.analysis import serial_access_verdict
from repro.modelcheck import (
    ModelConfig,
    ProtocolModel,
    check_config,
    explore,
)
from repro.modelcheck.cli import main as modelcheck_main
from repro.modelcheck.crosscheck import program_rows
from repro.modelcheck.reproduce import minimize_programs
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode, run_hw
from repro.types import ProtocolKind


def _check(config: ModelConfig, **kw):
    kw.setdefault("engine_cap", 25)
    report = check_config(config, **kw)
    assert not report.truncated
    return report


class TestTier1Exhaustive:
    """Zero divergences across every reachable terminal state."""

    def test_nonpriv_cold(self):
        report = _check(ModelConfig(ProtocolKind.NONPRIV, procs=2, elements=2))
        assert report.ok, [d.to_text() for d in report.divergences]
        assert report.done > 0 and report.failed > 0
        assert report.engine_runs > 0
        assert report.symmetry

    def test_nonpriv_warm(self):
        """The warm root exercises the First_update race paths the cold
        root structurally cannot reach."""
        report = _check(
            ModelConfig(ProtocolKind.NONPRIV, procs=2, elements=2, warm=True)
        )
        assert report.ok, [d.to_text() for d in report.divergences]
        assert not report.symmetry  # warm segments distinguish processors

    def test_priv(self):
        report = _check(ModelConfig(ProtocolKind.PRIV, procs=2, elements=2))
        assert report.ok, [d.to_text() for d in report.divergences]
        assert report.done > 0 and report.failed > 0

    def test_priv_round_robin_timestamps(self):
        """Time-stamped PRIV: round-robin numbering, epoch barriers."""
        config = ModelConfig(
            ProtocolKind.PRIV, procs=2, elements=2, iters=2, ops_per_iter=1,
            timestamp_bits=2,
        )
        report = _check(config)
        assert report.ok, [d.to_text() for d in report.divergences]
        result = explore(config)
        assert any(
            n.action and n.action.startswith("epoch-sync")
            for n in result.nodes.values()
        )

    def test_priv_simple(self):
        report = _check(ModelConfig(ProtocolKind.PRIV_SIMPLE, procs=2, elements=2))
        assert report.ok, [d.to_text() for d in report.divergences]
        assert report.done > 0 and report.failed > 0
        assert report.symmetry

    def test_priv_single_bit_timestamps(self):
        """capacity-1 epochs: a barrier between every pair of effective
        iterations.  This config's engine cross-check originally caught
        a real deadlock (an aborted processor replaying a stale epoch
        BarrierOp into the restore phase)."""
        report = _check(
            ModelConfig(
                ProtocolKind.PRIV, procs=2, elements=2, iters=3,
                ops_per_iter=1, timestamp_bits=1,
            ),
            engine_cap=40,
        )
        assert report.ok, [d.to_text() for d in report.divergences]


class TestModelStructure:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ModelConfig(ProtocolKind.NONPRIV, timestamp_bits=2)
        with pytest.raises(ValueError):
            ModelConfig(ProtocolKind.PRIV, warm=True)
        with pytest.raises(ValueError):
            ModelConfig(ProtocolKind.PLAIN)

    def test_symmetry_collapses_permuted_states(self):
        """In free-program mode a processor permutation must map to the
        same canonical key; fixed (asymmetric) programs that are
        permutations of each other must still explore isomorphic
        terminal sets."""
        model = ProtocolModel(
            ModelConfig(ProtocolKind.PRIV_SIMPLE, procs=2, elements=2)
        )
        root = model.initial_state()
        # P0 reads element 0 vs P1 reads element 0: same canonical key.
        by_action = {}
        for edge in model.successors(root):
            by_action[edge.action] = model.canon(edge.state)
        assert by_action["P0:r0@1"] == by_action["P1:r0@1"]
        assert by_action["P0:r0@1"] != by_action["P0:w0@1"]

        prog_a = (((0, 0), (1, 1)),)  # one iteration: R0 W1
        prog_b = (((1, 0),),)         # one iteration: W0
        cfg_ab = ModelConfig(
            ProtocolKind.PRIV_SIMPLE, procs=2, elements=2,
            programs=(prog_a, prog_b),
        )
        cfg_ba = ModelConfig(
            ProtocolKind.PRIV_SIMPLE, procs=2, elements=2,
            programs=(prog_b, prog_a),
        )
        res_ab, res_ba = explore(cfg_ab), explore(cfg_ba)
        assert not res_ab.symmetry and not res_ba.symmetry

        def verdicts(result):
            from repro.modelcheck.model import DONE
            return sorted(
                result.nodes[k].state.status == DONE for k in result.terminals
            )

        assert verdicts(res_ab) == verdicts(res_ba)

    def test_witness_and_actions_reconstruct_a_path(self):
        config = ModelConfig(
            ProtocolKind.PRIV, procs=2, elements=2,
            programs=((((0, 0),),), (((1, 0),),)),  # P0: R0; P1: W0
        )
        result = explore(config)
        assert result.terminals
        for key in result.terminals:
            actions = result.actions(key)
            assert actions  # a terminal is never the root here
            events = result.witness(key)
            assert events
            # event times follow the BFS depth: non-decreasing
            times = [e.time for e in events]
            assert times == sorted(times)

    def test_program_of_failed_state_is_executed_prefix(self):
        config = ModelConfig(ProtocolKind.PRIV_SIMPLE, procs=2, elements=2)
        result = explore(config)
        from repro.modelcheck.model import FAILED
        failed = [
            k for k in result.terminals
            if result.nodes[k].state.status == FAILED
        ]
        assert failed
        for key in failed[:20]:
            programs = result.program_of(key)
            rows = program_rows(config, programs)
            assert not serial_access_verdict(config.protocol, rows)


class TestMinimizer:
    def test_minimize_programs_reaches_a_fixed_point(self):
        # Diverges iff some write to element 0 and some read of element
        # 0 both survive; everything else is noise the minimizer must
        # strip while keeping the iteration structure.
        programs = (
            (((0, 0), (1, 1), (1, 0)), ((0, 1),)),
            (((0, 0), (1, 1)),),
        )

        def diverges(progs):
            flat = [a for body in progs for it in body for a in it]
            return (1, 0) in flat and (0, 0) in flat

        minimized = minimize_programs(programs, diverges)
        flat = [a for body in minimized for it in body for a in it]
        assert sorted(flat) == [(0, 0), (1, 0)]
        # iteration structure preserved: still 2 iterations for P0
        assert len(minimized[0]) == 2 and len(minimized[1]) == 1


class TestFaultInjection:
    """A seeded protocol bug must be caught and minimized."""

    def test_disabled_guards_produce_minimized_divergence(self):
        config = ModelConfig(
            ProtocolKind.PRIV_SIMPLE, procs=2, elements=2,
            faults=frozenset({"ps-shared-read", "ps-shared-write"}),
        )
        report = check_config(config, engine_cap=5, max_divergences=1)
        assert not report.ok
        div = report.divergences[0]
        assert div.kind == "facts"
        assert div.expected == "fail" and div.observed == "pass"
        # minimized to the theoretical minimum: one cross-processor
        # read-first / write pair — and proven to re-diverge
        assert div.minimized_reproduces is True
        assert sum(len(it) for body in div.minimized for it in body) == 2
        # the standalone reproducer config replays the divergence
        repro_cfg = div.reproducer_config()
        assert repro_cfg.programs == div.minimized
        re_report = check_config(repro_cfg, engine_cap=5, minimize=False)
        assert not re_report.ok

    def test_report_renders_both_ways(self):
        config = ModelConfig(
            ProtocolKind.PRIV_SIMPLE, procs=2, elements=2,
            faults=frozenset({"ps-shared-read", "ps-shared-write"}),
        )
        report = check_config(
            config, engine=False, max_divergences=1, minimize=False
        )
        div = report.divergences[0]
        text = div.to_text()
        assert "modelcheck divergence" in text and "interleaving" in text
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ok"] is False
        assert doc["divergences"][0]["kind"] == "facts"


class TestCLI:
    def test_cli_clean_run_writes_json_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = modelcheck_main([
            "--protocol", "priv", "--procs", "2", "--elements", "2",
            "--engine-cap", "5", "--json-out", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True
        assert doc["reports"][0]["protocol"] == "priv"
        assert doc["reports"][0]["states"] > 0
        assert len(doc["fingerprint"]) == 64
        assert "OK" in capsys.readouterr().out

    def test_cli_seeded_fault_fails_nonzero(self, capsys):
        rc = modelcheck_main([
            "--protocol", "priv-simple", "--procs", "2", "--elements", "2",
            "--fault", "ps-shared-read", "--fault", "ps-shared-write",
            "--no-engine", "--no-minimize",
        ])
        assert rc > 0
        assert "DIVERGED" in capsys.readouterr().out


class TestSerialVerdictVsEngine:
    """Satellite: pin the iteration-serial predicate against the real
    scalar engine on *dynamic* schedules (the realized assignment
    changes with timing, which the predicate must absorb)."""

    ELEMS = 4

    def _loop(self, trace, protocol):
        from repro.trace import ArraySpec, Loop, read, write
        iters = [
            [write("A", e) if w else read("A", e) for (w, e) in ops]
            for ops in trace
        ]
        return Loop("dyn", [ArraySpec("A", self.ELEMS, 8, protocol)], iters)

    def _rows(self, loop, assignment):
        rows = []
        for p, its in enumerate(assignment):
            for it in its:
                for op in loop.iterations[it - 1]:
                    rows.append(
                        (p, it, op.index, op.kind.name == "WRITE")
                    )
        return rows

    @pytest.mark.parametrize(
        "protocol",
        [ProtocolKind.PRIV, ProtocolKind.PRIV_SIMPLE],
        ids=["priv", "priv-simple"],
    )
    def test_dynamic_schedule_matches_serial_predicate(self, protocol, seeded_rng):
        import dataclasses as dc
        from repro.params import CacheGeometry, small_test_params

        params = dc.replace(
            small_test_params(2),
            l1=CacheGeometry(1024, 8), l2=CacheGeometry(4096, 8),
        )
        config = RunConfig(
            schedule=ScheduleSpec(
                SchedulePolicy.DYNAMIC, 1, VirtualMode.ITERATION
            )
        )
        for _ in range(12):
            trace = [
                [(seeded_rng.random() < 0.5, seeded_rng.randrange(self.ELEMS))
                 for _ in range(seeded_rng.randint(0, 3))]
                for _ in range(seeded_rng.randint(2, 6))
            ]
            loop = self._loop(trace, protocol)
            result = run_hw(loop, params, config)
            assert result.assignment is not None
            verdict = serial_access_verdict(
                protocol, self._rows(loop, result.assignment)
            )
            assert result.passed == verdict, trace
