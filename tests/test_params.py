"""Tests for machine parameters and validation."""

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    CacheGeometry,
    ContentionModel,
    CostModel,
    LatencyTable,
    MachineParams,
    default_params,
    small_test_params,
)


class TestCacheGeometry:
    def test_num_lines(self):
        assert CacheGeometry(32 * 1024, 64).num_lines == 512

    def test_default_line_size(self):
        assert CacheGeometry(1024).line_bytes == 64

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(1000, 64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(960, 48)


class TestLatencyTable:
    def test_paper_defaults(self):
        lat = LatencyTable()
        assert (lat.l1_hit, lat.l2_hit, lat.local_mem) == (1, 12, 60)
        assert (lat.remote_2hop, lat.remote_3hop) == (208, 291)

    def test_network_one_way_derivation(self):
        lat = LatencyTable()
        assert lat.network_one_way == (208 - 60) // 2

    def test_dirty_forward(self):
        assert LatencyTable().dirty_forward == 291 - 208


class TestMachineParams:
    def test_defaults_match_paper(self):
        p = default_params()
        assert p.num_processors == 16
        assert p.l1.size_bytes == 32 * 1024
        assert p.l2.size_bytes == 512 * 1024
        assert p.line_bytes == 64

    def test_num_nodes(self):
        p = MachineParams(num_processors=8, processors_per_node=2)
        assert p.num_nodes == 4
        assert p.node_of_processor(5) == 2

    def test_rejects_zero_processors(self):
        with pytest.raises(ConfigurationError):
            MachineParams(num_processors=0)

    def test_rejects_uneven_node_split(self):
        with pytest.raises(ConfigurationError):
            MachineParams(num_processors=6, processors_per_node=4)

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ConfigurationError):
            MachineParams(
                l1=CacheGeometry(1024, 32), l2=CacheGeometry(4096, 64)
            )

    def test_small_test_params(self):
        p = small_test_params(4)
        assert p.num_processors == 4
        assert p.l1.num_lines == 16


class TestContentionAndCost:
    def test_contention_defaults(self):
        c = ContentionModel()
        assert c.enabled and c.directory_occupancy > 0

    def test_cost_model_positive(self):
        c = CostModel()
        assert c.sw_mark_read_instrs > 0
        assert c.hw_loop_setup_cycles > 0
        assert c.sw_bitmap_word_elems == 64
