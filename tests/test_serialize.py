"""Tests for JSON serialization of results."""

import json

import pytest

from repro.experiments.figures import table2_state
from repro.experiments.scenarios import run_workload
from repro.experiments.serialize import (
    rows_to_json,
    run_result_to_dict,
    workload_results_to_dict,
)
from repro.params import MachineParams
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode, run_hw, run_sw
from repro.workloads import AdmWorkload
from repro.workloads.synthetic import failing_loop, parallel_nonpriv_loop

PARAMS = MachineParams(num_processors=4)
CFG = RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK))
SW_CFG = RunConfig(
    schedule=ScheduleSpec(SchedulePolicy.STATIC_CHUNK, 1, VirtualMode.ITERATION)
)


class TestRunResultSerialization:
    def test_passing_run_round_trips_through_json(self):
        r = run_hw(parallel_nonpriv_loop(iterations=16), PARAMS, CFG)
        d = run_result_to_dict(r)
        parsed = json.loads(json.dumps(d))
        assert parsed["passed"] is True
        assert parsed["scenario"] == "HW"
        assert parsed["wall_cycles"] > 0
        assert set(parsed["breakdown"]) == {"busy", "sync", "mem"}
        assert "failure" not in parsed

    def test_failing_run_includes_failure(self):
        r = run_hw(failing_loop(3, iterations=16), PARAMS, CFG)
        d = run_result_to_dict(r)
        assert d["passed"] is False
        assert d["failure"]["element"][0] == "A"
        assert d["detection_cycle"] is not None
        json.dumps(d)  # must be JSON-clean

    def test_sw_run_includes_lrpd(self):
        r = run_sw(parallel_nonpriv_loop(iterations=16), PARAMS, SW_CFG)
        d = run_result_to_dict(r)
        assert d["lrpd"]["passed"] is True
        assert d["lrpd"]["arrays"]["A"]["decided_by"] in ("doall", "privatized")
        json.dumps(d)

    def test_mem_stats_serialized(self):
        r = run_hw(parallel_nonpriv_loop(iterations=16), PARAMS, CFG)
        d = run_result_to_dict(r)
        assert d["mem"]["reads"] > 0


class TestWorkloadSerialization:
    def test_workload_results(self):
        res = run_workload(AdmWorkload(scale=0.2), executions=1)
        d = workload_results_to_dict(res)
        parsed = json.loads(json.dumps(d))
        assert parsed["workload"] == "Adm"
        assert parsed["scenarios"]["Serial"]["speedup"] == 1.0
        assert parsed["scenarios"]["HW"]["speedup"] > 1.0


class TestRowSerialization:
    def test_table2_rows(self):
        text = rows_to_json(table2_state())
        rows = json.loads(text)
        assert all(r["hw_bits"] < r["sw_bits"] for r in rows)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            rows_to_json([object()])
