"""Tests for the iteration schedulers."""

import pytest

from repro.errors import SchedulingError
from repro.runtime.schedule import (
    Block,
    ChunkQueue,
    SchedulePolicy,
    ScheduleSpec,
    VirtualMode,
    cyclic_blocks,
    plan_static,
    static_chunks,
    virtual_of,
)


class TestStaticChunks:
    def test_even_split(self):
        blocks = static_chunks(8, 4)
        assert [(b.first, b.last) for b in blocks] == [
            (1, 2), (3, 4), (5, 6), (7, 8),
        ]

    def test_remainder_goes_to_early_processors(self):
        blocks = static_chunks(10, 4)
        assert [len(b) for b in blocks] == [3, 3, 2, 2]
        assert blocks[0].first == 1 and blocks[-1].last == 10

    def test_fewer_iterations_than_processors(self):
        blocks = static_chunks(2, 4)
        assert len(blocks) == 2
        assert all(len(b) == 1 for b in blocks)

    def test_coverage_is_exact(self):
        blocks = static_chunks(17, 5)
        seen = sorted(i for b in blocks for i in b.iterations())
        assert seen == list(range(1, 18))


class TestCyclicBlocks:
    def test_block_boundaries(self):
        blocks = cyclic_blocks(10, 4)
        assert [(b.first, b.last) for b in blocks] == [(1, 4), (5, 8), (9, 10)]
        assert [b.ordinal for b in blocks] == [1, 2, 3]

    def test_single_iteration_blocks(self):
        blocks = cyclic_blocks(3, 1)
        assert len(blocks) == 3


class TestChunkQueue:
    def test_pop_in_order(self):
        q = ChunkQueue(cyclic_blocks(8, 2))
        firsts = [q.pop(p).first for p in (1, 0, 1, 0)]
        assert firsts == [1, 3, 5, 7]
        assert q.pop(0) is None

    def test_grab_log(self):
        q = ChunkQueue(cyclic_blocks(4, 2))
        q.pop(1)
        q.pop(0)
        assert q.grab_log == [(1, 1), (2, 0)]

    def test_remaining(self):
        q = ChunkQueue(cyclic_blocks(4, 2))
        assert q.remaining == 2
        q.pop(0)
        assert q.remaining == 1


class TestVirtualNumbering:
    def test_iteration_mode(self):
        block = Block(5, 8, ordinal=2)
        assert virtual_of(block, 6, VirtualMode.ITERATION, proc=3) == 6

    def test_chunk_mode(self):
        block = Block(5, 8, ordinal=2)
        assert virtual_of(block, 6, VirtualMode.CHUNK, proc=3) == 2

    def test_processor_mode(self):
        block = Block(5, 8, ordinal=2)
        assert virtual_of(block, 6, VirtualMode.PROCESSOR, proc=3) == 4


class TestScheduleSpec:
    def test_processor_mode_requires_static(self):
        with pytest.raises(SchedulingError):
            ScheduleSpec(SchedulePolicy.DYNAMIC, 4, VirtualMode.PROCESSOR)

    def test_chunk_must_be_positive(self):
        with pytest.raises(SchedulingError):
            ScheduleSpec(SchedulePolicy.DYNAMIC, 0)

    def test_plan_static_block_cyclic_round_robin(self):
        spec = ScheduleSpec(SchedulePolicy.BLOCK_CYCLIC, 2, VirtualMode.CHUNK)
        per_proc = plan_static(spec, 12, 3)
        assert [b.first for b in per_proc[0]] == [1, 7]
        assert [b.first for b in per_proc[1]] == [3, 9]
        assert [b.first for b in per_proc[2]] == [5, 11]

    def test_plan_static_rejects_dynamic(self):
        with pytest.raises(SchedulingError):
            plan_static(ScheduleSpec(SchedulePolicy.DYNAMIC), 8, 2)
