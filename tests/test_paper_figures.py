"""The paper's own worked examples (Figures 1-3), encoded as tests.

Each figure's loop is transcribed literally and checked against the
oracle, the software LRPD test, and the hardware protocols — so the
repository demonstrably agrees with every example the paper reasons
about in prose.
"""

import pytest

from repro.lrpd.analysis import analyze
from repro.lrpd.shadow import LRPDState
from repro.params import MachineParams
from repro.runtime import RunConfig, SchedulePolicy, ScheduleSpec, VirtualMode, run_hw
from repro.trace import ArraySpec, Loop, read, write
from repro.trace.oracle import DependenceOracle
from repro.types import ProtocolKind

PARAMS = MachineParams(num_processors=4)
FINE = RunConfig(schedule=ScheduleSpec(SchedulePolicy.DYNAMIC, 1, VirtualMode.CHUNK))


class TestFigure1a:
    """do i: A(i) = A(i) + A(i-1) — flow dependences, not parallel."""

    def loop(self, n=8):
        body = []
        for i in range(1, n):
            body.append([read("A", i), read("A", i - 1), write("A", i)])
        return Loop("fig1a", [ArraySpec("A", n, 8, ProtocolKind.NONPRIV)], body)

    def test_oracle_rejects(self):
        report = DependenceOracle(self.loop()).analyze()
        assert not report.is_doall
        assert not report.is_priv_rico  # not even read-in helps

    def test_hw_fails(self):
        result = run_hw(self.loop(), PARAMS, FINE)
        assert not result.passed


class TestFigure1b:
    """The tmp-swap loop: parallel once tmp is privatized."""

    def loop(self, n=8):
        # do i = 1, n/2: tmp = A(2i); A(2i) = A(2i-1); A(2i-1) = tmp
        body = []
        for i in range(1, n // 2 + 1):
            hi, lo = 2 * i - 1, 2 * i - 2  # 0-based A(2i), A(2i-1)
            body.append([
                read("A", hi), write("TMP", 0),          # tmp = A(2i)
                read("A", lo), write("A", hi),           # A(2i) = A(2i-1)
                read("TMP", 0), write("A", lo),          # A(2i-1) = tmp
            ])
        arrays = [
            ArraySpec("A", n, 8, ProtocolKind.NONPRIV),
            ArraySpec("TMP", 1, 8, ProtocolKind.PRIV_SIMPLE),
        ]
        return Loop("fig1b", arrays, body)

    def test_oracle_verdicts(self):
        report = DependenceOracle(self.loop()).analyze()
        # A's accesses are disjoint per iteration; TMP needs privatizing.
        assert report.arrays["A"].is_doall
        assert not report.arrays["TMP"].is_doall
        assert report.arrays["TMP"].is_privatizable
        assert report.is_privatizable

    def test_hw_passes_with_privatized_tmp(self):
        result = run_hw(self.loop(), PARAMS, FINE)
        assert result.passed

    def test_hw_fails_without_privatization(self):
        loop = self.loop()
        arrays = [
            a if a.name != "TMP"
            else ArraySpec("TMP", 1, 8, ProtocolKind.NONPRIV)
            for a in loop.arrays
        ]
        result = run_hw(Loop("fig1b-np", arrays, loop.iterations), PARAMS, FINE)
        assert not result.passed


class TestFigure2:
    """The worked LRPD example: K=[1,2,3,4,1], L=[2,2,4,4,2], B1=[T,F,T,F,T].

    Chart (c): Aw = [0,1,0,1], Ar = [1,1,1,1], Anp = [1,1,1,1],
    Atw = 3, Atm = 2 — the test fails.
    """

    K = [1, 2, 3, 4, 1]
    L = [2, 2, 4, 4, 2]
    B1 = [True, False, True, False, True]

    def loop(self):
        body = []
        for it in range(5):
            ops = [read("A", self.K[it] - 1)]  # z = A(K(i))
            if self.B1[it]:
                ops.append(write("A", self.L[it] - 1))  # A(L(i)) = z + C(i)
            body.append(ops)
        return Loop("fig2", [ArraySpec("A", 5, 8, ProtocolKind.PRIV)], body)

    def test_software_shadow_state_matches_chart_c(self):
        state = LRPDState(1)
        state.register("A", 5, privatized=True)
        shadow = state.shadow("A", 0)
        for it in range(1, 6):
            shadow.markread(self.K[it - 1] - 1, it)
            if self.B1[it - 1]:
                shadow.markwrite(self.L[it - 1] - 1, it)
        merged = state.merge("A")
        assert list((merged.aw != 0).astype(int)[:4]) == [0, 1, 0, 1]
        assert list((merged.ar != 0).astype(int)[:4]) == [1, 1, 1, 1]
        assert list((merged.anp != 0).astype(int)[:4]) == [1, 1, 1, 1]
        assert merged.atw == 3 and merged.atm == 2
        assert not analyze(state).passed

    def test_oracle_agrees_loop_not_parallel(self):
        report = DependenceOracle(self.loop()).analyze()
        assert not report.is_priv_rico

    def test_hw_priv_fails(self):
        result = run_hw(self.loop(), PARAMS, FINE)
        assert not result.passed


class TestFigure3:
    """Loops parallel only with privatization + read-in/copy-out."""

    def _loop(self, pattern):
        # pattern: list per iteration of 'r'/'w' on the single element.
        body = []
        for accesses in pattern:
            ops = []
            for a in accesses:
                ops.append(read("A", 0) if a == "r" else write("A", 0))
            body.append(ops)
        return Loop("fig3", [ArraySpec("A", 4, 8, ProtocolKind.PRIV)], body)

    # The three example columns of Figure 3: reads-first happen no later
    # than any write of the element.
    PATTERNS = (
        ["r", "rw", "w"],   # read; read then write; write
        ["r", "r", "w"],    # reads first, then a write
        ["rw", "w", "w"],   # read-then-write, then writes
    )

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_oracle_accepts_with_read_in(self, pattern):
        report = DependenceOracle(self._loop(pattern)).analyze()
        assert report.is_priv_rico
        assert not report.is_privatizable or pattern == self.PATTERNS[2]

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_hw_read_in_protocol_accepts(self, pattern):
        result = run_hw(self._loop(pattern), PARAMS, FINE)
        assert result.passed

    @pytest.mark.parametrize("pattern", PATTERNS[:2])
    def test_simple_protocol_rejects_without_read_in(self, pattern):
        loop = self._loop(pattern)
        arrays = [ArraySpec("A", 4, 8, ProtocolKind.PRIV_SIMPLE)]
        result = run_hw(Loop("fig3-s", arrays, loop.iterations), PARAMS, FINE)
        assert not result.passed

    def test_reversed_pattern_rejected(self):
        # write first, read-first later: NOT a Figure 3 loop.
        report = DependenceOracle(self._loop(["w", "r"])).analyze()
        assert not report.is_priv_rico
        result = run_hw(self._loop(["w", "r"]), PARAMS, FINE)
        assert not result.passed
