"""Tests for the direct-mapped caches and the two-level hierarchy."""

from repro.memsys.cache import CacheHierarchy, DirectMappedCache, HitLevel
from repro.memsys.line import CacheLine
from repro.params import CacheGeometry
from repro.types import LineState


def line(addr, state=LineState.CLEAN):
    return CacheLine(addr, state)


class TestDirectMappedCache:
    def setup_method(self):
        self.cache = DirectMappedCache(CacheGeometry(256, 64))  # 4 lines

    def test_miss_then_hit(self):
        assert self.cache.lookup(0) is None
        self.cache.insert(line(0))
        assert self.cache.lookup(0) is not None

    def test_conflict_eviction(self):
        self.cache.insert(line(0))
        victim = self.cache.insert(line(256))  # maps to the same slot
        assert victim is not None and victim.line_addr == 0
        assert self.cache.lookup(0) is None
        assert self.cache.lookup(256) is not None

    def test_reinsert_same_line_no_victim(self):
        self.cache.insert(line(64))
        assert self.cache.insert(line(64)) is None

    def test_remove(self):
        self.cache.insert(line(128))
        removed = self.cache.remove(128)
        assert removed is not None
        assert self.cache.lookup(128) is None
        assert self.cache.remove(128) is None

    def test_flush_returns_dirty_only(self):
        self.cache.insert(line(0, LineState.DIRTY))
        self.cache.insert(line(64, LineState.CLEAN))
        dirty = self.cache.flush()
        assert [l.line_addr for l in dirty] == [0]
        assert self.cache.lookup(64) is None


class TestCacheHierarchy:
    def setup_method(self):
        self.h = CacheHierarchy(CacheGeometry(128, 64), CacheGeometry(256, 64))

    def test_fill_installs_both_levels(self):
        self.h.fill(line(0))
        level, found = self.h.probe(0)
        assert level is HitLevel.L1 and found is not None

    def test_l2_hit_after_l1_conflict(self):
        self.h.fill(line(0))
        self.h.fill(line(128))  # conflicts in L1 (2 lines), not L2 (4 lines)
        level, found = self.h.probe(0)
        assert level is HitLevel.L2

    def test_promote_to_l1(self):
        self.h.fill(line(0))
        self.h.fill(line(128))
        _, l2line = self.h.probe(0)
        self.h.promote_to_l1(l2line)
        level, _ = self.h.probe(0)
        assert level is HitLevel.L1

    def test_shared_object_keeps_state_coherent(self):
        self.h.fill(line(0))
        _, l1line = self.h.probe(0)
        l1line.state = LineState.DIRTY
        assert self.h.l2.lookup(0).state is LineState.DIRTY

    def test_l2_eviction_purges_l1(self):
        self.h.fill(line(0, LineState.DIRTY))
        result = self.h.fill(line(256))  # L2 conflict with 0
        assert result.writeback is not None
        assert result.writeback.line_addr == 0
        assert self.h.probe(0)[1] is None

    def test_clean_eviction_reported_as_dropped(self):
        self.h.fill(line(0, LineState.CLEAN))
        result = self.h.fill(line(256))
        assert result.dropped is not None and result.writeback is None

    def test_invalidate(self):
        self.h.fill(line(64))
        removed = self.h.invalidate(64)
        assert removed is not None
        assert self.h.probe(64) == (HitLevel.MEMORY, None)

    def test_flush_returns_dirty(self):
        self.h.fill(line(0, LineState.DIRTY))
        self.h.fill(line(64, LineState.CLEAN))
        dirty = self.h.flush()
        assert [l.line_addr for l in dirty] == [0]


class TestSetAssociativity:
    def test_two_way_holds_conflicting_pair(self):
        # 2 sets of 2 ways: lines 0 and 256 map to set 0 but coexist.
        cache = DirectMappedCache(CacheGeometry(256, 64, ways=2))
        assert cache.insert(line(0)) is None
        assert cache.insert(line(128)) is None   # set 0 (2 sets)
        assert cache.lookup(0) is not None
        assert cache.lookup(128) is not None

    def test_lru_eviction_order(self):
        cache = DirectMappedCache(CacheGeometry(256, 64, ways=2))
        cache.insert(line(0))
        cache.insert(line(128))
        cache.lookup(0)  # bump 0 to MRU
        victim = cache.insert(line(256))  # same set, must evict LRU=128
        assert victim is not None and victim.line_addr == 128
        assert cache.lookup(0) is not None

    def test_fully_associative(self):
        geometry = CacheGeometry(256, 64, ways=4)  # one set
        cache = DirectMappedCache(geometry)
        for addr in (0, 64, 128, 192):
            assert cache.insert(line(addr)) is None
        assert cache.insert(line(256)) is not None  # evicts LRU

    def test_geometry_validation(self):
        import pytest
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CacheGeometry(256, 64, ways=3)  # 4 lines not divisible by 3
        with pytest.raises(ConfigurationError):
            CacheGeometry(256, 64, ways=0)

    def test_num_sets(self):
        assert CacheGeometry(512, 64, ways=2).num_sets == 4
